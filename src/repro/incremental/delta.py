"""Dataset versions and delta logs for incremental selection.

The incremental runtime models a *changing* dataset as an overlay over a
fixed ground set: a :class:`SubsetProblem` pins the similarity graph and
base utilities for ``n`` candidate ids once, and a :class:`DatasetVersion`
says which of those ids are currently **alive** and what their utilities
are right now.  Three mutation kinds evolve a version:

``append``
    Previously-dead ids become alive (optionally with fresh utilities) —
    new records arriving.
``update``
    Alive ids get new utilities — e.g. fresh margin scores after a model
    update.
``expire``
    Alive ids become dead — records aging out of the selection universe.

Versions are **content-fingerprinted per data shard** with the same
:func:`repro.core.distributed.fingerprint` primitive the beams use for
checkpoint salts: the ground set is cut into ``num_shards`` contiguous id
ranges, and a shard's fingerprint hashes exactly the (id, utility) pairs
alive inside its range.  A delta therefore invalidates only the shards
whose ranges it touches — the intersection the
:class:`~repro.incremental.driver.IncrementalDriver` runs against the
checkpointed stage-digest DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distributed import fingerprint
from repro.utils.rng import SeedLike, as_generator

_KINDS = ("append", "update", "expire")


@dataclass(frozen=True)
class Delta:
    """One mutation batch: ``kind`` applied to ``ids`` at ``timestamp``.

    ``utilities`` aligns with ``ids`` for ``append``/``update``; it must
    be ``None`` for ``expire``.  ``timestamp`` is event time (seconds) —
    the windowed driver assigns deltas to windows by it.
    """

    kind: str
    ids: np.ndarray
    utilities: Optional[np.ndarray] = None
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"delta kind must be one of {_KINDS}, got {self.kind!r}")
        ids = np.ascontiguousarray(self.ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError(f"delta ids must be 1-D, got shape {ids.shape}")
        if np.unique(ids).size != ids.size:
            raise ValueError("delta ids must be unique within one delta")
        object.__setattr__(self, "ids", ids)
        if self.kind == "expire":
            if self.utilities is not None:
                raise ValueError("expire deltas carry no utilities")
            return
        if self.utilities is not None:
            utilities = np.ascontiguousarray(self.utilities, dtype=np.float64)
            if utilities.shape != ids.shape:
                raise ValueError(
                    f"utilities shape {utilities.shape} does not match ids "
                    f"shape {ids.shape}"
                )
            if utilities.size and not np.isfinite(utilities).all():
                raise ValueError("delta utilities contain NaN or infinite values")
            object.__setattr__(self, "utilities", utilities)
        elif self.kind == "update":
            raise ValueError("update deltas must carry utilities")

    @property
    def num_records(self) -> int:
        return int(self.ids.size)


@dataclass
class DeltaLog:
    """Append-only, timestamp-ordered log of :class:`Delta` batches."""

    deltas: List[Delta] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._check_ordered(self.deltas)

    @staticmethod
    def _check_ordered(deltas: Sequence[Delta]) -> None:
        for prev, cur in zip(deltas, deltas[1:]):
            if cur.timestamp < prev.timestamp:
                raise ValueError(
                    "delta log must be ordered by timestamp "
                    f"({cur.timestamp} after {prev.timestamp})"
                )

    def record(self, delta: Delta) -> None:
        if self.deltas and delta.timestamp < self.deltas[-1].timestamp:
            raise ValueError(
                f"delta at t={delta.timestamp} precedes log tail "
                f"t={self.deltas[-1].timestamp}"
            )
        self.deltas.append(delta)

    def between(self, start: float, end: float) -> List[Delta]:
        """Deltas with ``start <= timestamp < end``."""
        return [d for d in self.deltas if start <= d.timestamp < end]

    @property
    def num_records(self) -> int:
        return sum(d.num_records for d in self.deltas)

    @property
    def span(self) -> Tuple[float, float]:
        """(min, max) timestamp; (0.0, 0.0) when empty."""
        if not self.deltas:
            return (0.0, 0.0)
        return (self.deltas[0].timestamp, self.deltas[-1].timestamp)

    def __len__(self) -> int:
        return len(self.deltas)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self.deltas)


def shard_bounds(n: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` id ranges cutting ``0..n`` into shards.

    Boundaries depend only on ``(n, num_shards)`` — never on which ids are
    alive — so a delta touching few ids invalidates few shards.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    size = -(-n // num_shards) if n else 0  # ceil division
    bounds = []
    for s in range(num_shards):
        start = min(s * size, n)
        end = min(start + size, n)
        bounds.append((start, end))
    return bounds


@dataclass(frozen=True)
class DatasetVersion:
    """One immutable snapshot of the changing dataset.

    ``alive`` and ``utilities`` are dense over the fixed ground set of
    ``n`` ids; :meth:`apply` is functional — it returns a new version and
    leaves this one untouched, so a window's drive can always be replayed.
    """

    alive: np.ndarray
    utilities: np.ndarray
    version: int = 0

    def __post_init__(self) -> None:
        alive = np.ascontiguousarray(self.alive, dtype=bool)
        utilities = np.ascontiguousarray(self.utilities, dtype=np.float64)
        if alive.ndim != 1 or utilities.ndim != 1:
            raise ValueError("alive and utilities must be 1-D")
        if alive.shape != utilities.shape:
            raise ValueError(
                f"alive {alive.shape} and utilities {utilities.shape} "
                "must cover the same ground set"
            )
        object.__setattr__(self, "alive", alive)
        object.__setattr__(self, "utilities", utilities)

    @classmethod
    def initial(
        cls,
        utilities: np.ndarray,
        *,
        alive: Optional[np.ndarray] = None,
    ) -> "DatasetVersion":
        """Version 0: everything alive unless an ``alive`` mask is given."""
        utilities = np.ascontiguousarray(utilities, dtype=np.float64)
        if alive is None:
            alive = np.ones(utilities.shape[0], dtype=bool)
        return cls(alive=alive, utilities=utilities, version=0)

    @property
    def n(self) -> int:
        """Ground-set size (alive or not)."""
        return int(self.alive.shape[0])

    @property
    def num_alive(self) -> int:
        return int(self.alive.sum())

    @property
    def alive_ids(self) -> np.ndarray:
        return np.flatnonzero(self.alive).astype(np.int64)

    def apply(self, delta: Delta) -> "DatasetVersion":
        """A new version with ``delta`` applied (this one is unchanged)."""
        ids = delta.ids
        if ids.size and (ids.min() < 0 or ids.max() >= self.n):
            raise ValueError(
                f"delta ids out of range for ground set of {self.n}"
            )
        alive = self.alive.copy()
        utilities = self.utilities.copy()
        if delta.kind == "append":
            if alive[ids].any():
                raise ValueError("append delta targets ids that are already alive")
            alive[ids] = True
            if delta.utilities is not None:
                utilities[ids] = delta.utilities
        elif delta.kind == "update":
            if not alive[ids].all():
                raise ValueError("update delta targets ids that are not alive")
            utilities[ids] = delta.utilities
        else:  # expire
            if not alive[ids].all():
                raise ValueError("expire delta targets ids that are not alive")
            alive[ids] = False
        return DatasetVersion(
            alive=alive, utilities=utilities, version=self.version + 1
        )

    def apply_all(self, deltas: Iterable[Delta]) -> "DatasetVersion":
        version = self
        for delta in deltas:
            version = version.apply(delta)
        return version

    # -- per-shard content addressing -----------------------------------

    def shard_payload(
        self, shard: int, num_shards: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(alive ids, their utilities) inside ``shard``'s id range."""
        start, end = shard_bounds(self.n, num_shards)[shard]
        ids = start + np.flatnonzero(self.alive[start:end]).astype(np.int64)
        return ids, self.utilities[ids]

    def shard_fingerprint(self, shard: int, num_shards: int) -> str:
        """Content hash of exactly what ``shard`` contributes to a drive."""
        ids, utilities = self.shard_payload(shard, num_shards)
        return fingerprint("incr-shard", shard, num_shards, ids, utilities)

    def fingerprints(self, num_shards: int) -> List[str]:
        return [self.shard_fingerprint(s, num_shards) for s in range(num_shards)]

    def diff_shards(self, other: "DatasetVersion", num_shards: int) -> List[int]:
        """Shard indices whose content fingerprint differs from ``other``."""
        mine = self.fingerprints(num_shards)
        theirs = other.fingerprints(num_shards)
        return [s for s in range(num_shards) if mine[s] != theirs[s]]


def synthetic_deltas(
    version: DatasetVersion,
    *,
    seed: SeedLike,
    steps: int = 1,
    frac: float = 0.1,
    start_time: float = 0.0,
    dt: float = 1.0,
    kinds: Sequence[str] = ("update", "expire", "append"),
) -> DeltaLog:
    """A deterministic delta stream for smokes, benches, and the service.

    Each step mutates about ``frac`` of the currently-alive records,
    cycling through ``kinds``; appends only fire when dead ids exist to
    revive.  Mutated ids are a *contiguous run* of the candidate pool —
    real delta streams have locality (recent records churn), and locality
    is what makes shard fingerprints worth intersecting; a uniformly
    scattered delta would invalidate every shard.  The same ``(version,
    seed, steps, frac)`` always produces the same log — the service
    derives a job's dataset version ``v`` by replaying ``v`` steps from
    version 0.
    """
    if not 0 < frac <= 1:
        raise ValueError(f"frac must be in (0, 1], got {frac}")
    rng = as_generator(seed)
    log = DeltaLog()
    current = version

    def contiguous(pool: np.ndarray, count: int) -> np.ndarray:
        count = min(count, int(pool.size))
        if count <= 0:
            return pool[:0]
        start = int(rng.integers(0, pool.size - count + 1))
        return pool[start : start + count]

    for step in range(steps):
        kind = kinds[step % len(kinds)]
        alive_ids = current.alive_ids
        dead_ids = np.flatnonzero(~current.alive).astype(np.int64)
        count = max(1, int(round(frac * max(current.num_alive, 1))))
        if kind == "append" and dead_ids.size == 0:
            kind = "update"
        if kind == "append":
            ids = contiguous(dead_ids, count)
            utilities = rng.random(ids.size)
        elif kind == "update":
            ids = contiguous(alive_ids, count)
            utilities = rng.random(ids.size)
        else:  # expire — never drain the dataset completely
            limit = min(count, max(alive_ids.size - 1, 0))
            if limit == 0:
                continue
            ids = contiguous(alive_ids, limit)
            utilities = None
        delta = Delta(
            kind=kind,
            ids=ids,
            utilities=utilities,
            timestamp=start_time + step * dt,
        )
        log.record(delta)
        current = current.apply(delta)
    return log


def invalidation_summary(
    before: DatasetVersion,
    after: DatasetVersion,
    num_shards: int,
) -> Dict[str, int]:
    """Reuse accounting between two versions at a given shard split."""
    changed = after.diff_shards(before, num_shards)
    return {
        "invalidated_shards": len(changed),
        "reused_shards": num_shards - len(changed),
    }
