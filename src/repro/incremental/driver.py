"""Delta-driven incremental drives and windowed streaming drives.

The :class:`IncrementalDriver` makes selection a live view over changing
data.  It cuts the ground set into ``data_shards`` contiguous id ranges
and builds, per drive, a dataflow pipeline with **one eager source node
per data shard** whose single record carries exactly that shard's alive
``(ids, utilities)`` payload.  Eager sources checkpoint-digest their
*content* (see ``Pipeline._compute_digest``), so each shard's
candidate-selection branch gets a materialization boundary keyed by what
the shard actually contains:

- a shard the delta did not touch hashes to the same digest as last
  drive → its branch **loads from the checkpoint** (``checkpoint_hits``)
  and none of its stages re-execute;
- a touched shard hashes fresh → only its cone re-executes.

The final refine stage (a real shuffle: flatten → key → group) always
recomputes, but it only sees the ~``data_shards × candidates`` pooled
candidates, not the dataset.  Selection is two-level greedy (GreeDi
style: per-shard :func:`~repro.core.greedy.greedy_heap` candidates, then
greedy over the pooled union), which is deterministic — so an incremental
drive is **bit-identical to a cold drive over the same version**, the
property the differential tests pin across executors × shuffle planes.

``drive_windows`` runs tumbling or sliding event-time windows over a
:class:`~repro.incremental.delta.DeltaLog`, evolving the dataset version
and driving each window on the same warm :class:`DataflowContext`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.dataflow.options import DataflowContext
from repro.dataflow.transforms import flatten
from repro.incremental.delta import DatasetVersion, Delta, DeltaLog
from repro.utils.cancel import CancelToken

#: Flipped by the test harness's ``--incremental`` flag: every drive then
#: cross-checks the fingerprint-predicted reuse against the checkpoint
#: hits the engine actually observed, and raises on any mismatch.
DEFAULT_VERIFY_REUSE = False

_STATE_FILE = "incremental_state.json"


def _make_local_selector(problem: SubsetProblem, candidates: int):
    """Per-shard candidate selection DoFn.

    Captures only version-independent state (the base problem pins the
    graph over the full ground set); everything the delta can change —
    alive ids and utilities — rides in the source record, so the branch
    digest moves exactly when the shard content does.
    """

    def select_candidates(record):
        shard, ids, utilities = record
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return []
        sub = replace(
            problem.restrict(ids),
            utilities=np.ascontiguousarray(utilities, dtype=np.float64),
        )
        local = greedy_heap(sub, min(candidates, sub.n))
        chosen = np.sort(ids[local.selected])
        return [
            (int(g), float(problem_utility))
            for g, problem_utility in zip(
                chosen.tolist(),
                np.asarray(utilities)[np.searchsorted(ids, chosen)].tolist(),
            )
        ]

    return select_candidates


def _make_refiner(problem: SubsetProblem, k: int):
    """Greedy-on-union refine DoFn: pooled candidates → final selection.

    Sorts the pooled pairs first, so the result is independent of shard
    arrival order — one ingredient of incremental-vs-cold bit-identity.
    """

    def refine(pairs):
        pairs = sorted(pairs)
        ids = np.array([p[0] for p in pairs], dtype=np.int64)
        utilities = np.array([p[1] for p in pairs], dtype=np.float64)
        sub = replace(problem.restrict(ids), utilities=utilities)
        final = greedy_heap(sub, min(k, sub.n))
        return np.sort(ids[final.selected])

    return refine


@dataclass
class IncrementalResult:
    """One incremental drive's selection plus reuse accounting."""

    selected: np.ndarray
    objective: float
    version: int
    reused_shards: int
    invalidated_shards: int
    delta_records: int
    checkpoint_hits: int
    executed_stages: int
    extra: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.selected.size)


@dataclass(frozen=True)
class WindowSpec:
    """Event-time windowing: tumbling (``slide`` unset) or sliding.

    Window ``i`` spans ``[origin + i·slide, origin + i·slide + size)``.
    A delta belongs to every window whose span contains its timestamp —
    exactly one for tumbling windows, several for overlapping slides.
    """

    size: float
    slide: Optional[float] = None
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")
        if self.slide is not None and not 0 < self.slide <= self.size:
            raise ValueError(
                f"slide must be in (0, size], got {self.slide} for size {self.size}"
            )

    @property
    def step(self) -> float:
        return self.size if self.slide is None else self.slide

    def bounds(self, index: int) -> Tuple[float, float]:
        start = self.origin + index * self.step
        return (start, start + self.size)


@dataclass
class WindowResult:
    """One window's drive: span, attributed deltas, and the selection."""

    index: int
    start: float
    end: float
    delta_records: int
    result: IncrementalResult


class IncrementalDriver:
    """Drives selection over :class:`DatasetVersion`s, reusing checkpoints.

    Parameters
    ----------
    problem:
        Base problem over the full ground set — pins the similarity graph
        and ``alpha``/``beta``.  Per-version utilities/liveness overlay it.
    k:
        Selection cardinality (capped at the version's alive count).
    context:
        Warm :class:`DataflowContext`; its ``checkpoint_dir`` is where
        branch boundaries persist.  Without one, every drive is cold
        (still correct, nothing reused).
    data_shards:
        Contiguous id ranges the delta intersection works at.  Must stay
        fixed for a checkpoint directory (enforced via the state file).
    candidates_per_shard:
        Per-shard candidate pool size (default ``k``, the GreeDi choice).
    """

    def __init__(
        self,
        problem: SubsetProblem,
        k: int,
        *,
        context: DataflowContext,
        data_shards: int = 8,
        candidates_per_shard: Optional[int] = None,
        verify_reuse: Optional[bool] = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if data_shards <= 0:
            raise ValueError(f"data_shards must be positive, got {data_shards}")
        self.problem = problem
        self.k = k
        self.context = context
        self.data_shards = data_shards
        self.candidates_per_shard = candidates_per_shard or k
        self.verify_reuse = verify_reuse
        self.checkpoint_dir = context.options.checkpoint_dir

    # -- persistent shard-fingerprint state ------------------------------

    def _state_path(self) -> Optional[str]:
        if not self.checkpoint_dir:
            return None
        return os.path.join(self.checkpoint_dir, _STATE_FILE)

    def _load_state(self) -> Optional[Dict[str, Any]]:
        path = self._state_path()
        if not path or not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def _save_state(self, state: Dict[str, Any]) -> None:
        path = self._state_path()
        if not path:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".incr-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def last_version(self) -> Optional[int]:
        """The dataset version of the last drive recorded in this
        checkpoint directory, or ``None`` when no drive has run yet."""
        state = self._load_state()
        if state is None or "version" not in state:
            return None
        return int(state["version"])

    # -- plan construction ----------------------------------------------

    def _build(self, pipeline, version: DatasetVersion):
        """One branch per data shard, then a pooled refine shuffle."""
        select_candidates = _make_local_selector(
            self.problem, self.candidates_per_shard
        )
        branches = []
        for shard in range(self.data_shards):
            ids, utilities = version.shard_payload(shard, self.data_shards)
            source = pipeline.create(
                [(shard, ids, utilities)], name=f"incr/shard{shard:03d}"
            )
            branches.append(
                source.flat_map(
                    select_candidates, name=f"incr/candidates{shard:03d}"
                )
            )
        pooled = (
            flatten(branches, name="incr/pool")
            .map(lambda pair: (0, pair), name="incr/key")
            .as_keyed(name="incr/route")
            .group_by_key(name="incr/gather")
            .map_values(_make_refiner(self.problem, self.k), name="incr/refine")
        )
        return branches, pooled

    def explain(self, version: DatasetVersion, *, reuse: bool = True) -> str:
        """Render the drive's physical plan without executing it.

        ``reuse`` annotates boundaries whose checkpoint already exists —
        i.e. what the next :meth:`drive` will load instead of running.
        """
        pipeline = self.context.pipeline(
            adaptive=False, plan_records=version.num_alive
        )
        try:
            _branches, pooled = self._build(pipeline, version)
            return pooled.explain(reuse=reuse)
        finally:
            pipeline.close()

    # -- driving ---------------------------------------------------------

    def drive(
        self,
        version: DatasetVersion,
        *,
        deltas: Optional[Sequence[Delta]] = None,
        cancel: Optional[CancelToken] = None,
    ) -> IncrementalResult:
        """Select over ``version``, re-executing only the invalidated cone.

        ``deltas`` (the batches applied since the previous drive) feed the
        ``delta_records`` metric; reuse itself is decided by fingerprint
        intersection, so passing them is optional.
        """
        if cancel is not None:
            cancel.raise_if_cancelled("incremental drive")
        if version.n != self.problem.n:
            raise ValueError(
                f"version ground set ({version.n}) does not match problem "
                f"({self.problem.n})"
            )
        fingerprints = version.fingerprints(self.data_shards)
        state = self._load_state()
        if state is not None and state.get("data_shards") != self.data_shards:
            raise ValueError(
                f"checkpoint dir was built with data_shards="
                f"{state.get('data_shards')}; now {self.data_shards}. "
                "Use a fresh checkpoint directory to re-shard."
            )
        if state is None:
            invalidated = list(range(self.data_shards))
        else:
            previous = state.get("fingerprints", [])
            invalidated = [
                s
                for s in range(self.data_shards)
                if s >= len(previous) or previous[s] != fingerprints[s]
            ]
        reused = self.data_shards - len(invalidated)
        delta_records = sum(d.num_records for d in deltas) if deltas else 0

        overrides: Dict[str, Any] = {
            "adaptive": False,  # planner store-skipping would break reuse
            "plan_records": max(version.num_alive, 1),
        }
        if state is not None and state.get("engine_shards"):
            # Checkpoint loads reject a shard-count mismatch; pin the
            # engine sharding this directory was built with.
            overrides["num_shards"] = int(state["engine_shards"])
        pipeline = self.context.pipeline(**overrides)
        try:
            branches, pooled = self._build(pipeline, version)
            hits_before = pipeline.metrics.checkpoint_hits
            for branch in branches:
                if cancel is not None:
                    cancel.raise_if_cancelled("incremental drive")
                branch.cache()
            if cancel is not None:
                cancel.raise_if_cancelled("incremental drive")
            records = [
                record
                for shard in pooled.run().iter_shards()
                for record in shard
            ]
            hits = pipeline.metrics.checkpoint_hits - hits_before
            pipeline.metrics.observe_incremental(
                reused=reused,
                invalidated=len(invalidated),
                delta_records=delta_records,
            )
            if self._verify_enabled() and self.checkpoint_dir and hits < reused:
                raise RuntimeError(
                    f"incremental reuse mismatch: fingerprints predicted "
                    f"{reused} reused shard branches but the engine "
                    f"observed only {hits} checkpoint hits"
                )
            selected = records[0][1] if records else np.empty(0, dtype=np.int64)
            selected = np.asarray(selected, dtype=np.int64)
            versioned = replace(self.problem, utilities=version.utilities)
            objective = float(PairwiseObjective(versioned).value(selected))
            result = IncrementalResult(
                selected=selected,
                objective=objective,
                version=version.version,
                reused_shards=reused,
                invalidated_shards=len(invalidated),
                delta_records=delta_records,
                checkpoint_hits=hits,
                executed_stages=pipeline.metrics.executed_stages,
                extra={
                    "invalidated": invalidated,
                    "data_shards": self.data_shards,
                    "num_alive": version.num_alive,
                    "metrics": {
                        "reused_shards": reused,
                        "invalidated_shards": len(invalidated),
                        "delta_records": delta_records,
                        "checkpoint_hits": hits,
                        "checkpoint_stores": pipeline.metrics.checkpoint_stores,
                        "executed_stages": pipeline.metrics.executed_stages,
                        "shuffled_records": pipeline.metrics.shuffled_records,
                    },
                },
            )
            self._save_state(
                {
                    "data_shards": self.data_shards,
                    "engine_shards": pipeline.num_shards,
                    "fingerprints": fingerprints,
                    "version": version.version,
                    "k": self.k,
                    "candidates_per_shard": self.candidates_per_shard,
                }
            )
            return result
        finally:
            pipeline.close()

    def _verify_enabled(self) -> bool:
        if self.verify_reuse is None:
            return DEFAULT_VERIFY_REUSE
        return self.verify_reuse

    def drive_windows(
        self,
        version: DatasetVersion,
        log: DeltaLog,
        window: WindowSpec,
        *,
        cancel: Optional[CancelToken] = None,
        max_windows: Optional[int] = None,
    ) -> List[WindowResult]:
        """Drive every window the log spans, on one warm context.

        Each window's drive sees the dataset **as of the window's end**:
        deltas are applied in timestamp order exactly once, however many
        overlapping windows attribute them.  Empty windows still drive —
        they fully reuse, which is the cheap no-op the reuse metrics make
        visible.
        """
        results: List[WindowResult] = []
        current = version
        applied = 0  # log index of the first not-yet-applied delta
        deltas = list(log)
        last_ts = deltas[-1].timestamp if deltas else window.origin
        index = 0
        while True:
            start, end = window.bounds(index)
            if start > last_ts and index > 0:
                break
            if max_windows is not None and index >= max_windows:
                break
            if cancel is not None:
                cancel.raise_if_cancelled("windowed drive")
            while applied < len(deltas) and deltas[applied].timestamp < end:
                current = current.apply(deltas[applied])
                applied += 1
            in_window = [d for d in deltas if start <= d.timestamp < end]
            result = self.drive(current, deltas=in_window, cancel=cancel)
            results.append(
                WindowResult(
                    index=index,
                    start=start,
                    end=end,
                    delta_records=sum(d.num_records for d in in_window),
                    result=result,
                )
            )
            if start + window.step > last_ts:
                break
            index += 1
        return results
