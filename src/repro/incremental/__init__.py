"""Incremental selection runtime: selection as a live view over deltas.

See :mod:`repro.incremental.delta` for the dataset-version model and
:mod:`repro.incremental.driver` for delta-driven recompute and windowed
streaming drives.
"""

from repro.incremental.delta import (
    DatasetVersion,
    Delta,
    DeltaLog,
    invalidation_summary,
    shard_bounds,
    synthetic_deltas,
)
from repro.incremental.driver import (
    IncrementalDriver,
    IncrementalResult,
    WindowResult,
    WindowSpec,
)
from repro.utils.cancel import CancelToken, DriveCancelled

__all__ = [
    "CancelToken",
    "DatasetVersion",
    "Delta",
    "DeltaLog",
    "DriveCancelled",
    "IncrementalDriver",
    "IncrementalResult",
    "WindowResult",
    "WindowSpec",
    "invalidation_summary",
    "shard_bounds",
    "synthetic_deltas",
]
