"""Job model for the selector service: specs, digests, records, store.

A *job* is one selection request: which dataset to build, which
selector configuration to run, and which engine options to run it
under.  Specs are plain JSON-able dicts end to end, because they cross
the HTTP boundary and land on disk.

The **plan digest** is the service's dedup key: a SHA-256 over the
*normalized* spec — dataset + selector + resolved engine options, with
every omitted field replaced by its default so ``{"k": 5}`` and
``{"k": 5, "seed": 0}`` hash identically.  Tenant, priority, timeout,
and the ``force`` flag are deliberately excluded: *who* asked and *how
urgently* never changes *what* is computed, which is exactly what makes
dedup safe across tenants.  Anything that does change the computation —
a different seed, ``num_shards``, or ``checkpoint_salt`` — lands in the
digest and therefore never dedups.

The :class:`JobStore` is a directory of small JSON files — one per job
record under ``jobs/``, one per *digest* under ``results/`` — written
atomically (temp file + rename), so a restarted server recovers every
record and every completed result, and re-enqueues the jobs a crash
interrupted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.dataflow.options import EngineOptions

__all__ = [
    "JOB_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "family_digest",
    "plan_digest",
]

#: Job lifecycle states.  ``queued → running → done`` is the happy path;
#: ``failed`` carries the exception text, ``cancelled`` and ``timeout``
#: are the two ways a job ends without a result.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "timeout")

#: Dataset-spec fields and their defaults (``preset`` is required).
#: ``version`` is the dataset's delta-log position: version ``v`` is the
#: base dataset with ``v`` synthetic delta steps applied (deterministic
#: in the dataset seed), so resubmitting a job with an advanced version
#: is a *different* plan digest whose incremental drive reuses the
#: previous version's checkpointed shards.
_DATASET_DEFAULTS: Dict[str, Any] = {
    "n_points": None,
    "seed": 0,
    "alpha": 0.9,
    "knn_k": None,
    "version": 0,
}

#: Selector-spec fields and their defaults (``k`` is required).  These
#: mirror ``SelectorConfig`` / the ``repro select`` flags; ``seed`` is
#: the selection seed, distinct from the dataset seed.
_SELECTOR_DEFAULTS: Dict[str, Any] = {
    "bounding": None,
    "sampler": "uniform",
    "sampling_fraction": 1.0,
    "machines": 1,
    "rounds": 1,
    "adaptive": False,
    "gamma": 0.75,
    "seed": 0,
    "engine": "dataflow",
    #: Run the job through the incremental runtime: the drive reuses
    #: checkpointed shards from earlier dataset versions of the same
    #: family and reports ``reused_shards``/``invalidated_shards``.
    "incremental": False,
}


def _normalize_section(
    section: Dict[str, Any],
    defaults: Dict[str, Any],
    required: str,
    what: str,
) -> Dict[str, Any]:
    if not isinstance(section, dict):
        raise ValueError(f"{what} must be an object, got {section!r}")
    unknown = sorted(set(section) - set(defaults) - {required})
    if unknown:
        raise ValueError(
            f"unknown {what} field(s) {unknown}; expected a subset of "
            f"{sorted(set(defaults) | {required})}"
        )
    if required not in section or section[required] is None:
        raise ValueError(f"{what} requires {required!r}")
    out = dict(defaults)
    out.update(section)
    return out


@dataclass
class JobSpec:
    """One selection request, normalized and JSON-able.

    ``dataset`` names a registry preset (plus size/seed/alpha overrides);
    ``selector`` carries the ``SelectorConfig`` knobs plus the selection
    ``seed``; ``engine_options`` is an :class:`~repro.dataflow.options.
    EngineOptions` dict (validated at construction, so a bad knob fails
    at submit time, not deep inside a worker thread).  ``force`` bypasses
    the service's result-store dedup — the job re-executes even when a
    completed digest match exists, which is how the engine's own
    checkpoint resume (``checkpoint_hits``) is exercised through the
    service.
    """

    dataset: Dict[str, Any]
    selector: Dict[str, Any]
    engine_options: Dict[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    timeout_s: Optional[float] = None
    force: bool = False

    def __post_init__(self) -> None:
        self.dataset = _normalize_section(
            self.dataset, _DATASET_DEFAULTS, "preset", "dataset"
        )
        self.selector = _normalize_section(
            self.selector, _SELECTOR_DEFAULTS, "k", "selector"
        )
        self.selector["k"] = int(self.selector["k"])
        if self.selector["k"] < 1:
            raise ValueError(
                f"selector.k must be >= 1, got {self.selector['k']}"
            )
        if self.selector["engine"] not in ("memory", "dataflow"):
            raise ValueError(
                "selector.engine must be 'memory' or 'dataflow', got "
                f"{self.selector['engine']!r}"
            )
        self.dataset["version"] = int(self.dataset["version"])
        if self.dataset["version"] < 0:
            raise ValueError(
                f"dataset.version must be >= 0, got {self.dataset['version']}"
            )
        self.selector["incremental"] = bool(self.selector["incremental"])
        if self.selector["incremental"] and self.selector["engine"] != "dataflow":
            raise ValueError(
                "selector.incremental requires selector.engine='dataflow'"
            )
        # Validate (and normalize) the engine knobs once, up front.
        self.engine_options = EngineOptions.from_dict(
            self.engine_options
        ).to_dict()
        self.tenant = str(self.tenant)
        self.priority = int(self.priority)
        if self.timeout_s is not None:
            self.timeout_s = float(self.timeout_s)
            if self.timeout_s <= 0:
                raise ValueError(
                    f"timeout_s must be > 0, got {self.timeout_s}"
                )
        self.force = bool(self.force)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown job spec field(s) {unknown}; expected a subset "
                f"of {sorted(known)}"
            )
        if "dataset" not in data or "selector" not in data:
            raise ValueError("job spec requires 'dataset' and 'selector'")
        return cls(**data)


def plan_digest(spec: JobSpec) -> str:
    """Deterministic identity of *what* a spec computes (the dedup key).

    Covers the normalized dataset, selector, and resolved engine-options
    sections; excludes tenant/priority/timeout/force (scheduling, not
    semantics).  Engine options go through ``EngineOptions`` resolution
    first, so spelling a default explicitly does not change the digest —
    while any knob that changes results (``checkpoint_salt``, seeds,
    ``num_shards`` …) does.
    """
    canonical = {
        "dataset": spec.dataset,
        "selector": spec.selector,
        "engine_options": spec.engine_options,
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def family_digest(spec: JobSpec) -> str:
    """Identity of a spec's *incremental family*: everything except the
    dataset version.

    Incremental jobs of one family share a checkpoint directory, so a
    drive over version ``N+1`` finds version ``N``'s shard boundaries —
    that is the whole point.  Anything else that changes the computation
    (seeds, ``k``, engine knobs) keys a different family.
    """
    canonical = {
        "dataset": {
            key: value
            for key, value in spec.dataset.items()
            if key != "version"
        },
        "selector": spec.selector,
        "engine_options": spec.engine_options,
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class JobRecord:
    """One job's lifecycle state, as persisted in the store."""

    job_id: str
    spec: JobSpec
    digest: str
    state: str = "queued"
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: ``"store"`` when the result was served from a completed digest
    #: match without executing; ``None`` when this job ran the drive.
    deduped_from: Optional[str] = None

    @classmethod
    def create(cls, spec: JobSpec) -> "JobRecord":
        return cls(
            job_id=uuid.uuid4().hex,
            spec=spec,
            digest=plan_digest(spec),
            created_at=time.time(),
        )

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["spec"] = self.spec.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        data = dict(data)
        data["spec"] = JobSpec.from_dict(data["spec"])
        return cls(**data)


def _atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class JobStore:
    """Directory-backed persistence for job records and results.

    ``<state_dir>/jobs/<job_id>.json`` holds one :class:`JobRecord`;
    ``<state_dir>/results/<digest>.json`` holds one completed result
    payload, keyed by *digest* so every job of an identical spec — from
    any tenant — shares one entry.  All writes are atomic renames, so a
    crash never leaves a half-written record behind.
    """

    def __init__(self, state_dir: str) -> None:
        self.state_dir = str(state_dir)
        self.jobs_dir = os.path.join(self.state_dir, "jobs")
        self.results_dir = os.path.join(self.state_dir, "results")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)

    # -- job records -------------------------------------------------------

    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def save_job(self, record: JobRecord) -> None:
        _atomic_write_json(self._job_path(record.job_id), record.to_dict())

    def load_job(self, job_id: str) -> Optional[JobRecord]:
        try:
            with open(self._job_path(job_id)) as fh:
                return JobRecord.from_dict(json.load(fh))
        except FileNotFoundError:
            return None

    def iter_jobs(self) -> Iterator[JobRecord]:
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            record = self.load_job(name[: -len(".json")])
            if record is not None:
                yield record

    def list_jobs(self) -> List[JobRecord]:
        return sorted(self.iter_jobs(), key=lambda r: r.created_at)

    # -- results (digest-keyed) --------------------------------------------

    def _result_path(self, digest: str) -> str:
        return os.path.join(self.results_dir, f"{digest}.json")

    def save_result(self, digest: str, payload: Dict[str, Any]) -> None:
        _atomic_write_json(self._result_path(digest), payload)

    def load_result(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._result_path(digest)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None

    def has_result(self, digest: str) -> bool:
        return os.path.exists(self._result_path(digest))

    def gc_results(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> int:
        """Age/size-bounded eviction of the ``results/`` directory.

        Two passes: entries whose mtime is older than ``max_age_s`` are
        dropped first, then — while the directory still exceeds
        ``max_bytes`` — the oldest survivors go until it fits.  Job
        records are untouched: a job whose result was evicted keeps its
        terminal state, only ``result()`` re-derivation is lost (a
        ``force`` resubmission recomputes through the engine's
        checkpoints).  Returns the number of entries removed.
        """
        if max_age_s is None and max_bytes is None:
            return 0
        now = time.time() if now is None else now
        entries: List[tuple] = []  # (mtime, size, path)
        for name in os.listdir(self.results_dir):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.results_dir, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()  # oldest first
        removed = 0

        def evict(entry: tuple) -> bool:
            try:
                os.unlink(entry[2])
                return True
            except OSError:
                return False

        survivors: List[tuple] = []
        for entry in entries:
            if max_age_s is not None and now - entry[0] > max_age_s:
                removed += evict(entry)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            total = sum(entry[1] for entry in survivors)
            for entry in survivors:
                if total <= max_bytes:
                    break
                if evict(entry):
                    removed += 1
                    total -= entry[1]
        return removed
