"""The selector service: queue, warm contexts, dedup, HTTP front end.

One long-lived driver process serves many selection jobs:

Job queue
    :meth:`SelectorService.submit` validates and persists a
    :class:`~repro.service.jobs.JobSpec`, then enqueues it
    FIFO-within-priority (higher ``priority`` first, submission order
    breaking ties).  A bounded pool of driver threads
    (``max_running``) drains the queue.

Warm contexts
    Each drive runs on a shared :class:`~repro.dataflow.options.
    DataflowContext` — one per distinct
    :class:`~repro.dataflow.options.EngineOptions` profile, created on
    first use and kept warm — through a per-job
    :meth:`~repro.dataflow.options.DataflowContext.scoped` view, so
    concurrent tenants share one executor pool and broadcast/blob cache
    while each job's ``executor_stats`` stay isolated.  Datasets are
    cached by their (preset, size, seed, alpha) identity, so repeat
    submissions skip the build too.

Dedup
    A job whose plan digest matches a completed result is answered from
    the store without executing; a digest already *in flight* waits for
    the leader and then serves the stored result — identical concurrent
    submissions execute exactly once.  ``force=True`` bypasses the store
    (the way to exercise the engine's own checkpoint resume through the
    service).

Admission control
    Submissions are rejected (HTTP 429) when the queue is full and when
    a job exceeds the per-job ``num_shards`` / dataset-record caps —
    before anything is persisted or scheduled.

Timeouts and cancellation
    A queued job cancels immediately.  A running job's drive carries a
    :class:`~repro.utils.cancel.CancelToken` checked at stage boundaries
    (and between windows for incremental drives), so cancellation stops
    it cooperatively at the next boundary instead of discarding a
    detached thread.  A timeout sets the same token — the drive thread
    is detached for reporting purposes but stops at its next check
    rather than running to completion.

Incremental drives
    A spec with ``selector.incremental=true`` (dataflow engine only)
    runs through :class:`repro.incremental.IncrementalDriver` against a
    checkpoint directory shared by the job's *family* — every field
    except ``dataset.version``.  Resubmitting with an advanced version
    recomputes only the shards its synthetic deltas touched; the result
    payload reports ``reused_shards`` / ``invalidated_shards``.

Result eviction
    The ``results/`` store is garbage-collected by age and total size
    (``result_max_age_s`` / ``result_max_bytes``): opportunistically
    after every stored result, and on demand via ``POST
    /v1/results/gc`` (``repro jobs --gc``).  Evictions are counted in
    the ``results_evicted`` metric.

The HTTP front end is a stdlib ``ThreadingHTTPServer``; every response
is JSON.  Routes::

    POST /v1/jobs             submit a JobSpec          → job record
    GET  /v1/jobs             list job records
    GET  /v1/jobs/<id>        one job record
    GET  /v1/jobs/<id>/result completed result payload
    POST /v1/jobs/<id>/cancel cancel queued/running job
    POST /v1/results/gc       evict stored results      → {"removed": n}
    GET  /v1/metrics          queue depth, counters, per-profile
                              executor stats, lifecycle events
    GET  /v1/healthz          liveness probe
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.dataflow.options import DataflowContext, EngineOptions
from repro.service.client import AdmissionError, ServiceError
from repro.service.jobs import JobRecord, JobSpec, JobStore, family_digest
from repro.utils.cancel import CancelToken, DriveCancelled

__all__ = ["SelectorService", "ServiceConfig", "serve", "start_http_server"]


@dataclass
class ServiceConfig:
    """Service-level knobs (admission caps, concurrency, persistence)."""

    state_dir: str
    max_queued: int = 64
    max_running: int = 4
    #: Per-job cap on ``EngineOptions.num_shards`` (admission control).
    max_num_shards: int = 64
    #: Per-job cap on the dataset's point count (admission control).
    max_records: int = 1_000_000
    #: Applied when a spec carries no ``timeout_s`` (``None`` = no limit).
    default_timeout_s: Optional[float] = None
    #: Distinct (preset, size, seed, alpha) datasets kept warm.
    problem_cache_size: int = 8
    #: Evict stored results older than this many seconds (``None`` = keep).
    result_max_age_s: Optional[float] = None
    #: Evict oldest stored results while ``results/`` exceeds this size.
    result_max_bytes: Optional[int] = None


class SelectorService:
    """The long-lived driver behind the HTTP front end.

    Usable directly in-process (the tests do) — the HTTP layer is a thin
    JSON shim over :meth:`submit` / :meth:`status` / :meth:`result` /
    :meth:`cancel` / :meth:`metrics`.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = JobStore(config.state_dir)
        # Reentrant: _finish/_event run both standalone and from paths
        # already holding the condition's lock (dedup, cancel-on-queue).
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []  # (-priority, seq, id)
        self._seq = 0
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[str, str] = {}  # digest -> leader job_id
        self._cancel_requested: "set[str]" = set()
        self._cancel_tokens: Dict[str, CancelToken] = {}
        self._running: "set[str]" = set()
        self._contexts: "OrderedDict[str, DataflowContext]" = OrderedDict()
        self._problems: "OrderedDict[str, Tuple[Any, Any]]" = OrderedDict()
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=1000)
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "dedup_hits": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "timeouts": 0,
            "results_evicted": 0,
        }
        self._closed = False
        # Recover persisted state: completed records are kept for
        # status/result queries; interrupted ones go back on the queue.
        for record in self.store.list_jobs():
            self._records[record.job_id] = record
            if record.state in ("queued", "running"):
                record.state = "queued"
                record.started_at = None
                self.store.save_job(record)
                self._push(record)
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-job-{i}", daemon=True
            )
            for i in range(max(1, int(config.max_running)))
        ]
        for worker in self._workers:
            worker.start()

    # -- submission & queries ----------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit, persist, and enqueue one job (or reject it cleanly).

        Raises :class:`~repro.service.client.AdmissionError` when the
        queue is full or the job exceeds the per-job caps; nothing is
        persisted for a rejected submission.
        """
        self._check_caps(spec)
        record = JobRecord.create(spec)
        with self._cond:
            if self._closed:
                raise ServiceError(503, "service is shutting down")
            queued = sum(
                1 for r in self._records.values() if r.state == "queued"
            )
            if queued >= self.config.max_queued:
                self._counters["rejected"] += 1
                raise AdmissionError(
                    429,
                    f"queue full ({queued}/{self.config.max_queued} "
                    "jobs queued); retry later",
                )
            self._counters["submitted"] += 1
            self._records[record.job_id] = record
            self.store.save_job(record)
            self._push(record)
            self._event(record, "queued")
            self._cond.notify()
        return record

    def status(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return record

    def result(self, job_id: str) -> Dict[str, Any]:
        record = self.status(job_id)
        if record.state != "done":
            raise ServiceError(
                404, f"job {job_id} has no result (state={record.state!r})"
            )
        payload = self.store.load_result(record.digest)
        if payload is None:  # pragma: no cover - store tampering
            raise ServiceError(500, f"result for {job_id} missing from store")
        return payload

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: immediate when queued, cooperative when running.

        A running drive carries a :class:`CancelToken`; setting it here
        makes the drive raise :class:`DriveCancelled` at its next stage
        (or window) boundary instead of running to completion.
        """
        with self._cond:
            record = self._records.get(job_id)
            if record is None:
                raise ServiceError(404, f"unknown job {job_id!r}")
            if record.state == "queued":
                record.state = "cancelled"
                record.finished_at = time.time()
                self.store.save_job(record)
                self._counters["cancelled"] += 1
                self._event(record, "cancelled")
            elif record.state == "running":
                self._cancel_requested.add(job_id)
                token = self._cancel_tokens.get(job_id)
                if token is not None:
                    token.cancel(f"job {job_id[:8]} cancelled by client")
                self._event(record, "cancel_requested")
            return record

    def gc_results(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict stored results by age/size; returns the eviction count.

        Explicit arguments override the configured defaults
        (``result_max_age_s`` / ``result_max_bytes``); with neither set
        anywhere this is a no-op.
        """
        if max_age_s is None:
            max_age_s = self.config.result_max_age_s
        if max_bytes is None:
            max_bytes = self.config.result_max_bytes
        removed = self.store.gc_results(
            max_age_s=max_age_s, max_bytes=max_bytes
        )
        if removed:
            with self._lock:
                self._counters["results_evicted"] += removed
        return removed

    def jobs(self) -> List[JobRecord]:
        with self._lock:
            return sorted(
                self._records.values(), key=lambda r: r.created_at
            )

    def metrics(self) -> Dict[str, Any]:
        """Queue depth, lifecycle counters, per-profile executor stats."""
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            contexts = {
                key: {
                    "options": ctx.options.to_dict(),
                    "executor_stats": ctx.executor.stats(),
                }
                for key, ctx in self._contexts.items()
            }
            return {
                "queue_depth": states.get("queued", 0),
                "running": len(self._running),
                "states": states,
                "counters": dict(self._counters),
                "warm_contexts": contexts,
                "events": list(self._events),
            }

    def close(self) -> None:
        """Stop the workers and tear down every warm context."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        for worker in self._workers:
            worker.join(timeout=5)
        with self._lock:
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for ctx in contexts:
            ctx.close()

    # -- admission ---------------------------------------------------------

    def _check_caps(self, spec: JobSpec) -> None:
        num_shards = spec.engine_options.get("num_shards", 1)
        if num_shards > self.config.max_num_shards:
            with self._lock:
                self._counters["rejected"] += 1
            raise AdmissionError(
                429,
                f"num_shards={num_shards} exceeds the per-job cap of "
                f"{self.config.max_num_shards}",
            )
        records = self._dataset_records(spec.dataset)
        if records is not None and records > self.config.max_records:
            with self._lock:
                self._counters["rejected"] += 1
            raise AdmissionError(
                429,
                f"dataset of {records} records exceeds the per-job cap "
                f"of {self.config.max_records}",
            )

    @staticmethod
    def _dataset_records(dataset: Dict[str, Any]) -> Optional[int]:
        if dataset.get("n_points") is not None:
            return int(dataset["n_points"])
        from repro.data.registry import DATASET_PRESETS

        preset = DATASET_PRESETS.get(dataset["preset"])
        return preset.n_points if preset is not None else None

    # -- queue internals ---------------------------------------------------

    def _push(self, record: JobRecord) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue, (-record.spec.priority, self._seq, record.job_id)
        )

    def _event(
        self, record: JobRecord, event: str, detail: Optional[str] = None
    ) -> None:
        entry: Dict[str, Any] = {
            "ts": time.time(),
            "job_id": record.job_id,
            "tenant": record.spec.tenant,
            "event": event,
        }
        if detail:
            entry["detail"] = detail
        self._events.append(entry)

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return
                _, _, job_id = heapq.heappop(self._queue)
                record = self._records.get(job_id)
                if record is None or record.state != "queued":
                    continue  # cancelled while queued
                record.state = "running"
                record.started_at = time.time()
                self._running.add(job_id)
                self.store.save_job(record)
                self._event(record, "running")
            try:
                self._run_job(record)
            finally:
                with self._cond:
                    self._running.discard(job_id)
                    self._cancel_requested.discard(job_id)

    def _finish(
        self,
        record: JobRecord,
        state: str,
        *,
        error: Optional[str] = None,
        deduped_from: Optional[str] = None,
        counter: Optional[str] = None,
    ) -> None:
        with self._lock:
            record.state = state
            record.finished_at = time.time()
            record.error = error
            record.deduped_from = deduped_from
            if counter:
                self._counters[counter] += 1
            self.store.save_job(record)
            self._event(record, state, detail=error)

    def _run_job(self, record: JobRecord) -> None:
        spec, digest = record.spec, record.digest
        # Dedup: a completed digest match is served from the store; an
        # in-flight match waits for its leader.  The loop re-checks after
        # every wake-up because a leader may fail (or be cancelled)
        # without storing a result, in which case a waiter takes over.
        while True:
            with self._cond:
                if record.job_id in self._cancel_requested:
                    self._finish(record, "cancelled", counter="cancelled")
                    return
                if not spec.force and self.store.has_result(digest):
                    self._counters["dedup_hits"] += 1
                    self._finish(
                        record,
                        "done",
                        deduped_from="store",
                        counter="completed",
                    )
                    return
                if spec.force or digest not in self._inflight:
                    self._inflight[digest] = record.job_id
                    break
                self._cond.wait(timeout=0.25)
        try:
            self._drive_with_timeout(record)
        finally:
            with self._cond:
                if self._inflight.get(digest) == record.job_id:
                    del self._inflight[digest]
                self._cond.notify_all()

    def _drive_with_timeout(self, record: JobRecord) -> None:
        timeout = record.spec.timeout_s
        if timeout is None:
            timeout = self.config.default_timeout_s
        box: Dict[str, Any] = {}
        token = CancelToken()
        with self._lock:
            self._cancel_tokens[record.job_id] = token

        def drive() -> None:
            try:
                box["payload"] = self._execute(record, cancel=token)
            except DriveCancelled:
                box["cancelled"] = True
            except BaseException as exc:  # noqa: BLE001 - reported to client
                box["error"] = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()

        thread = threading.Thread(
            target=drive, name=f"drive-{record.job_id[:8]}", daemon=True
        )
        try:
            thread.start()
            thread.join(timeout)
            if thread.is_alive():
                # Report the timeout now; the token makes the detached
                # drive stop at its next stage boundary instead of
                # burning the worker pool to completion.
                token.cancel(f"job {record.job_id[:8]} exceeded {timeout:g}s")
                self._finish(
                    record,
                    "timeout",
                    error=f"exceeded {timeout:g}s",
                    counter="timeouts",
                )
                return
            with self._lock:
                cancelled = record.job_id in self._cancel_requested
            if cancelled or box.get("cancelled"):
                self._finish(record, "cancelled", counter="cancelled")
                return
            if "error" in box:
                self._finish(
                    record, "failed", error=box["error"], counter="failed"
                )
                return
            self.store.save_result(record.digest, box["payload"])
            self._finish(record, "done", counter="completed")
            if (
                self.config.result_max_age_s is not None
                or self.config.result_max_bytes is not None
            ):
                self.gc_results()
        finally:
            with self._lock:
                self._cancel_tokens.pop(record.job_id, None)

    # -- execution ---------------------------------------------------------

    def _execute(
        self, record: JobRecord, cancel: Optional[CancelToken] = None
    ) -> Dict[str, Any]:
        # Imported here so importing the service package (e.g. for the
        # client) stays cheap; these pull in NumPy and the whole engine.
        from repro.core.pipeline import DistributedSelector, SelectorConfig
        from repro.io import report_to_dict

        spec = record.spec
        sel = spec.selector
        if sel["incremental"]:
            return self._execute_incremental(record, cancel=cancel)
        problem, _ = self._problem(spec.dataset)
        options = EngineOptions.from_dict(spec.engine_options)
        config = SelectorConfig(
            bounding=sel["bounding"],
            sampler=sel["sampler"],
            sampling_fraction=sel["sampling_fraction"],
            machines=sel["machines"],
            rounds=sel["rounds"],
            adaptive=sel["adaptive"],
            gamma=sel["gamma"],
            engine=sel["engine"],
            options=options,
        )
        selector = DistributedSelector(problem, config)
        if sel["engine"] == "dataflow":
            view = self._warm_context(options).scoped()
            try:
                report = selector.select(
                    sel["k"], seed=sel["seed"], context=view, cancel=cancel
                )
            finally:
                view.close()
        else:
            report = selector.select(sel["k"], seed=sel["seed"], cancel=cancel)
        return {
            "job_id": record.job_id,
            "digest": record.digest,
            "tenant": spec.tenant,
            "report": report_to_dict(report),
            "executor_stats": report.extra.get("executor_stats", {}),
        }

    def _execute_incremental(
        self, record: JobRecord, cancel: Optional[CancelToken] = None
    ) -> Dict[str, Any]:
        """Drive an ``incremental: true`` job through the delta runtime.

        ``dataset.version`` picks the dataset version: version ``v`` is
        the base ground set advanced by ``v`` synthetic delta steps
        (deterministic in the dataset seed).  All versions of one job
        *family* (the spec minus the version) share a checkpoint
        directory under the service state dir, so resubmitting with the
        version advanced re-executes only the delta cone and the payload
        reports how much was reused.
        """
        from repro.incremental import (
            DatasetVersion,
            IncrementalDriver,
            synthetic_deltas,
        )

        spec = record.spec
        sel = spec.selector
        dataset = spec.dataset
        base = {k: v for k, v in dataset.items() if k != "version"}
        problem, _ = self._problem(base)
        version = DatasetVersion.initial(problem.utilities)
        steps = dataset["version"]
        log = None
        if steps > 0:
            log = synthetic_deltas(
                version, seed=dataset["seed"], steps=steps, frac=0.1
            )
            version = version.apply_all(log)
        checkpoint_dir = os.path.join(
            self.config.state_dir, "incremental", family_digest(spec)
        )
        options = EngineOptions.from_dict(
            {**spec.engine_options, "checkpoint_dir": checkpoint_dir}
        )
        view = self._warm_context(options).scoped()
        try:
            driver = IncrementalDriver(
                problem, sel["k"], context=view, data_shards=8
            )
            # Attribute the deltas applied since the family's last drive
            # (synthetic step i carries timestamp i) to the metrics.
            previous = driver.last_version()
            deltas = (
                log.between(float(previous), float(steps))
                if log is not None and previous is not None
                else list(log)
                if log is not None
                else None
            )
            result = driver.drive(version, deltas=deltas, cancel=cancel)
            stats = view.executor.stats()
        finally:
            view.close()
        return {
            "job_id": record.job_id,
            "digest": record.digest,
            "tenant": spec.tenant,
            "report": {
                "selected": [int(v) for v in result.selected],
                "objective": float(result.objective),
                "version": int(result.version),
                "incremental": {
                    "reused_shards": result.reused_shards,
                    "invalidated_shards": result.invalidated_shards,
                    "delta_records": result.delta_records,
                    "checkpoint_hits": result.checkpoint_hits,
                    "executed_stages": result.executed_stages,
                },
            },
            "executor_stats": stats,
        }

    def _warm_context(self, options: EngineOptions) -> DataflowContext:
        """The shared warm context for one options profile (LRU-less:
        profiles are few — one per distinct engine configuration)."""
        key = json.dumps(options.to_dict(), sort_keys=True)
        with self._lock:
            ctx = self._contexts.get(key)
            if ctx is None:
                ctx = DataflowContext(options)
                self._contexts[key] = ctx
            return ctx

    def _problem(self, dataset: Dict[str, Any]) -> Tuple[Any, Any]:
        from repro.core.problem import SubsetProblem
        from repro.data.registry import load_dataset

        key = json.dumps(dataset, sort_keys=True)
        with self._lock:
            if key in self._problems:
                self._problems.move_to_end(key)
                return self._problems[key]
        kwargs: Dict[str, Any] = {
            "n_points": dataset["n_points"],
            "seed": dataset["seed"],
        }
        if dataset["knn_k"] is not None:
            kwargs["knn_k"] = dataset["knn_k"]
        ds = load_dataset(dataset["preset"], **kwargs)
        problem = SubsetProblem.with_alpha(
            ds.utilities, ds.graph, dataset["alpha"]
        )
        entry = (problem, ds.embeddings)
        with self._lock:
            self._problems[key] = entry
            self._problems.move_to_end(key)
            while len(self._problems) > self.config.problem_cache_size:
                self._problems.popitem(last=False)
        return entry


# -- HTTP front end ---------------------------------------------------------


def _make_handler(service: SelectorService):
    class Handler(BaseHTTPRequestHandler):
        # Quiet by default; the metrics endpoint replaces access logs.
        def log_message(self, fmt: str, *args: Any) -> None:
            pass

        def _json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _error(self, exc: ServiceError) -> None:
            self._json(exc.status, {"error": str(exc)})

        def _read_body(self) -> Dict[str, Any]:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b"{}"
            data = json.loads(raw.decode())
            if not isinstance(data, dict):
                raise ValueError("request body must be a JSON object")
            return data

        def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            try:
                parts = [p for p in self.path.split("?")[0].split("/") if p]
                if parts == ["v1", "healthz"]:
                    self._json(200, {"ok": True})
                elif parts == ["v1", "metrics"]:
                    self._json(200, service.metrics())
                elif parts == ["v1", "jobs"]:
                    self._json(
                        200,
                        {"jobs": [r.to_dict() for r in service.jobs()]},
                    )
                elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
                    self._json(200, service.status(parts[2]).to_dict())
                elif (
                    len(parts) == 4
                    and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "result"
                ):
                    self._json(200, service.result(parts[2]))
                else:
                    self._json(404, {"error": f"no route {self.path!r}"})
            except ServiceError as exc:
                self._error(exc)

        def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
            try:
                parts = [p for p in self.path.split("?")[0].split("/") if p]
                if parts == ["v1", "jobs"]:
                    try:
                        spec = JobSpec.from_dict(self._read_body())
                    except (ValueError, TypeError) as exc:
                        self._json(400, {"error": str(exc)})
                        return
                    self._json(200, service.submit(spec).to_dict())
                elif (
                    len(parts) == 4
                    and parts[:2] == ["v1", "jobs"]
                    and parts[3] == "cancel"
                ):
                    self._json(200, service.cancel(parts[2]).to_dict())
                elif parts == ["v1", "results", "gc"]:
                    try:
                        body = self._read_body()
                    except (ValueError, TypeError) as exc:
                        self._json(400, {"error": str(exc)})
                        return
                    max_age = body.get("max_age_s")
                    max_bytes = body.get("max_bytes")
                    removed = service.gc_results(
                        max_age_s=(
                            float(max_age) if max_age is not None else None
                        ),
                        max_bytes=(
                            int(max_bytes) if max_bytes is not None else None
                        ),
                    )
                    self._json(200, {"removed": removed})
                else:
                    self._json(404, {"error": f"no route {self.path!r}"})
            except ServiceError as exc:
                self._error(exc)

    return Handler


def start_http_server(
    service: SelectorService, host: str = "127.0.0.1", port: int = 0
) -> Tuple[ThreadingHTTPServer, threading.Thread]:
    """Bind the HTTP front end and serve it from a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — what the tests and the CI smoke job use.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    thread.start()
    return server, thread


def serve(config: ServiceConfig, host: str = "127.0.0.1", port: int = 7171):
    """Run the service in the foreground (the ``repro serve`` entry).

    Prints ``REPRO_SERVICE_READY <host> <port>`` once the socket is
    bound, then blocks until interrupted.
    """
    service = SelectorService(config)
    server, thread = start_http_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"REPRO_SERVICE_READY {bound_host} {bound_port}", flush=True)
    try:
        thread.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.shutdown()
        service.close()
    return 0
