"""Stdlib-only HTTP client for the selector service.

:class:`ServiceClient` wraps the service's JSON routes in plain method
calls — submit, status, result, wait, cancel, jobs, metrics — opening
one :class:`http.client.HTTPConnection` per request (the service is a
threaded server; connection reuse buys nothing at this request rate and
keeps the client free of state).

Errors mirror HTTP: every non-2xx response raises :class:`ServiceError`
carrying the status code and the server's message;
:class:`AdmissionError` (a subclass) marks 429-style admission
rejections, so callers can distinguish "retry later" from "your request
is wrong".  Both classes are also what the *server* raises internally —
the HTTP layer is a serialization of these exceptions, and in-process
callers (tests) see the identical error surface.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["AdmissionError", "ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A service-level failure with its HTTP status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class AdmissionError(ServiceError):
    """The service refused to admit a job (queue full, over caps)."""


class ServiceClient:
    """Thin JSON-over-HTTP client for one service endpoint."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7171, timeout: float = 30.0
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            if response.status >= 400:
                message = data.get("error", f"HTTP {response.status}")
                if response.status == 429:
                    raise AdmissionError(response.status, message)
                raise ServiceError(response.status, message)
            return data
        finally:
            conn.close()

    # -- the service API ---------------------------------------------------

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a job spec (a :class:`~repro.service.jobs.JobSpec`
        dict); returns the created job record."""
        return self._request("POST", "/v1/jobs", body=spec)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def gc_results(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Evict stored results by age/size; returns the eviction count.

        Omitted bounds fall back to the service's configured defaults.
        """
        body: Dict[str, Any] = {}
        if max_age_s is not None:
            body["max_age_s"] = max_age_s
        if max_bytes is not None:
            body["max_bytes"] = max_bytes
        return int(
            self._request("POST", "/v1/results/gc", body=body)["removed"]
        )

    def healthz(self) -> bool:
        return bool(self._request("GET", "/v1/healthz").get("ok"))

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job leaves the queue/running states.

        Returns the final job record (any terminal state — the caller
        checks ``state``); raises :class:`ServiceError` on poll timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] not in ("queued", "running"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    504,
                    f"job {job_id} still {record['state']!r} after "
                    f"{timeout:g}s",
                )
            time.sleep(poll_interval)
