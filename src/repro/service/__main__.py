"""``python -m repro.service`` — run the selector service in the
foreground.  Prints ``REPRO_SERVICE_READY <host> <port>`` once the
socket is bound (``--port 0`` binds an ephemeral port; the printed line
is how scripts and the CI smoke job learn it)."""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.service.server import ServiceConfig, serve


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="long-lived selector service (job queue, warm "
        "contexts, metrics endpoint)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7171,
        help="listen port (0 binds an ephemeral port, printed on the "
        "REPRO_SERVICE_READY line)",
    )
    parser.add_argument(
        "--state-dir", required=True,
        help="directory for the persistent job store (jobs/ and "
        "results/); survives restarts",
    )
    parser.add_argument(
        "--max-queued", type=int, default=64,
        help="admission cap on queued jobs (429 beyond it)",
    )
    parser.add_argument(
        "--max-running", type=int, default=4,
        help="bounded pool of concurrent drives",
    )
    parser.add_argument(
        "--max-num-shards", type=int, default=64,
        help="per-job cap on EngineOptions.num_shards",
    )
    parser.add_argument(
        "--max-records", type=int, default=1_000_000,
        help="per-job cap on the dataset's point count",
    )
    parser.add_argument(
        "--default-timeout", type=float, default=None, metavar="SECONDS",
        help="timeout applied to jobs that carry none",
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServiceConfig(
        state_dir=args.state_dir,
        max_queued=args.max_queued,
        max_running=args.max_running,
        max_num_shards=args.max_num_shards,
        max_records=args.max_records,
        default_timeout_s=args.default_timeout,
    )
    return serve(config, host=args.host, port=args.port)


if __name__ == "__main__":
    sys.exit(main())
