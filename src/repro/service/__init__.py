"""Selector-as-a-service: a long-lived driver in front of the engine.

Everything else in this repo is one-shot: every ``repro select`` pays
executor-pool spawn, closure broadcast, and cost-model calibration from
cold.  This package keeps one driver process warm and shares that state
across submissions:

:mod:`repro.service.jobs`
    The job model — :class:`~repro.service.jobs.JobSpec` (what to
    select, JSON-able), its deterministic plan digest (the dedup key),
    :class:`~repro.service.jobs.JobRecord` lifecycle state, and the
    directory-backed :class:`~repro.service.jobs.JobStore` that makes
    jobs and results survive a restart.

:mod:`repro.service.server`
    The service itself — a FIFO-with-priorities queue drained by a
    bounded pool of driver threads, each drive multiplexed onto a shared
    warm :class:`~repro.dataflow.options.DataflowContext` (one per
    distinct :class:`~repro.dataflow.options.EngineOptions` profile)
    through per-job :meth:`~repro.dataflow.options.DataflowContext.
    scoped` views; digest-matched resubmissions answered from the store
    without recompute; admission control, per-job timeouts and
    cancellation; and a threaded HTTP front end with a metrics endpoint.

:mod:`repro.service.client`
    A thin stdlib-only HTTP client (submit / status / result / wait /
    cancel / jobs / metrics) — what ``repro submit`` and ``repro jobs``
    drive.

Start a server with ``python -m repro.service`` (or ``repro serve``);
it prints ``REPRO_SERVICE_READY <host> <port>`` once the socket is
bound.
"""

from repro.service.client import (  # noqa: F401
    AdmissionError,
    ServiceClient,
    ServiceError,
)
from repro.service.jobs import (  # noqa: F401
    JobRecord,
    JobSpec,
    JobStore,
    plan_digest,
)
from repro.service.server import (  # noqa: F401
    SelectorService,
    ServiceConfig,
    serve,
    start_http_server,
)

__all__ = [
    "AdmissionError",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "SelectorService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "plan_digest",
    "serve",
    "start_http_server",
]
