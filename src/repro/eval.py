"""Selection-quality evaluation metrics.

The paper evaluates purely on the submodular objective ("without training
models, to limit the parameter space"); downstream users usually want a
broader view.  This module provides the standard subset-quality metrics the
benches and examples report alongside `f(S)`:

- class coverage / balance (entropy of the selected label histogram),
- coverage radius (max distance from any ground-set point to the subset —
  the k-center objective),
- facility-location value (sum over points of max similarity into S),
- mean within-subset redundancy (the diversity term, per point),
- utility capture (fraction of total utility mass selected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.graph.knn import l2_normalize


@dataclass(frozen=True)
class SelectionMetrics:
    """Bundle of quality metrics for one selected subset."""

    objective: float
    utility_capture: float
    redundancy_per_point: float
    class_coverage: Optional[float] = None
    class_balance_entropy: Optional[float] = None
    coverage_radius: Optional[float] = None
    facility_location: Optional[float] = None


def evaluate_selection(
    problem: SubsetProblem,
    selected: np.ndarray,
    *,
    labels: Optional[np.ndarray] = None,
    embeddings: Optional[np.ndarray] = None,
    embedding_block: int = 2048,
) -> SelectionMetrics:
    """Compute :class:`SelectionMetrics` for ``selected``.

    ``labels`` enables the class metrics; ``embeddings`` enables coverage
    radius and facility location (computed blocked, O(block × |S|) memory).
    """
    selected = np.asarray(selected, dtype=np.int64)
    if selected.size and (selected.min() < 0 or selected.max() >= problem.n):
        raise ValueError("selected ids out of range")
    objective = PairwiseObjective(problem)
    f_value = objective.value(selected)
    total_utility = float(problem.utilities.sum())
    capture = (
        float(problem.utilities[selected].sum()) / total_utility
        if total_utility > 0
        else 0.0
    )
    redundancy = (
        objective.pairwise(selected) / selected.size if selected.size else 0.0
    )

    class_coverage = balance_entropy = None
    if labels is not None:
        labels = np.asarray(labels)
        n_classes = np.unique(labels).size
        hist = np.bincount(
            np.searchsorted(np.unique(labels), labels[selected]),
            minlength=n_classes,
        ).astype(float)
        class_coverage = float((hist > 0).sum() / n_classes)
        p = hist / hist.sum() if hist.sum() else hist
        nz = p[p > 0]
        raw_entropy = float(-(nz * np.log(nz)).sum()) if nz.size else 0.0
        balance_entropy = (
            raw_entropy / np.log(n_classes) if n_classes > 1 else 1.0
        )

    radius = facility = None
    if embeddings is not None and selected.size:
        x = np.asarray(embeddings, dtype=np.float64)
        if x.shape[0] != problem.n:
            raise ValueError("embeddings must align with the ground set")
        xs = x[selected]
        xn = l2_normalize(x)
        xsn = l2_normalize(xs)
        max_sim = np.empty(problem.n)
        min_dist = np.empty(problem.n)
        for start in range(0, problem.n, embedding_block):
            stop = min(start + embedding_block, problem.n)
            sims = xn[start:stop] @ xsn.T
            max_sim[start:stop] = sims.max(axis=1)
            d = np.linalg.norm(
                x[start:stop, None, :] - xs[None, :, :], axis=-1
            ) if xs.shape[0] * (stop - start) <= 4_000_000 else None
            if d is not None:
                min_dist[start:stop] = d.min(axis=1)
            else:  # memory-safe fallback via expansion identity
                sq = (
                    (x[start:stop] ** 2).sum(axis=1)[:, None]
                    - 2.0 * x[start:stop] @ xs.T
                    + (xs**2).sum(axis=1)[None, :]
                )
                min_dist[start:stop] = np.sqrt(np.maximum(sq.min(axis=1), 0.0))
        radius = float(min_dist.max())
        facility = float(max_sim.sum())

    return SelectionMetrics(
        objective=f_value,
        utility_capture=capture,
        redundancy_per_point=float(redundancy),
        class_coverage=class_coverage,
        class_balance_entropy=balance_entropy,
        coverage_radius=radius,
        facility_location=facility,
    )
