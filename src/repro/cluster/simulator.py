"""Round-level cluster simulator for the distributed greedy algorithm.

Couples the *actual* selection algorithm (Alg. 6) to the machine model:
every round's partitions are checked against the machines' DRAM, per-round
makespan is the slowest machine's simulated task time, and the run fails
fast if any partition could not fit — the failure mode that motivates the
whole paper (prior methods' final centralized merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec, greedy_state_bytes
from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    distributed_greedy,
)
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike


class PartitionTooLargeError(RuntimeError):
    """A partition's greedy state exceeds the machine's DRAM."""


@dataclass(frozen=True)
class WhatIfOutcome:
    """Predicted outcome of one ``(m, rounds)`` configuration.

    Produced by :meth:`ClusterSimulator.what_if` without running the
    selection algorithm — the round sizes follow the Δ-schedule in closed
    form, so the prediction is deterministic and CI-cheap.
    """

    m: int
    rounds: int
    feasible: bool
    predicted_hours: float
    per_round_hours: List[float] = field(default_factory=list)
    peak_partition_bytes: int = 0


@dataclass
class SimulatedRun:
    """A distributed-greedy run plus its simulated cluster telemetry."""

    result: DistributedResult
    makespan_hours: float
    per_round_hours: List[float] = field(default_factory=list)
    peak_partition_bytes: int = 0
    preemptions: int = 0


class ClusterSimulator:
    """Executes Alg. 6 while accounting a modeled cluster's time and memory.

    ``preemption_rate`` injects the failure mode of shared heterogeneous
    clusters (the paper's Appendix D complains about exactly this): each
    machine-round is preempted independently with that probability, and a
    preempted partition's greedy task is re-run from scratch — the selection
    outcome is unchanged (the per-partition greedy is deterministic), only
    wall-clock suffers.
    """

    def __init__(
        self,
        machine: Optional[MachineSpec] = None,
        cost_model: Optional[CostModel] = None,
        *,
        neighbors_per_point: int = 10,
        preemption_rate: float = 0.0,
    ) -> None:
        if not 0.0 <= preemption_rate < 1.0:
            raise ValueError(
                f"preemption_rate must be in [0, 1), got {preemption_rate}"
            )
        self.machine = machine or MachineSpec()
        self.cost_model = cost_model or CostModel(machine=self.machine)
        self.neighbors_per_point = neighbors_per_point
        self.preemption_rate = float(preemption_rate)

    def run(
        self,
        problem: SubsetProblem,
        k: int,
        *,
        m: int,
        rounds: int = 1,
        adaptive: bool = False,
        gamma: float = 0.75,
        seed: SeedLike = None,
    ) -> SimulatedRun:
        """Run the real algorithm; bill time/memory against the model."""
        from repro.utils.rng import as_generator

        rng = as_generator(seed)
        result = distributed_greedy(
            problem,
            k,
            m=m,
            rounds=rounds,
            adaptive=adaptive,
            schedule=LinearDeltaSchedule(gamma),
            seed=rng,
        )
        kg = problem.graph.average_degree()
        per_round_hours: List[float] = []
        peak_bytes = 0
        preemptions = 0
        for stats in result.rounds:
            partition_size = int(np.ceil(stats.input_size / stats.m_round))
            state = greedy_state_bytes(
                partition_size, neighbors_per_point=self.neighbors_per_point
            )
            peak_bytes = max(peak_bytes, state)
            if state > self.machine.dram_bytes:
                raise PartitionTooLargeError(
                    f"round {stats.round_idx}: partition of {partition_size} "
                    f"points needs {state} B > {self.machine.dram_bytes} B DRAM"
                )
            compute = self.cost_model.greedy_partition_seconds(
                partition_size, stats.per_partition_target, kg
            )
            shuffle = self.cost_model.shuffle_seconds(
                stats.input_size, stats.m_round
            )
            # Preemption: the round's makespan is set by its slowest machine;
            # every preempted machine retries, so each failure adds one full
            # task time to that machine's clock (geometric retries).
            retries = 0
            if self.preemption_rate > 0.0:
                attempts = rng.geometric(
                    1.0 - self.preemption_rate, size=stats.m_round
                )
                retries = int(attempts.max() - 1)
                preemptions += int((attempts - 1).sum())
            per_round_hours.append(
                (
                    self.cost_model.straggler_factor * compute * (1 + retries)
                    + shuffle
                    + self.cost_model.per_round_overhead_sec
                )
                / 3600.0
            )
        return SimulatedRun(
            result=result,
            makespan_hours=float(sum(per_round_hours)),
            per_round_hours=per_round_hours,
            peak_partition_bytes=peak_bytes,
            preemptions=preemptions,
        )

    # -- what-if planning (no algorithm run) -------------------------------

    def what_if(
        self,
        n_points: int,
        k: int,
        *,
        m: int,
        rounds: int = 1,
        adaptive: bool = False,
        gamma: float = 0.75,
        avg_degree: float = 10.0,
    ) -> WhatIfOutcome:
        """Predict a configuration's makespan without running anything.

        Walks the same round structure :meth:`run` bills — round targets
        from the Δ-schedule, partition sizes from ``m_round`` — but takes
        every round's output at its target size instead of executing the
        greedy, so the answer is closed-form.  Infeasible configurations
        (a partition's greedy state exceeding DRAM) come back with
        ``feasible=False`` rather than raising, so sweeps can rank every
        candidate.
        """
        if n_points < 1 or not 0 <= k <= n_points:
            raise ValueError(f"need 0 <= k <= n_points, got k={k}, n={n_points}")
        if m < 1 or rounds < 1:
            raise ValueError("m and rounds must be >= 1")
        schedule = LinearDeltaSchedule(gamma)
        partition_cap = int(np.ceil(n_points / m))
        survivors = int(n_points)
        per_round_hours: List[float] = []
        peak_bytes = 0
        feasible = True
        for round_idx in range(1, rounds + 1):
            n_round = min(schedule(n_points, rounds, round_idx, k), survivors)
            if adaptive:
                m_round = int(np.ceil(survivors / partition_cap))
            else:
                m_round = m
            m_round = max(1, min(m_round, survivors))
            partition_size = int(np.ceil(survivors / m_round))
            state = greedy_state_bytes(
                partition_size, neighbors_per_point=self.neighbors_per_point
            )
            peak_bytes = max(peak_bytes, state)
            if state > self.machine.dram_bytes:
                feasible = False
            per_target = int(np.ceil(n_round / m_round))
            compute = self.cost_model.greedy_partition_seconds(
                partition_size, per_target, avg_degree
            )
            shuffle = self.cost_model.shuffle_seconds(survivors, m_round)
            per_round_hours.append(
                (
                    self.cost_model.straggler_factor * compute
                    + shuffle
                    + self.cost_model.per_round_overhead_sec
                )
                / 3600.0
            )
            survivors = n_round
        return WhatIfOutcome(
            m=m,
            rounds=rounds,
            feasible=feasible,
            predicted_hours=float(sum(per_round_hours)),
            per_round_hours=per_round_hours,
            peak_partition_bytes=peak_bytes,
        )

    def best_configuration(
        self,
        n_points: int,
        k: int,
        *,
        m_candidates: "List[int]",
        rounds_candidates: "List[int]" = (1,),
        adaptive: bool = False,
        gamma: float = 0.75,
        avg_degree: float = 10.0,
    ) -> Optional[WhatIfOutcome]:
        """Fastest *feasible* configuration over the candidate grid.

        Returns ``None`` when no candidate fits the machine — the caller
        needs more machines, not a different schedule.
        """
        best: Optional[WhatIfOutcome] = None
        for rounds in rounds_candidates:
            for m in m_candidates:
                outcome = self.what_if(
                    n_points, k, m=m, rounds=rounds,
                    adaptive=adaptive, gamma=gamma, avg_degree=avg_degree,
                )
                if not outcome.feasible:
                    continue
                if best is None or outcome.predicted_hours < best.predicted_hours:
                    best = outcome
        return best
