"""Analytic runtime model calibrated to Table 4 (Appendix D).

The paper's complexity analysis (Sec. 4.4):

- centralized greedy on a partition of size ``n_p`` with ``k_p`` picks and
  degree ``kg``: ``O(n_p log n_p + k_p kg log n_p)``,
- distributed, over ``m`` machines and ``r`` rounds:
  ``O(r (|V|/m) log(|V|/m) + r (k/m) kg log(|V|/m))``.

Our model refines the leading term with the actual per-round sizes produced
by the Δ-schedule, and adds (a) shuffle time proportional to records moved
per repartition, (b) a fixed per-round scheduling overhead, and (c) a
straggler factor on per-round makespan — the three effects that dominate
wall-clock on a shared heterogeneous cluster.  Constants are calibrated so
the 13 B / 16-partition / α = 0.9 operating point lands in Table 4's range
(hours to ~2 days); the reproduction target is the *shape*: runtime grows
with rounds, bounding-first beats greedy-only at equal rounds, and 50 %
subsets cost more than 10 % ones.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.core.distributed import LinearDeltaSchedule


@dataclass(frozen=True)
class CostModel:
    """Throughput and overhead constants of the modeled cluster.

    Two families of constants live here.  The *cluster-scale* ones
    (``machine``, ``per_round_overhead_sec``, ...) parameterize the Table 4
    analytic model above.  The *engine-scale* trio below parameterizes the
    in-process dataflow engine's per-stage prediction
    (:meth:`predict_stage_seconds`) and is what
    :meth:`calibrate` refits from observed ``StageProfile`` histories —
    the cluster constants stay pinned to the paper's calibration.
    """

    machine: MachineSpec = field(default_factory=MachineSpec)
    bytes_per_record: int = 176  # one point: key/value + 10 neighbors
    per_round_overhead_sec: float = 3600.0  # scheduling + spin-up per round
    straggler_factor: float = 1.6  # heterogeneous shared cluster
    bounding_pass_sec_per_record: float = 6.0e-7  # one join pass per record
    # Relative cost of one pop-with-neighbor-updates vs one queue insert.
    # Pops touch hot cached entries; profiled implementations see them an
    # order of magnitude cheaper than the build, hence the small factor.
    pop_cost_factor: float = 0.05
    # -- engine-scale constants (refit by ``calibrate``) -------------------
    stage_overhead_sec: float = 2.0e-4  # dispatch + bookkeeping per stage
    records_per_sec: float = 1_500_000.0  # row-path per-record throughput
    vectorized_records_per_sec: float = 8_000_000.0  # batch-path throughput
    disk_bytes_per_sec: float = 400_000_000.0  # checkpoint store/load

    # -- building blocks ---------------------------------------------------

    def greedy_partition_seconds(self, n_p: int, k_p: int, kg: float) -> float:
        """Centralized greedy on one partition (Sec. 4.4 complexity)."""
        if n_p <= 1:
            return 0.0
        log_n = np.log2(max(n_p, 2))
        ops = n_p * log_n + self.pop_cost_factor * k_p * kg * log_n
        return float(ops / self.machine.greedy_points_per_sec)

    def shuffle_seconds(self, n_records: int, m: int) -> float:
        """Repartitioning ``n_records`` across ``m`` machines in parallel."""
        volume = n_records * self.bytes_per_record
        return float(volume / (self.machine.shuffle_bytes_per_sec * max(m, 1)))

    # -- engine-scale prediction -------------------------------------------

    def predict_stage_seconds(
        self,
        rows: int,
        *,
        vectorized: bool = False,
        shuffled_records: int = 0,
        payload_bytes: int = 0,
        shuffle_parallelism: int = 1,
    ) -> float:
        """Predicted wall-clock of one physical engine stage.

        ``overhead + rows / throughput`` plus the serialization cost of
        anything the stage ships (shuffled records at ``bytes_per_record``
        each, and the closure payload on payload-shipping backends).

        ``shuffle_parallelism`` divides the moved-bytes term: with the
        worker-to-worker shuffle the bucket volume crosses ``n`` worker
        links concurrently instead of funnelling through the driver's
        single link, so the driver-merge prediction over-charges by that
        factor.
        """
        throughput = (
            self.vectorized_records_per_sec
            if vectorized
            else self.records_per_sec
        )
        seconds = self.stage_overhead_sec + max(rows, 0) / throughput
        moved = shuffled_records * self.bytes_per_record + payload_bytes
        if moved > 0:
            seconds += moved / (
                self.disk_bytes_per_sec * max(int(shuffle_parallelism), 1)
            )
        return float(seconds)

    def checkpoint_store_load_seconds(self, n_bytes: int) -> float:
        """One store plus one later load of a checkpoint of ``n_bytes``."""
        return float(
            2.0 * self.stage_overhead_sec
            + 2.0 * max(n_bytes, 0) / self.disk_bytes_per_sec
        )

    # -- calibration from observed stage profiles --------------------------

    def calibrate(self, profiles: Iterable[object]) -> "CostModel":
        """Refit the engine-scale constants from observed stage profiles.

        Each profile needs ``wall_ms``, ``rows_in``, and ``vectorized``
        attributes (a :class:`repro.dataflow.metrics.StageProfile` or any
        duck-typed record).  The fit is an ordinary least-squares line
        ``wall_sec ≈ overhead + rows / throughput`` per path (row vs
        vectorized); degenerate samples (too few points, no row-count
        spread, non-positive slope) leave the corresponding constant
        unchanged.  Cluster-scale constants are never touched.
        """
        rows_pts: List[tuple] = []
        vec_pts: List[tuple] = []
        for p in profiles:
            rows_in = int(getattr(p, "rows_in", 0))
            wall_sec = float(getattr(p, "wall_ms", 0.0)) / 1000.0
            if wall_sec < 0:
                continue
            (vec_pts if getattr(p, "vectorized", False) else rows_pts).append(
                (rows_in, wall_sec)
            )

        def fit(points: Sequence[tuple]) -> Optional[tuple]:
            if len(points) < 2:
                return None
            xs = np.asarray([r for r, _ in points], dtype=np.float64)
            ys = np.asarray([w for _, w in points], dtype=np.float64)
            if float(xs.max() - xs.min()) <= 0:
                return None
            slope, intercept = np.polyfit(xs, ys, 1)
            if slope <= 0 or not math.isfinite(slope):
                return None
            overhead = float(intercept) if intercept > 0 else 0.0
            return 1.0 / float(slope), overhead

        updates: Dict[str, float] = {}
        row_fit = fit(rows_pts)
        if row_fit is not None:
            updates["records_per_sec"] = row_fit[0]
            if row_fit[1] > 0:
                updates["stage_overhead_sec"] = row_fit[1]
        vec_fit = fit(vec_pts)
        if vec_fit is not None:
            updates["vectorized_records_per_sec"] = vec_fit[0]
            if "stage_overhead_sec" not in updates and vec_fit[1] > 0:
                updates["stage_overhead_sec"] = vec_fit[1]
        return replace(self, **updates) if updates else self

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "machine": self.machine.to_dict(),
            "bytes_per_record": self.bytes_per_record,
            "per_round_overhead_sec": self.per_round_overhead_sec,
            "straggler_factor": self.straggler_factor,
            "bounding_pass_sec_per_record": self.bounding_pass_sec_per_record,
            "pop_cost_factor": self.pop_cost_factor,
            "stage_overhead_sec": self.stage_overhead_sec,
            "records_per_sec": self.records_per_sec,
            "vectorized_records_per_sec": self.vectorized_records_per_sec,
            "disk_bytes_per_sec": self.disk_bytes_per_sec,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostModel":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        machine = known.get("machine")
        if isinstance(machine, dict):
            known["machine"] = MachineSpec.from_dict(machine)
        return cls(**known)  # type: ignore[arg-type]

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CostModel":
        return cls.from_dict(json.loads(text))

    # -- end-to-end estimates ----------------------------------------------

    def distributed_greedy_hours(
        self,
        n: int,
        k: int,
        m: int,
        rounds: int,
        *,
        kg: float = 10.0,
        gamma: float = 0.75,
        adaptive: bool = False,
    ) -> float:
        """Wall-clock estimate for Algorithm 6."""
        schedule = LinearDeltaSchedule(gamma)
        cap = int(np.ceil(n / m))
        survivors = n
        total = 0.0
        for round_idx in range(1, rounds + 1):
            n_round = min(schedule(n, rounds, round_idx, k), survivors)
            m_round = (
                int(np.ceil(survivors / cap)) if adaptive else m
            )
            m_round = max(1, min(m_round, survivors))
            n_p = int(np.ceil(survivors / m_round))
            k_p = int(np.ceil(n_round / m_round))
            round_compute = self.greedy_partition_seconds(n_p, k_p, kg)
            round_shuffle = self.shuffle_seconds(survivors, m_round)
            total += (
                self.straggler_factor * round_compute
                + round_shuffle
                + self.per_round_overhead_sec
            )
            survivors = n_round
        return total / 3600.0

    def bounding_hours(
        self, n: int, *, kg: float = 10.0, join_rounds: int = 12, m: int = 16
    ) -> float:
        """Wall-clock estimate for the dataflow bounding stage.

        Each grow/shrink round is a constant number of joins over the fanned
        edge set (``~n * kg`` records) plus the point set, processed by ``m``
        workers in parallel.
        """
        records_per_round = n * (1 + kg)
        per_round = (
            records_per_round * self.bounding_pass_sec_per_record / max(m, 1)
        )
        total = join_rounds * (per_round + self.per_round_overhead_sec / 4)
        return total / 3600.0


@dataclass
class Table4Scenario:
    """One row of Table 4, regenerated from the cost model."""

    label: str
    hours: float
    paper_hours: float

    @property
    def ratio(self) -> float:
        """Model-to-paper wall-clock ratio, ``hours / paper_hours``.

        Only a positive, finite paper baseline yields a meaningful ratio;
        anything else (zero, negative, nan/inf) returns ``nan`` instead of
        a sign-flipped or infinite quotient.
        """
        if not (self.paper_hours > 0.0 and math.isfinite(self.paper_hours)):
            return float("nan")
        return self.hours / self.paper_hours


def table4_rows(
    *,
    n: int = 13_000_000_000,
    m: int = 16,
    kg: float = 10.0,
    model: CostModel | None = None,
) -> List[Table4Scenario]:
    """Regenerate Appendix D's Table 4 with the analytic model.

    Bounding rows use the paper's observation that approximate bounding with
    a 30 % neighborhood excludes ~60 % of the 13 B points (Sec. 6.3), which
    shrinks the greedy stage's input accordingly.
    """
    model = model or CostModel()
    k10 = n // 10
    k50 = n // 2
    paper = {
        "bounding(uniform)": 19.61,
        "bounding(weighted)": 21.31,
        "greedy r=8 after uniform bounding": 33.46,
        "greedy r=8 after weighted bounding": 27.2,
        "greedy r=8 (10%)": 40.72,
        "greedy r=2 (10%)": 20.45,
        "greedy r=1 (10%)": 9.86,
        "greedy r=8 (50%)": 48.22,
        "greedy r=2 (50%)": 16.32,
        "greedy r=1 (50%)": 12.7,
    }
    bounding_h = model.bounding_hours(n, kg=kg, join_rounds=13, m=m)
    # After approximate bounding: ~60 % excluded, ~0.7 % included (Sec. 6.3).
    n_after = int(n * 0.4)
    k_after = int(k10 - 0.007 * n)
    rows = [
        Table4Scenario("bounding(uniform)", bounding_h, paper["bounding(uniform)"]),
        Table4Scenario(
            "bounding(weighted)",
            model.bounding_hours(n, kg=kg, join_rounds=14, m=m),
            paper["bounding(weighted)"],
        ),
        Table4Scenario(
            "greedy r=8 after uniform bounding",
            bounding_h
            + model.distributed_greedy_hours(n_after, k_after, m, 8, kg=kg),
            paper["greedy r=8 after uniform bounding"],
        ),
        Table4Scenario(
            "greedy r=8 after weighted bounding",
            bounding_h
            + model.distributed_greedy_hours(n_after, k_after, m, 8, kg=kg),
            paper["greedy r=8 after weighted bounding"],
        ),
    ]
    for label, k, rounds in (
        ("greedy r=8 (10%)", k10, 8),
        ("greedy r=2 (10%)", k10, 2),
        ("greedy r=1 (10%)", k10, 1),
        ("greedy r=8 (50%)", k50, 8),
        ("greedy r=2 (50%)", k50, 2),
        ("greedy r=1 (50%)", k50, 1),
    ):
        rows.append(
            Table4Scenario(
                label,
                model.distributed_greedy_hours(n, k, m, rounds, kg=kg),
                paper[label],
            )
        )
    return rows
