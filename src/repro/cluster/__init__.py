"""Cluster substrate: machine memory model, cost model, round scheduler.

The paper runs on an internal heterogeneous cluster and reports one
uncontrolled runtime per configuration (Table 4), noting that accurate
timing was impossible.  This package reproduces the *system reasoning*:

- :mod:`repro.cluster.machine` — DRAM footprint accounting (reproduces the
  paper's 880 GB priority-queue example from Sec. 3),
- :mod:`repro.cluster.costmodel` — an analytic runtime model (per-round
  greedy work, shuffle volume, per-round overhead, straggler factor)
  calibrated to Table 4's operating point,
- :mod:`repro.cluster.simulator` — schedules per-partition greedy tasks onto
  machines, enforcing that every partition fits its machine's DRAM.
"""

from repro.cluster.costmodel import CostModel, Table4Scenario
from repro.cluster.machine import MachineSpec, greedy_state_bytes, partition_fits
from repro.cluster.simulator import ClusterSimulator, SimulatedRun

__all__ = [
    "MachineSpec",
    "greedy_state_bytes",
    "partition_fits",
    "CostModel",
    "Table4Scenario",
    "ClusterSimulator",
    "SimulatedRun",
]
