"""Machine DRAM accounting for the centralized algorithm's state.

Section 3's motivating arithmetic: "storing 5 billion 64-bit keys and values
in the priority queue, and keeping track of 10 nearest neighbors with 64-bit
IDs and distances requires 880 GB of memory".  :func:`greedy_state_bytes`
reproduces exactly that accounting and the simulator uses it to decide
whether a partition fits a machine.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1_000_000_000


@dataclass(frozen=True)
class MachineSpec:
    """One worker machine.

    Defaults match the paper's 13 B experiment: "16 partitions with 350 GB of
    memory per partition" (Sec. 6.3).
    """

    dram_bytes: int = 350 * GB
    greedy_points_per_sec: float = 1_300_000.0
    shuffle_bytes_per_sec: float = 1_000_000_000.0

    def __post_init__(self) -> None:
        if self.dram_bytes <= 0:
            raise ValueError(f"dram_bytes must be > 0, got {self.dram_bytes}")
        if self.greedy_points_per_sec <= 0 or self.shuffle_bytes_per_sec <= 0:
            raise ValueError("throughput constants must be > 0")

    def to_dict(self) -> dict:
        return {
            "dram_bytes": self.dram_bytes,
            "greedy_points_per_sec": self.greedy_points_per_sec,
            "shuffle_bytes_per_sec": self.shuffle_bytes_per_sec,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineSpec":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)


def greedy_state_bytes(
    n_points: int,
    *,
    neighbors_per_point: int = 10,
    key_bytes: int = 8,
    value_bytes: int = 8,
) -> int:
    """Bytes of DRAM the centralized priority-queue algorithm needs.

    ``n * (key + value)`` for the queue plus
    ``n * neighbors * (id + distance)`` for the adjacency, the paper's
    Sec. 3 accounting (5 B points, 10 neighbors → 880 GB).
    """
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    queue = n_points * (key_bytes + value_bytes)
    adjacency = n_points * neighbors_per_point * (key_bytes + value_bytes)
    return queue + adjacency


def partition_fits(
    partition_size: int, machine: MachineSpec, *, neighbors_per_point: int = 10
) -> bool:
    """Does a partition's greedy state fit in the machine's DRAM?"""
    return greedy_state_bytes(
        partition_size, neighbors_per_point=neighbors_per_point
    ) <= machine.dram_bytes
