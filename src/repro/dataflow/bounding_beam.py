"""Distributed bounding via dataflow joins — Section 5, faithfully.

The difficulty the paper highlights: when iterating over a point's neighbors
there is no O(1) "is the neighbor in the subset?" check, because the subset
is not in memory.  The implementation therefore works entirely through
joins, packaged as the :class:`~repro.dataflow.library.BoundingFilter`
composite (fan out the graph by neighbor id → three-way cogroup with the
partial solution and the unassigned set → cogroup with the utilities →
per-point ``(lower, Umax)`` bounds); thresholds ``U^k`` come from
:func:`~repro.dataflow.transforms.distributed_kth_largest` (bisection with
distributed counts, O(1) driver state per probe).  The grow/shrink
convergence driver mirrors Algorithm 5 exactly, and
``tests/test_dataflow_bounding.py`` asserts bit-equal decisions against
the in-memory reference (exact mode).

Engine configuration is one :class:`~repro.dataflow.options.EngineOptions`
(``options=``) or a shared :class:`~repro.dataflow.options.DataflowContext`
(``context=`` — how the end-to-end selector shares a worker pool between
bounding and greedy).  This beam streams its graph/utility generators by
default (``options.stream_source=None``); the old per-call engine keywords
are deprecated shims.

Sampling (approximate mode) is hash-based per edge per round rather than
generator-based: a distributed runner has no global RNG stream, and
deterministic per-edge hashing is how one gets reproducible sampling in
Beam.  Statistical behaviour matches the in-memory sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.bounding import BoundingResult
from repro.core.distributed import fingerprint, problem_fingerprint
from repro.core.problem import SubsetProblem
from repro.dataflow.library import BoundingFilter
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.options import (
    UNSET,
    DataflowContext,
    EngineOptions,
    engine_context,
    legacy_engine_options,
)
from repro.dataflow.pcollection import PCollection
from repro.dataflow.transforms import distributed_kth_largest, flatten
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True, init=False)
class BeamBoundingConfig:
    """Algorithm knobs for the dataflow bounding driver.

    Engine knobs (executor, shards, spill, …) no longer live here — they
    come from the :class:`~repro.dataflow.options.EngineOptions` /
    :class:`~repro.dataflow.options.DataflowContext` handed to
    :class:`BeamBoundingDriver`.  The old engine keywords are still
    accepted and folded into an ``EngineOptions`` by the driver (with a
    ``DeprecationWarning``), matching every other legacy surface.
    """

    mode: str = "exact"
    sampler: str = "uniform"
    p: float = 1.0
    max_rounds: int = 10_000

    def __init__(
        self,
        mode: str = "exact",
        sampler: str = "uniform",
        p: float = 1.0,
        max_rounds: int = 10_000,
        *,
        num_shards=UNSET,
        executor=UNSET,
        spill_to_disk=UNSET,
        optimize=UNSET,
        stream_source=UNSET,
        checkpoint_dir=UNSET,
    ) -> None:
        object.__setattr__(self, "mode", mode)
        object.__setattr__(self, "sampler", sampler)
        object.__setattr__(self, "p", p)
        object.__setattr__(self, "max_rounds", max_rounds)
        # Deprecated engine knobs: validate and warn here (at the call
        # site that wrote them), then ride along as a ready-made
        # EngineOptions (not a field: excluded from eq/repr) for the
        # driver to consume.
        object.__setattr__(self, "_legacy_options", legacy_engine_options(
            {
                "num_shards": num_shards, "executor": executor,
                "spill_to_disk": spill_to_disk, "optimize": optimize,
                "stream_source": stream_source,
                "checkpoint_dir": checkpoint_dir,
            },
            options=None, context=None, api="BeamBoundingConfig",
        ))


class BeamBoundingDriver:
    """Runs Algorithm 5 with all per-point state in PCollections.

    Driver-resident state is limited to scalars (``k_remaining``, round
    counters, convergence flags); point sets live sharded in the pipeline.
    The pipeline is built through the given context (or a private one from
    ``options``); with a checkpoint directory, plan digests are salted
    with the problem's content fingerprint so the streamed graph/utility
    sources checkpoint too — a killed drive rerun with the same directory
    resumes from its last completed stage with bit-identical decisions.
    """

    def __init__(
        self,
        problem: SubsetProblem,
        config: Optional[BeamBoundingConfig] = None,
        *,
        options: Optional[EngineOptions] = None,
        context: Optional[DataflowContext] = None,
        seed: SeedLike = None,
    ) -> None:
        if problem.alpha <= 0:
            raise ValueError("bounding requires alpha > 0")
        self.problem = problem
        self.config = config or BeamBoundingConfig()
        legacy = getattr(self.config, "_legacy_options", None)
        if legacy is not None:
            if options is not None or context is not None:
                raise TypeError(
                    "BeamBoundingDriver: the config carries deprecated "
                    "engine keywords; pass options=/context= OR legacy "
                    "BeamBoundingConfig engine fields, not both"
                )
            options = legacy
        private_context = context is None
        self._context_guard = engine_context(options, context)
        self.context = self._context_guard.__enter__()
        try:
            opts = self.context.options
            # Input-size hint for the adaptive planner's cost gates.
            pipeline_overrides = {"plan_records": int(problem.n)}
            if opts.checkpoint_dir is not None:
                # Salt the plan digests with the streamed sources' content
                # so a resumed drive can only reuse checkpoints of its own
                # data.
                pipeline_overrides["checkpoint_salt"] = fingerprint(
                    "bounding-sources", problem_fingerprint(problem)
                )
            self.pipeline = self.context.pipeline(**pipeline_overrides)
            if private_context:
                # Historical drivers tore everything down through
                # ``driver.pipeline.close()``; hand the private context's
                # executor ownership to the (single) pipeline so that
                # contract still holds.  ``close()`` below remains correct
                # — executor ``close()`` is idempotent on every backend.
                self.pipeline._owns_executor = self.context._owns_executor
                self.context._owns_executor = False
            self._seed_salt = int(as_generator(seed).integers(0, 2**31 - 1))
            self._round_counter = 0
            stream = opts.resolve_stream(True)
            g = problem.graph
            self.neighbors = self.pipeline.create_keyed(
                (
                    (v, list(zip(g.indices[g.indptr[v]:g.indptr[v + 1]].tolist(),
                                 g.weights[g.indptr[v]:g.indptr[v + 1]].tolist())))
                    for v in range(g.n)
                ),
                name="source/neighbors",
                stream=stream,
            )
            self.utilities = self.pipeline.create_keyed(
                ((v, float(problem.utilities[v])) for v in range(problem.n)),
                name="source/utilities",
                stream=stream,
            )
        except BaseException:
            # A privately-created context (and its executor / worker
            # cluster) must not leak when construction fails after entry.
            self._context_guard.__exit__(None, None, None)
            raise

    def close(self) -> None:
        """Tear down the pipeline (and a privately-owned context)."""
        try:
            self.pipeline.close()
        finally:
            self._context_guard.__exit__(None, None, None)

    # -- the Section 5 join plan -----------------------------------------

    def _compute_bounds(
        self, solution: PCollection, remaining: PCollection
    ) -> PCollection:
        """Keyed ``(node, (lower, umax))`` over the remaining set."""
        cfg = self.config
        self._round_counter += 1
        return remaining.apply(
            BoundingFilter(
                self.neighbors,
                self.utilities,
                solution,
                ratio=self.problem.beta_over_alpha,
                mode=cfg.mode,
                sampler=cfg.sampler,
                p=cfg.p,
                round_salt=self._round_counter,
                seed_salt=self._seed_salt,
            )
        )

    # -- grow / shrink -----------------------------------------------------

    @staticmethod
    def _minus(remaining: PCollection, removed: PCollection) -> PCollection:
        """Set difference via cogroup (no membership lookups)."""
        from repro.dataflow.transforms import cogroup

        return cogroup([remaining, removed], name="bound/minus").flat_map(
            lambda kv: [(kv[0], True)] if kv[1][0] and not kv[1][1] else [],
            name="bound/minus_emit",
        ).as_keyed(name="bound/minus_key")

    def run(self, k: int) -> Tuple[BoundingResult, PipelineMetrics]:
        """Execute Alg. 5; returns the result and the pipeline metrics."""
        if not 0 <= k <= self.problem.n:
            raise ValueError(f"need 0 <= k <= {self.problem.n}, got {k}")
        cfg = self.config
        solution = self.pipeline.create_keyed([], name="state/solution")
        remaining = self.pipeline.create_keyed(
            ((v, True) for v in range(self.problem.n)), name="state/remaining"
        )
        k_remaining = k
        grow_rounds = 0
        shrink_rounds = 0
        total = 0

        def shrink_once() -> int:
            nonlocal remaining
            rem_count = remaining.count()
            if k_remaining <= 0 or rem_count <= k_remaining:
                return 0
            bounds = self._compute_bounds(solution, remaining)
            lower_values = bounds.map(lambda kv: kv[1][0], name="shrink/lower")
            threshold = distributed_kth_largest(lower_values, k_remaining)
            survivors = bounds.filter(
                lambda kv, t=threshold: kv[1][1] >= t, name="shrink/keep"
            ).map_values(lambda _: True, name="shrink/mark")
            new_count = survivors.count()
            remaining = survivors
            return rem_count - new_count

        def grow_once() -> int:
            nonlocal remaining, solution, k_remaining
            rem_count = remaining.count()
            if k_remaining <= 0 or rem_count == 0:
                return 0
            if rem_count <= k_remaining:
                solution = flatten([solution, remaining], name="grow/take_all")
                remaining = self.pipeline.create_keyed([], name="grow/empty")
                k_remaining -= rem_count
                return rem_count
            bounds = self._compute_bounds(solution, remaining)
            umax_values = bounds.map(lambda kv: kv[1][1], name="grow/umax")
            threshold = distributed_kth_largest(umax_values, k_remaining)
            grown = bounds.filter(
                lambda kv, t=threshold: kv[1][0] > t, name="grow/include"
            ).map_values(lambda _: True, name="grow/mark")
            n_grown = grown.count()
            if n_grown:
                solution = flatten([solution, grown], name="grow/union")
                remaining = self._minus(remaining, grown)
                k_remaining -= n_grown
            return n_grown

        while total < cfg.max_rounds:
            changed_outer = 0
            while total < cfg.max_rounds:
                shrink_rounds += 1
                total += 1
                changed = shrink_once()
                changed_outer += changed
                if changed == 0:
                    break
            while total < cfg.max_rounds:
                grow_rounds += 1
                total += 1
                changed = grow_once()
                changed_outer += changed
                if changed == 0:
                    break
            if changed_outer == 0 or k_remaining <= 0:
                break

        solution_ids = np.sort(
            np.array([key for key, _ in solution.to_list()], dtype=np.int64)
        )
        overshoot = max(0, solution_ids.size - k)
        if overshoot:
            rng = as_generator(self._seed_salt)
            solution_ids = np.sort(rng.choice(solution_ids, size=k, replace=False))
            k_remaining = 0
        remaining_ids = np.sort(
            np.array([key for key, _ in remaining.to_list()], dtype=np.int64)
        )
        n_excluded = self.problem.n - (solution_ids.size + overshoot) - remaining_ids.size
        result = BoundingResult(
            solution=solution_ids,
            remaining=remaining_ids,
            n_excluded=int(n_excluded),
            k_remaining=int(max(k_remaining, 0)),
            grow_rounds=grow_rounds,
            shrink_rounds=shrink_rounds,
            complete=k_remaining <= 0,
            overshoot=overshoot,
        )
        return result, self.pipeline.metrics


def beam_bound(
    problem: SubsetProblem,
    k: int,
    *,
    mode: str = "exact",
    sampler: str = "uniform",
    p: float = 1.0,
    seed: SeedLike = None,
    options: Optional[EngineOptions] = None,
    context: Optional[DataflowContext] = None,
    num_shards=UNSET,
    executor=UNSET,
    spill_to_disk=UNSET,
    optimize=UNSET,
    stream_source=UNSET,
    checkpoint_dir=UNSET,
) -> Tuple[BoundingResult, PipelineMetrics]:
    """One-call wrapper over :class:`BeamBoundingDriver`.

    Engine knobs live on ``options`` (or a shared ``context``); decisions
    are identical on every backend, plan, and ingest mode for a fixed
    seed.  ``options.spill_to_disk=True`` keeps every materialized shard
    on disk — the literal larger-than-memory mode.  The old per-call
    engine keywords are deprecated shims over ``EngineOptions``.
    """
    options = legacy_engine_options(
        {
            "num_shards": num_shards, "executor": executor,
            "spill_to_disk": spill_to_disk, "optimize": optimize,
            "stream_source": stream_source, "checkpoint_dir": checkpoint_dir,
        },
        options=options, context=context, api="beam_bound",
    )
    driver = BeamBoundingDriver(
        problem,
        BeamBoundingConfig(mode=mode, sampler=sampler, p=p),
        options=options,
        context=context,
        seed=seed,
    )
    try:
        return driver.run(k)
    finally:
        driver.close()
