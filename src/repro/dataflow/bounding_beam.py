"""Distributed bounding via dataflow joins — Section 5, faithfully.

The difficulty the paper highlights: when iterating over a point's neighbors
there is no O(1) "is the neighbor in the subset?" check, because the subset
is not in memory.  The implementation therefore works entirely through
joins:

1. *Fan out* the neighbor graph: ``(a, [(b, s)])`` → triples keyed by the
   neighbor, ``(b → key a, value (b, s))`` — "the neighbor id becomes the
   triple key".
2. *Three-way cogroup* of the fanned graph, the partial solution, and the
   unassigned set, keyed by ``a``: if ``a`` is neither in the solution nor
   unassigned the edge dies (``a`` was shrunk away); otherwise re-emit the
   original edges as 4-tuples ``(b, a, s(a,b), a_in_solution)`` keyed by
   ``b``.
3. *Cogroup* the 4-tuples with the unassigned set and the utilities, keyed
   by ``b``: drop if ``b`` is assigned/discarded; otherwise (optionally
   sampling the unassigned neighbors — approximate bounding) produce
   ``(b, (lower, Umax))`` where ``lower`` is ``Umin`` or ``Uexp``.
4. Thresholds ``U^k`` come from :func:`distributed_kth_largest` (bisection
   with distributed counts, O(1) driver state per probe).

The grow/shrink/convergence driver then mirrors Algorithm 5 exactly, and
``tests/test_dataflow_bounding.py`` asserts bit-equal decisions against the
in-memory reference (exact mode).

Sampling here is *hash-based* (counter-based Bernoulli per edge per round)
rather than generator-based: a distributed runner has no global RNG stream,
and deterministic per-edge hashing is how one gets reproducible sampling in
Beam.  Statistical behaviour matches the in-memory sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.bounding import BoundingResult
from repro.core.distributed import fingerprint, problem_fingerprint
from repro.core.problem import SubsetProblem
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import PCollection, Pipeline
from repro.dataflow.transforms import cogroup, distributed_kth_largest, flatten
from repro.utils.rng import SeedLike, as_generator


_MASK64 = (1 << 64) - 1


def _edge_hash01(b: int, a: int, round_salt: int, seed_salt: int) -> float:
    """Deterministic float in [0, 1) per (edge, round) — distributed-safe.

    SplitMix64-style mixing over plain Python ints (wrap-around masked).
    """
    x = (b * 0x9E3779B97F4A7C15) & _MASK64
    x = (x + a * 0xBF58476D1CE4E5B9) & _MASK64
    x = (x + round_salt * 2654435761 + seed_salt) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


@dataclass
class BeamBoundingConfig:
    """Knobs for the dataflow bounding driver.

    ``optimize=None`` resolves to the engine default (the plan optimizer:
    cogroup write-side fusion, redundant-reshard elision, post-shuffle
    fusion); ``False`` runs the naive plan.  ``stream_source=True`` (the
    default) ingests the graph and utility sources through the chunked
    streaming path so the driver never holds them whole.
    ``checkpoint_dir`` persists every materialization boundary keyed by a
    plan digest (salted with the problem's content fingerprint, so the
    streamed graph/utility sources checkpoint too): a killed bounding
    drive rerun with the same directory resumes from its last completed
    stage with bit-identical decisions.
    """

    mode: str = "exact"
    sampler: str = "uniform"
    p: float = 1.0
    num_shards: int = 8
    max_rounds: int = 10_000
    spill_to_disk: bool = False
    executor: "str | object" = "sequential"  # name or Executor instance
    optimize: "bool | None" = None
    stream_source: bool = True
    checkpoint_dir: "str | None" = None


class BeamBoundingDriver:
    """Runs Algorithm 5 with all per-point state in PCollections.

    Driver-resident state is limited to scalars (``k_remaining``, round
    counters, convergence flags); point sets live sharded in the pipeline.
    """

    def __init__(
        self,
        problem: SubsetProblem,
        config: Optional[BeamBoundingConfig] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        if problem.alpha <= 0:
            raise ValueError("bounding requires alpha > 0")
        self.problem = problem
        self.config = config or BeamBoundingConfig()
        checkpoint_salt = None
        if self.config.checkpoint_dir is not None:
            # Salt the plan digests with the streamed sources' content so
            # a resumed drive can only reuse checkpoints of its own data.
            checkpoint_salt = fingerprint(
                "bounding-sources", problem_fingerprint(problem)
            )
        self.pipeline = Pipeline(
            self.config.num_shards,
            spill_to_disk=self.config.spill_to_disk,
            executor=self.config.executor,
            optimize=self.config.optimize,
            checkpoint_dir=self.config.checkpoint_dir,
            checkpoint_salt=checkpoint_salt,
        )
        self._seed_salt = int(as_generator(seed).integers(0, 2**31 - 1))
        self._round_counter = 0
        stream = bool(self.config.stream_source)
        g = problem.graph
        self.neighbors = self.pipeline.create_keyed(
            (
                (v, list(zip(g.indices[g.indptr[v]:g.indptr[v + 1]].tolist(),
                             g.weights[g.indptr[v]:g.indptr[v + 1]].tolist())))
                for v in range(g.n)
            ),
            name="source/neighbors",
            stream=stream,
        )
        self.utilities = self.pipeline.create_keyed(
            ((v, float(problem.utilities[v])) for v in range(problem.n)),
            name="source/utilities",
            stream=stream,
        )

    # -- the Section 5 join plan -----------------------------------------

    def _compute_bounds(
        self, solution: PCollection, remaining: PCollection
    ) -> PCollection:
        """Keyed ``(node, (lower, umax))`` over the remaining set."""
        cfg = self.config
        ratio = self.problem.beta_over_alpha
        self._round_counter += 1
        round_salt = self._round_counter

        # (1) fan out: key by the *neighbor* id a; value (b, s) keeps the
        # original source so edges can be inverted later.
        fanned = self.neighbors.flat_map(
            lambda kv: [(b, (kv[0], s)) for b, s in kv[1]],
            name="bound/fan_out",
        ).as_keyed(name="bound/fan_out_key")

        # (2) three-way join keyed by a: filter dead edges, tag solution
        # membership, invert back to key b.
        def invert(kv) -> Iterable[Tuple[int, Tuple[int, float, bool]]]:
            a, (edges, in_solution, in_remaining) = kv
            if not edges:
                return []
            if in_solution:
                flag = True
            elif in_remaining:
                flag = False
            else:
                return []  # a was discarded by a shrink step
            return [(b, (a, s, flag)) for b, s in edges]

        edges4 = cogroup(
            [fanned, solution, remaining], name="bound/threeway_join"
        ).flat_map(invert, name="bound/invert").as_keyed(name="bound/invert_key")

        # (3) join with remaining + utilities keyed by b; sample and reduce.
        sampler = cfg.sampler
        p = cfg.p
        approximate = cfg.mode == "approximate" and p < 1.0
        seed_salt = self._seed_salt

        def reduce_bounds(kv):
            b, (partners, in_remaining, utility) = kv
            if not in_remaining or not utility:
                return []
            u = utility[0]
            mass_solution = 0.0
            unassigned: List[Tuple[int, float]] = []
            for a, s, a_in_solution in partners:
                if a_in_solution:
                    mass_solution += s
                else:
                    unassigned.append((a, s))
            if approximate and unassigned:
                if sampler == "weighted":
                    mean_s = sum(s for _, s in unassigned) / len(unassigned)
                else:
                    mean_s = 0.0
                mass_sampled = 0.0
                for a, s in unassigned:
                    if sampler == "weighted" and mean_s > 0:
                        keep_p = min(1.0, p * s / mean_s)
                    else:
                        keep_p = p
                    if _edge_hash01(b, a, round_salt, seed_salt) < keep_p:
                        mass_sampled += s
            else:
                mass_sampled = sum(s for _, s in unassigned)
            umax = u - ratio * mass_solution
            lower = u - ratio * (mass_solution + mass_sampled)
            return [(b, (lower, umax))]

        return cogroup(
            [edges4, remaining, self.utilities], name="bound/bounds_join"
        ).flat_map(reduce_bounds, name="bound/reduce").as_keyed(
            name="bound/reduce_key"
        )

    # -- grow / shrink -----------------------------------------------------

    @staticmethod
    def _minus(remaining: PCollection, removed: PCollection) -> PCollection:
        """Set difference via cogroup (no membership lookups)."""
        return cogroup([remaining, removed], name="bound/minus").flat_map(
            lambda kv: [(kv[0], True)] if kv[1][0] and not kv[1][1] else [],
            name="bound/minus_emit",
        ).as_keyed(name="bound/minus_key")

    def run(self, k: int) -> Tuple[BoundingResult, PipelineMetrics]:
        """Execute Alg. 5; returns the result and the pipeline metrics."""
        if not 0 <= k <= self.problem.n:
            raise ValueError(f"need 0 <= k <= {self.problem.n}, got {k}")
        cfg = self.config
        solution = self.pipeline.create_keyed([], name="state/solution")
        remaining = self.pipeline.create_keyed(
            ((v, True) for v in range(self.problem.n)), name="state/remaining"
        )
        k_remaining = k
        grow_rounds = 0
        shrink_rounds = 0
        total = 0

        def shrink_once() -> int:
            nonlocal remaining
            rem_count = remaining.count()
            if k_remaining <= 0 or rem_count <= k_remaining:
                return 0
            bounds = self._compute_bounds(solution, remaining)
            lower_values = bounds.map(lambda kv: kv[1][0], name="shrink/lower")
            threshold = distributed_kth_largest(lower_values, k_remaining)
            survivors = bounds.filter(
                lambda kv, t=threshold: kv[1][1] >= t, name="shrink/keep"
            ).map_values(lambda _: True, name="shrink/mark")
            new_count = survivors.count()
            remaining = survivors
            return rem_count - new_count

        def grow_once() -> int:
            nonlocal remaining, solution, k_remaining
            rem_count = remaining.count()
            if k_remaining <= 0 or rem_count == 0:
                return 0
            if rem_count <= k_remaining:
                solution = flatten([solution, remaining], name="grow/take_all")
                remaining = self.pipeline.create_keyed([], name="grow/empty")
                k_remaining -= rem_count
                return rem_count
            bounds = self._compute_bounds(solution, remaining)
            umax_values = bounds.map(lambda kv: kv[1][1], name="grow/umax")
            threshold = distributed_kth_largest(umax_values, k_remaining)
            grown = bounds.filter(
                lambda kv, t=threshold: kv[1][0] > t, name="grow/include"
            ).map_values(lambda _: True, name="grow/mark")
            n_grown = grown.count()
            if n_grown:
                solution = flatten([solution, grown], name="grow/union")
                remaining = self._minus(remaining, grown)
                k_remaining -= n_grown
            return n_grown

        while total < cfg.max_rounds:
            changed_outer = 0
            while total < cfg.max_rounds:
                shrink_rounds += 1
                total += 1
                changed = shrink_once()
                changed_outer += changed
                if changed == 0:
                    break
            while total < cfg.max_rounds:
                grow_rounds += 1
                total += 1
                changed = grow_once()
                changed_outer += changed
                if changed == 0:
                    break
            if changed_outer == 0 or k_remaining <= 0:
                break

        solution_ids = np.sort(
            np.array([key for key, _ in solution.to_list()], dtype=np.int64)
        )
        overshoot = max(0, solution_ids.size - k)
        if overshoot:
            rng = as_generator(self._seed_salt)
            solution_ids = np.sort(rng.choice(solution_ids, size=k, replace=False))
            k_remaining = 0
        remaining_ids = np.sort(
            np.array([key for key, _ in remaining.to_list()], dtype=np.int64)
        )
        n_excluded = self.problem.n - (solution_ids.size + overshoot) - remaining_ids.size
        result = BoundingResult(
            solution=solution_ids,
            remaining=remaining_ids,
            n_excluded=int(n_excluded),
            k_remaining=int(max(k_remaining, 0)),
            grow_rounds=grow_rounds,
            shrink_rounds=shrink_rounds,
            complete=k_remaining <= 0,
            overshoot=overshoot,
        )
        return result, self.pipeline.metrics


def beam_bound(
    problem: SubsetProblem,
    k: int,
    *,
    mode: str = "exact",
    sampler: str = "uniform",
    p: float = 1.0,
    num_shards: int = 8,
    spill_to_disk: bool = False,
    executor="sequential",
    optimize: "bool | None" = None,
    stream_source: bool = True,
    checkpoint_dir: "str | None" = None,
    seed: SeedLike = None,
) -> Tuple[BoundingResult, PipelineMetrics]:
    """One-call wrapper over :class:`BeamBoundingDriver`.

    ``spill_to_disk=True`` keeps every materialized shard on disk — the
    literal larger-than-memory mode (one shard resident at a time).
    ``executor`` selects the engine backend (name or Executor instance);
    decisions are identical on every backend for a fixed seed.
    ``optimize``/``stream_source`` are the plan-optimizer and streaming-
    ingest escape hatches (see :class:`BeamBoundingConfig`); decisions are
    identical either way.  ``checkpoint_dir`` makes the drive resumable
    after a crash (see :class:`BeamBoundingConfig`).
    """
    driver = BeamBoundingDriver(
        problem,
        BeamBoundingConfig(
            mode=mode, sampler=sampler, p=p, num_shards=num_shards,
            spill_to_disk=spill_to_disk, executor=executor,
            optimize=optimize, stream_source=stream_source,
            checkpoint_dir=checkpoint_dir,
        ),
        seed=seed,
    )
    try:
        return driver.run(k)
    finally:
        driver.pipeline.close()
