"""The engine's unified public configuration: ``EngineOptions`` +
``DataflowContext``.

Four PRs grew the dataflow engine knob by knob — ``executor``,
``num_shards``, ``spill_to_disk``, ``optimize``, ``stream_source``,
``workers``, ``checkpoint_dir``, ``checkpoint_salt``,
``broadcast_min_bytes`` — each threaded by hand through every beam entry
point, ``SelectorConfig``, and the CLI, with its own defaulting and
validation at every stop.  This module replaces that sprawl with two
abstractions:

:class:`EngineOptions`
    One immutable, validated options object carrying every engine knob.
    Constructible from plain kwargs, a dict (:meth:`EngineOptions.
    from_dict`), a JSON blob (:meth:`~EngineOptions.from_json`),
    environment variables (:meth:`~EngineOptions.from_env`, prefix
    ``REPRO_ENGINE_``), or an argparse namespace populated by the shared
    :func:`add_engine_arguments` helper (:meth:`~EngineOptions.
    from_namespace`).  All validation — registry-backed executor names,
    ``host:port`` worker addresses with port-range checks, checkpoint
    settings — happens once, at construction.  :meth:`~EngineOptions.
    derive` produces per-stage variants without re-stating the rest.

:class:`DataflowContext`
    A context manager owning the resolved executor (and, for the remote
    backend, the worker cluster) plus the checkpoint directory for a whole
    multi-pipeline run.  Beams build their pipelines through
    :meth:`DataflowContext.pipeline`, so the bounding and greedy stages of
    a selection share one persistent worker pool without any caller
    hand-managing executor creation, sharing, or close.  The context also
    aggregates every pipeline's touched checkpoint digests, which is what
    makes :meth:`DataflowContext.gc_checkpoints` safe: it deletes exactly
    the entries no stage of the current run produced or reused.

Configuration precedence for :meth:`EngineOptions.from_namespace` (the
CLI path) is ``defaults < environment < --engine-options JSON file <
explicit flags``.

The old per-function keyword knobs on the beams and ``SelectorConfig``
still work through :func:`legacy_engine_options`, which folds them into an
``EngineOptions`` and emits a :class:`DeprecationWarning` — results are
bit-identical to the new API, but new code (and everything in this repo)
should construct options explicitly.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.dataflow.executor import (
    DEFAULT_BROADCAST_MIN_BYTES,
    Executor,
    JobScopedExecutor,
    executor_names,
    resolve_executor,
)

__all__ = [
    "EngineOptions",
    "DataflowContext",
    "add_engine_arguments",
    "legacy_engine_options",
    "parse_worker_address",
    "UNSET",
    "DEFAULT_ADAPTIVE",
]

#: Engine-wide default for ``EngineOptions.adaptive=None`` — the test
#: harness's ``--adaptive`` matrix flag flips this, mirroring
#: ``DEFAULT_OPTIMIZE``/``DEFAULT_COLUMNAR`` in ``pcollection``.
DEFAULT_ADAPTIVE = False


class _Unset:
    """Sentinel distinguishing "not passed" from every legal value
    (``None`` is a legal value for several knobs)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<UNSET>"


#: The "caller did not pass this keyword" sentinel used by the legacy
#: compatibility shims.
UNSET = _Unset()


def parse_worker_address(spec: Any) -> Tuple[str, int]:
    """Validate one remote-worker address; returns ``(host, port)``.

    Accepts ``"host:port"`` strings and ``(host, port)`` pairs.  The port
    must parse as an integer in ``[1, 65535]`` and the host must be
    non-empty — checked here, at configuration time, instead of deep
    inside ``RemoteExecutor`` at connect time.
    """
    if isinstance(spec, str):
        host, sep, port_text = spec.rpartition(":")
        if not sep or not host or not port_text.isdigit():
            raise ValueError(
                f"worker address must look like 'host:port', got {spec!r}"
            )
        host, port = host, int(port_text)
    else:
        try:
            host, port = spec
        except (TypeError, ValueError):
            raise ValueError(
                "worker address must be a 'host:port' string or a "
                f"(host, port) pair, got {spec!r}"
            ) from None
        host = str(host)
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ValueError(
                f"worker port must be an integer, got {port!r}"
            ) from None
        if not host:
            raise ValueError(f"worker host must be non-empty, got {spec!r}")
    if not 1 <= port <= 65535:
        raise ValueError(
            f"worker port must be in [1, 65535], got {port} in {spec!r}"
        )
    return host, port


def _as_opt_bool(value: Any, knob: str) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise ValueError(f"{knob} must be True, False, or None, got {value!r}")


class EngineOptions:
    """Every dataflow-engine knob, validated once, frozen forever.

    Parameters
    ----------
    executor:
        Backend name from the executor registry (``"sequential"``,
        ``"thread"``, ``"multiprocess"``, ``"remote"``, or anything
        registered via :func:`~repro.dataflow.executor.register_executor`)
        or an already-built :class:`~repro.dataflow.executor.Executor`
        instance.  Instances are shared, never closed by the context that
        receives them.
    num_shards:
        Logical worker count per pipeline (>= 1).
    spill_to_disk:
        Keep materialized shards on disk (the larger-than-memory mode).
    optimize:
        Run the plan optimizer.  ``None`` defers to the engine-wide
        default (the test harness's ``--no-optimize`` flips it).
    columnar:
        Run the columnar shard runtime (whole-shard NumPy execution of
        operators that declare a batch implementation, with automatic
        per-record fallback).  ``None`` defers to the engine-wide
        default — "auto", i.e. on where vectorized impls exist (the
        test harness's ``--no-columnar`` flips it).
    stream_source:
        Force chunked streaming ingest everywhere (``True``), force eager
        ingest (``False``), or keep each beam's own default (``None``).
    workers:
        Remote-worker addresses (``"host:port"`` strings or ``(host,
        port)`` pairs, normalized to strings).  Requires
        ``executor="remote"``; validated here, not at connect time.
    checkpoint_dir:
        Persist every materialization boundary here, keyed by plan
        digests; a killed run resumes from its last completed stage.
    checkpoint_salt:
        Content fingerprint standing in for streaming sources in the plan
        digest.  Requires ``checkpoint_dir``.  Beams usually derive their
        own per-stage salt via :meth:`derive`.
    broadcast_min_bytes:
        Captured-object size threshold for one-time closure broadcast on
        the payload-shipping backends (multiprocess, remote); ignored by
        the in-process backends.
    stream_chunk_size:
        Records per chunk for streaming sources (bounds driver memory
        during ingest).
    fuse:
        Collapse adjacent element-wise stages into one pass per shard
        (leave on; ``False`` exists to reproduce the historical eager
        engine's stage-by-stage metrics).
    adaptive:
        Let the cost-model-driven :class:`~repro.dataflow.planner.
        AdaptivePlanner` choose the performance knobs the caller left
        unset (``num_shards``, executor backend, ``broadcast_min_bytes``,
        checkpoint placement, optimizer lift/elide decisions).  Every
        knob passed explicitly overrides the planner; results are
        bit-identical either way.  ``None`` defers to the engine-wide
        default (the test harness's ``--adaptive`` flips it).
    shuffle:
        Shuffle data plane: ``"driver"`` merges buckets on the driver
        (the historical star topology), ``"worker"`` exchanges buckets
        worker-to-worker on the remote backend (the driver plans the
        bucket→worker assignment; bucket bytes move peer-to-peer, with
        the driver round-trip kept as the fault fallback).  Backends
        without a peer exchange — every in-process executor — always use
        the driver merge, whatever this says.  ``None`` defers to the
        engine-wide default (the test harness's ``--worker-shuffle``
        flips it).  Results are bit-identical in both modes.

    Knobs the caller actually passed are tracked (:meth:`is_explicit`) so
    the adaptive planner knows which decisions are pinned — passing a
    knob's default value explicitly still pins it.
    """

    __slots__ = (
        "executor", "num_shards", "spill_to_disk", "optimize", "columnar",
        "stream_source", "workers", "checkpoint_dir", "checkpoint_salt",
        "broadcast_min_bytes", "stream_chunk_size", "fuse", "adaptive",
        "shuffle", "_explicit", "_frozen",
    )

    #: Knob names in declaration order — the single list every
    #: constructor, serializer, and CLI helper iterates.
    _FIELDS = (
        "executor", "num_shards", "spill_to_disk", "optimize", "columnar",
        "stream_source", "workers", "checkpoint_dir", "checkpoint_salt",
        "broadcast_min_bytes", "stream_chunk_size", "fuse", "adaptive",
        "shuffle",
    )

    #: Default value per knob, applied when the keyword is not passed
    #: (keywords default to :data:`UNSET` so explicitness is observable).
    _DEFAULTS: Dict[str, Any] = {
        "executor": "sequential",
        "num_shards": 8,
        "spill_to_disk": False,
        "optimize": None,
        "columnar": None,
        "stream_source": None,
        "workers": None,
        "checkpoint_dir": None,
        "checkpoint_salt": None,
        "broadcast_min_bytes": DEFAULT_BROADCAST_MIN_BYTES,
        "stream_chunk_size": 4096,
        "fuse": True,
        "adaptive": None,
        "shuffle": None,
    }

    def __init__(
        self,
        executor: Any = UNSET,
        *,
        num_shards: Any = UNSET,
        spill_to_disk: Any = UNSET,
        optimize: Any = UNSET,
        columnar: Any = UNSET,
        stream_source: Any = UNSET,
        workers: Any = UNSET,
        checkpoint_dir: Any = UNSET,
        checkpoint_salt: Any = UNSET,
        broadcast_min_bytes: Any = UNSET,
        stream_chunk_size: Any = UNSET,
        fuse: Any = UNSET,
        adaptive: Any = UNSET,
        shuffle: Any = UNSET,
    ) -> None:
        passed = {
            "executor": executor,
            "num_shards": num_shards,
            "spill_to_disk": spill_to_disk,
            "optimize": optimize,
            "columnar": columnar,
            "stream_source": stream_source,
            "workers": workers,
            "checkpoint_dir": checkpoint_dir,
            "checkpoint_salt": checkpoint_salt,
            "broadcast_min_bytes": broadcast_min_bytes,
            "stream_chunk_size": stream_chunk_size,
            "fuse": fuse,
            "adaptive": adaptive,
            "shuffle": shuffle,
        }
        explicit = frozenset(k for k, v in passed.items() if v is not UNSET)
        resolved = {
            k: (self._DEFAULTS[k] if v is UNSET else v)
            for k, v in passed.items()
        }
        executor = resolved["executor"]
        num_shards = resolved["num_shards"]
        spill_to_disk = resolved["spill_to_disk"]
        optimize = resolved["optimize"]
        columnar = resolved["columnar"]
        stream_source = resolved["stream_source"]
        workers = resolved["workers"]
        checkpoint_dir = resolved["checkpoint_dir"]
        checkpoint_salt = resolved["checkpoint_salt"]
        broadcast_min_bytes = resolved["broadcast_min_bytes"]
        stream_chunk_size = resolved["stream_chunk_size"]
        fuse = resolved["fuse"]
        adaptive = resolved["adaptive"]
        shuffle = resolved["shuffle"]
        if shuffle is not None:
            shuffle = str(shuffle)
            if shuffle not in ("driver", "worker"):
                raise ValueError(
                    "shuffle must be 'driver', 'worker', or None, got "
                    f"{shuffle!r}"
                )
        if isinstance(executor, Executor):
            resolved_executor: "str | Executor" = executor
        else:
            executor = str(executor)
            if executor not in executor_names():
                raise ValueError(
                    f"executor must be one of {executor_names()} or an "
                    f"Executor instance, got {executor!r}"
                )
            resolved_executor = executor
        num_shards = int(num_shards)
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        stream_chunk_size = int(stream_chunk_size)
        if stream_chunk_size < 1:
            raise ValueError(
                f"stream_chunk_size must be >= 1, got {stream_chunk_size}"
            )
        broadcast_min_bytes = int(broadcast_min_bytes)
        if broadcast_min_bytes < 0:
            raise ValueError(
                f"broadcast_min_bytes must be >= 0, got {broadcast_min_bytes}"
            )
        normalized_workers: Optional[Tuple[str, ...]] = None
        if workers is not None:
            if isinstance(workers, str):
                workers = [w for w in workers.split(",") if w]
            normalized_workers = tuple(
                "{}:{}".format(*parse_worker_address(w)) for w in workers
            )
            if not normalized_workers:
                normalized_workers = None
        if isinstance(resolved_executor, Executor):
            # An already-built instance carries its own workers and
            # broadcast threshold; accepting these knobs alongside it
            # would silently drop them (mirrors resolve_executor's
            # opts-with-an-instance error).
            if normalized_workers is not None:
                raise ValueError(
                    "workers requires an executor *name* (e.g. 'remote'); "
                    f"the passed {type(resolved_executor).__name__} "
                    "instance was already built with its own workers"
                )
            if broadcast_min_bytes != DEFAULT_BROADCAST_MIN_BYTES:
                raise ValueError(
                    "broadcast_min_bytes requires an executor *name*; "
                    f"the passed {type(resolved_executor).__name__} "
                    "instance was already built with its own threshold"
                )
        elif normalized_workers is not None and resolved_executor != "remote":
            raise ValueError(
                f"workers requires executor='remote', got "
                f"executor={resolved_executor!r}"
            )
        if checkpoint_dir is not None:
            checkpoint_dir = str(checkpoint_dir)
        if checkpoint_salt is not None:
            checkpoint_salt = str(checkpoint_salt)
            if checkpoint_dir is None:
                raise ValueError(
                    "checkpoint_salt requires checkpoint_dir (a salt keys "
                    "streaming sources inside a checkpoint directory)"
                )
        object.__setattr__(self, "executor", resolved_executor)
        object.__setattr__(self, "num_shards", num_shards)
        object.__setattr__(self, "spill_to_disk", bool(spill_to_disk))
        object.__setattr__(
            self, "optimize", _as_opt_bool(optimize, "optimize")
        )
        object.__setattr__(
            self, "columnar", _as_opt_bool(columnar, "columnar")
        )
        object.__setattr__(
            self, "stream_source", _as_opt_bool(stream_source, "stream_source")
        )
        object.__setattr__(self, "workers", normalized_workers)
        object.__setattr__(self, "checkpoint_dir", checkpoint_dir)
        object.__setattr__(self, "checkpoint_salt", checkpoint_salt)
        object.__setattr__(self, "broadcast_min_bytes", broadcast_min_bytes)
        object.__setattr__(self, "stream_chunk_size", stream_chunk_size)
        object.__setattr__(self, "fuse", bool(fuse))
        object.__setattr__(
            self, "adaptive", _as_opt_bool(adaptive, "adaptive")
        )
        object.__setattr__(self, "shuffle", shuffle)
        object.__setattr__(self, "_explicit", explicit)
        object.__setattr__(self, "_frozen", True)

    # -- immutability ------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                f"EngineOptions is immutable; use derive({name}=...) to "
                "build a modified copy"
            )
        object.__setattr__(self, name, value)

    def __delattr__(self, name: str) -> None:
        raise AttributeError("EngineOptions is immutable")

    # Immutable: copies are the object itself (lets dataclasses.asdict and
    # deepcopy traverse containers holding options without mutation traps).
    def __copy__(self) -> "EngineOptions":
        return self

    def __deepcopy__(self, memo: dict) -> "EngineOptions":
        return self

    def __reduce__(self):
        return (_rebuild_options, (self._state(), sorted(self._explicit)))

    def _state(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    def is_explicit(self, name: str) -> bool:
        """Was ``name`` passed by the caller (vs defaulted)?

        The adaptive planner only decides knobs that are *not* explicit —
        a knob set to its default value on purpose is still pinned.
        Explicitness is provenance, not value: it does not participate in
        equality or hashing.
        """
        if name not in self._FIELDS:
            raise ValueError(
                f"unknown engine option {name!r}; expected one of "
                f"{list(self._FIELDS)}"
            )
        return name in self._explicit

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, EngineOptions):
            return NotImplemented
        return self._state() == other._state()

    def __hash__(self) -> int:
        state = self._state()
        executor = state["executor"]
        if isinstance(executor, Executor):
            state["executor"] = id(executor)
        return hash(tuple(sorted(state.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        defaults = _DEFAULT_STATE
        shown = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in self._FIELDS
            if getattr(self, name) != defaults[name]
        )
        return f"EngineOptions({shown})"

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "EngineOptions":
        """Build options from a plain mapping; unknown keys are an error."""
        cls._check_known(mapping, "mapping")
        return cls(**dict(mapping))

    @classmethod
    def from_json(cls, text: str) -> "EngineOptions":
        """Build options from a JSON object (the ``--engine-options`` blob)."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"engine options JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    #: Environment knobs: ``REPRO_ENGINE_<NAME>``.  Booleans accept
    #: 1/0, true/false, yes/no, on/off (case-insensitive); the optional
    #: booleans additionally accept ``none`` for "engine default";
    #: workers is a comma-separated ``host:port`` list; a set-but-empty
    #: variable counts as unset.
    ENV_PREFIX = "REPRO_ENGINE_"

    @classmethod
    def _check_known(cls, mapping: Mapping[str, Any], what: str) -> None:
        unknown = sorted(set(mapping) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown engine option(s) {unknown} in {what}; expected a "
                f"subset of {list(cls._FIELDS)}"
            )

    @classmethod
    def _env_overrides(
        cls, env: Optional[Mapping[str, str]] = None
    ) -> Dict[str, Any]:
        """Parse ``REPRO_ENGINE_*`` variables into an overrides dict.

        Set-but-empty variables are skipped (the common way scripts
        "unset" a knob); unknown ``REPRO_ENGINE_*`` variables are an
        error — a typoed knob should fail loudly, not silently configure
        nothing.
        """
        if env is None:
            env = os.environ
        overrides: Dict[str, Any] = {}
        for key, raw in env.items():
            if not key.startswith(cls.ENV_PREFIX):
                continue
            name = key[len(cls.ENV_PREFIX):].lower()
            if name not in cls._FIELDS:
                raise ValueError(
                    f"unknown engine environment variable {key!r}; expected "
                    f"{cls.ENV_PREFIX}{{{', '.join(f.upper() for f in cls._FIELDS)}}}"
                )
            if not raw.strip():
                continue
            overrides[name] = _parse_env_value(name, raw, key)
        return overrides

    @classmethod
    def from_env(
        cls,
        env: Optional[Mapping[str, str]] = None,
        *,
        base: Optional["EngineOptions"] = None,
    ) -> "EngineOptions":
        """Build options from ``REPRO_ENGINE_*`` environment variables.

        Unset (or set-but-empty) variables keep ``base``'s value (or the
        default).
        """
        base = base if base is not None else cls()
        return base.derive(**cls._env_overrides(env))

    @classmethod
    def from_namespace(
        cls,
        args: Any,
        *,
        base: Optional["EngineOptions"] = None,
    ) -> "EngineOptions":
        """Build options from an argparse namespace populated by
        :func:`add_engine_arguments`.

        Precedence: ``defaults < environment < --engine-options JSON file
        < explicit flags``.  Flags the user did not pass are ``None`` in
        the namespace and leave the lower layers untouched.  All layers
        are merged *before* the single validating construction, so
        cross-field constraints (e.g. ``workers`` from the environment
        with ``--executor remote`` on the command line) hold for the
        combination, not per layer.
        """
        base = base if base is not None else cls()
        state = base._state()
        explicit = set(base._explicit)
        env_overrides = cls._env_overrides()
        state.update(env_overrides)
        explicit.update(env_overrides)
        blob_path = getattr(args, "engine_options", None)
        if blob_path:
            with open(blob_path) as fh:
                blob = json.load(fh)
            if not isinstance(blob, dict):
                raise ValueError(
                    f"{blob_path}: engine options JSON must be an object"
                )
            cls._check_known(blob, blob_path)
            state.update(blob)
            explicit.update(blob)
        flag_overrides = {
            name: getattr(args, _FLAG_DESTS.get(name, name))
            for name in cls._FIELDS
            if getattr(args, _FLAG_DESTS.get(name, name), None) is not None
        }
        state.update(flag_overrides)
        explicit.update(flag_overrides)
        executor = state.pop("executor")
        built = cls(executor, **state)
        object.__setattr__(built, "_explicit", frozenset(explicit))
        return built

    # -- derivation & serialization ----------------------------------------

    def derive(self, **overrides: Any) -> "EngineOptions":
        """A new ``EngineOptions`` with ``overrides`` applied and the full
        validation re-run — the per-stage tweak primitive.

        Explicitness carries over: the copy's explicit set is this
        object's plus the overridden knobs.
        """
        self._check_known(overrides, "derive()")
        state = self._state()
        state.update(overrides)
        executor = state.pop("executor")
        derived = type(self)(executor, **state)
        object.__setattr__(
            derived, "_explicit", self._explicit | frozenset(overrides)
        )
        return derived

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able dict (round-trips through :meth:`from_dict` when the
        executor is a name; instances serialize as their backend name)."""
        state = self._state()
        executor = state["executor"]
        if isinstance(executor, Executor):
            state["executor"] = executor.name
        if state["workers"] is not None:
            state["workers"] = list(state["workers"])
        return state

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    # -- resolution helpers ------------------------------------------------

    def resolve_stream(self, default: bool) -> bool:
        """The effective streaming-ingest choice for a beam whose own
        default is ``default`` (``stream_source=None`` defers to it)."""
        return default if self.stream_source is None else self.stream_source

    def resolve_adaptive(self) -> bool:
        """The effective adaptive-planning choice (``None`` defers to the
        engine-wide :data:`DEFAULT_ADAPTIVE`)."""
        return DEFAULT_ADAPTIVE if self.adaptive is None else self.adaptive

    def executor_factory_options(self) -> Dict[str, Any]:
        """Backend factory kwargs implied by these options (the remote
        backend's worker list; the broadcast threshold for the
        payload-shipping backends)."""
        if isinstance(self.executor, Executor):
            return {}
        opts: Dict[str, Any] = {}
        if self.executor == "remote" and self.workers:
            opts["workers"] = list(self.workers)
        if (
            self.executor in ("multiprocess", "remote")
            and self.broadcast_min_bytes != DEFAULT_BROADCAST_MIN_BYTES
        ):
            opts["broadcast_min_bytes"] = self.broadcast_min_bytes
        return opts


def _rebuild_options(
    state: Dict[str, Any], explicit: Optional[Iterable[str]] = None
) -> EngineOptions:
    executor = state.pop("executor")
    options = EngineOptions(executor, **state)
    if explicit is not None:
        object.__setattr__(options, "_explicit", frozenset(explicit))
    return options


_DEFAULT_STATE = EngineOptions()._state()

#: Field -> argparse dest for the flags whose natural dest is taken by a
#: non-engine argument on a host CLI (the selector's --adaptive owns
#: ``args.adaptive`` for the greedy algorithm's adaptive partitioning).
_FLAG_DESTS = {"adaptive": "adaptive_plan"}


def _parse_env_value(name: str, raw: str, key: str) -> Any:
    text = raw.strip()
    if name in ("num_shards", "broadcast_min_bytes", "stream_chunk_size"):
        try:
            return int(text)
        except ValueError:
            raise ValueError(f"{key} must be an integer, got {raw!r}") from None
    if name in (
        "spill_to_disk", "fuse", "optimize", "columnar", "stream_source",
        "adaptive",
    ):
        lowered = text.lower()
        if (
            name in ("optimize", "columnar", "stream_source", "adaptive")
            and lowered == "none"
        ):
            return None
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(
            f"{key} must be a boolean (1/0, true/false, yes/no, on/off), "
            f"got {raw!r}"
        )
    if name == "shuffle":
        lowered = text.lower()
        if lowered == "none":
            return None
        if lowered in ("driver", "worker"):
            return lowered
        raise ValueError(
            f"{key} must be 'driver', 'worker', or 'none', got {raw!r}"
        )
    if name == "workers":
        return tuple(w for w in text.split(",") if w) or None
    if name in ("checkpoint_dir", "checkpoint_salt", "executor"):
        return text or None
    raise AssertionError(name)  # pragma: no cover - guarded by caller


def add_engine_arguments(parser: Any) -> Any:
    """Attach the shared engine flag block to an argparse parser.

    One definition replaces the hand-copied flag blocks that used to live
    in every CLI entry point.  All defaults are ``None`` ("not passed"),
    so :meth:`EngineOptions.from_namespace` can layer explicit flags over
    the environment and an optional ``--engine-options`` JSON file.
    Returns the created argument group.
    """
    group = parser.add_argument_group(
        "engine options",
        "dataflow-engine configuration (defaults < REPRO_ENGINE_* env "
        "< --engine-options JSON < explicit flags)",
    )
    group.add_argument(
        "--engine-options", default=None, metavar="FILE",
        help="JSON file of EngineOptions fields (e.g. "
             '{"executor": "thread", "num_shards": 16})',
    )
    group.add_argument(
        "--executor", choices=tuple(executor_names()), default=None,
        help="dataflow engine backend: sequential, persistent thread "
             "pool, persistent worker-process pool, or a remote TCP "
             "worker cluster",
    )
    group.add_argument(
        "--num-shards", dest="num_shards", type=int, default=None,
        help="dataflow logical worker count",
    )
    group.add_argument(
        "--spill-to-disk", dest="spill_to_disk", action="store_true",
        default=None,
        help="keep dataflow shards on disk (larger-than-memory mode)",
    )
    group.add_argument(
        "--no-spill-to-disk", dest="spill_to_disk", action="store_false",
        help="keep shards in memory (overrides a spill_to_disk set via "
             "environment or --engine-options)",
    )
    group.add_argument(
        "--no-optimize", dest="optimize", action="store_false", default=None,
        help="disable the dataflow plan optimizer (combiner lifting, "
             "redundant-shuffle elision, post-shuffle fusion) and run "
             "the naive plan",
    )
    group.add_argument(
        "--optimize", dest="optimize", action="store_true",
        help="run the plan optimizer (overrides an optimize=false set "
             "via environment or --engine-options)",
    )
    group.add_argument(
        "--no-columnar", dest="columnar", action="store_false", default=None,
        help="disable the columnar shard runtime (whole-shard vectorized "
             "execution of batch-declared operators) and run the pure "
             "row path",
    )
    group.add_argument(
        "--columnar", dest="columnar", action="store_true",
        help="run the columnar shard runtime (overrides a columnar=false "
             "set via environment or --engine-options)",
    )
    group.add_argument(
        "--stream-source", dest="stream_source", action="store_true",
        default=None,
        help="ingest every dataflow source through chunked streaming "
             "(the driver never materializes the ground set); by default "
             "each beam keeps its own ingest mode",
    )
    group.add_argument(
        "--no-stream-source", dest="stream_source", action="store_false",
        help="force eager ingest everywhere (disables the bounding "
             "stage's default streaming)",
    )
    group.add_argument(
        "--workers", default=None,
        help="comma-separated host:port list of remote worker daemons "
             "(python -m repro.dataflow.remote.worker); with --executor "
             "remote and no list, two localhost workers are auto-spawned",
    )
    group.add_argument(
        "--shuffle", choices=("driver", "worker"), default=None,
        help="shuffle data plane: merge buckets on the driver (the "
             "default) or exchange them worker-to-worker on the remote "
             "backend (the driver only plans the assignment; peer "
             "fetches fall back through the driver when a producer "
             "dies); results are bit-identical either way",
    )
    group.add_argument(
        "--checkpoint-dir", dest="checkpoint_dir", default=None,
        help="persist dataflow stage outputs here (plan-digest keyed); "
             "rerunning an identical, killed job resumes from the last "
             "completed stage",
    )
    group.add_argument(
        "--broadcast-min-bytes", dest="broadcast_min_bytes", type=int,
        default=None,
        help="closure-capture size threshold for one-time broadcast on "
             "the multiprocess/remote backends",
    )
    group.add_argument(
        "--stream-chunk-size", dest="stream_chunk_size", type=int,
        default=None,
        help="records per chunk for streaming sources",
    )
    # Named --adaptive-plan, with a matching distinct dest, because the
    # selector CLI already owns --adaptive (and the args.adaptive slot)
    # for the greedy algorithm's adaptive partitioning — a shared dest
    # would let either flag silently flip the other's feature.
    group.add_argument(
        "--adaptive-plan", dest="adaptive_plan", action="store_true",
        default=None,
        help="let the cost-model-driven planner choose the engine knobs "
             "left unset (num_shards, executor backend, "
             "broadcast_min_bytes, checkpoint placement); explicit flags "
             "always win, results are bit-identical",
    )
    group.add_argument(
        "--no-adaptive-plan", dest="adaptive_plan", action="store_false",
        help="disable adaptive planning (overrides an adaptive=true set "
             "via environment or --engine-options)",
    )
    return group


def legacy_engine_options(
    legacy: Mapping[str, Any],
    *,
    options: Optional[EngineOptions],
    context: Optional["DataflowContext"],
    api: str,
    stacklevel: int = 3,
) -> Optional[EngineOptions]:
    """Fold deprecated per-function engine kwargs into an ``EngineOptions``.

    ``legacy`` maps knob name → passed value, with :data:`UNSET` marking
    "not passed".  When any knob was actually passed: warn
    (``DeprecationWarning``), reject mixing with the new API, and build
    the equivalent options object — results are bit-identical because the
    new path consumes exactly the same values.
    """
    passed = {k: v for k, v in legacy.items() if v is not UNSET}
    if not passed:
        return options
    if options is not None or context is not None:
        raise TypeError(
            f"{api}: pass engine configuration either through the new "
            f"API (options=EngineOptions(...) / a shared context) or "
            f"through the deprecated keywords {sorted(passed)}, not both"
        )
    warnings.warn(
        f"{api}: the engine keyword(s) {sorted(passed)} are deprecated; "
        f"pass options=EngineOptions(...) (or share a DataflowContext) "
        "instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return EngineOptions.from_dict(passed)


class DataflowContext:
    """Owns the resolved executor + checkpoint directory for a run.

    ``DataflowContext(options)`` resolves the executor once (spawning the
    worker cluster for the remote backend); every pipeline built through
    :meth:`pipeline` shares it.  ``close()`` — or exiting the ``with``
    block — tears the executor down *iff* the context created it: an
    :class:`~repro.dataflow.executor.Executor` instance passed in via
    ``options.executor`` is shared and left running, exactly as pipelines
    treat passed-in executors.

    The context also aggregates the checkpoint digests every pipeline of
    the run touched (computed, stored, or resumed), so
    :meth:`gc_checkpoints` can drop exactly the stale entries.
    """

    def __init__(self, options: Optional[EngineOptions] = None, **kwargs: Any):
        if options is None:
            options = EngineOptions(**kwargs)
        elif kwargs:
            options = options.derive(**kwargs)
        self.planner = None
        if options.resolve_adaptive():
            from repro.dataflow.planner import AdaptivePlanner

            self.planner = AdaptivePlanner(
                history_dir=options.checkpoint_dir
            )
            # Context-level decisions happen before the executor is
            # resolved; the planner only touches knobs the caller left
            # unset, so explicit configuration always wins.
            planned: Dict[str, Any] = {}
            if not options.is_explicit("executor") and not isinstance(
                options.executor, Executor
            ):
                choice = self.planner.choose_executor(options.executor)
                if choice != options.executor:
                    planned["executor"] = choice
            if not options.is_explicit("broadcast_min_bytes"):
                choice = self.planner.choose_broadcast_min_bytes(
                    options.broadcast_min_bytes
                )
                if choice != options.broadcast_min_bytes:
                    planned["broadcast_min_bytes"] = choice
            if planned:
                options = options.derive(**planned)
        self.options = options
        self.executor = resolve_executor(
            options.executor, **options.executor_factory_options()
        )
        self._owns_executor = not isinstance(options.executor, Executor)
        self.touched_checkpoint_digests: "set[str]" = set()
        self._dispatch_lock = threading.RLock()
        self._scoped = False
        self._closed = False

    def pipeline(self, **overrides: Any):
        """A :class:`~repro.dataflow.pcollection.Pipeline` wired to this
        context's executor and options.

        ``overrides`` are per-pipeline :class:`EngineOptions` tweaks
        (``checkpoint_salt=...`` is the common one — each beam derives its
        own salt from the data it streams).  The pipeline never owns the
        executor; closing it leaves the context's executor running.

        ``plan_records`` (not an options knob) is the beam's estimate of
        the pipeline's input size; with adaptive planning on it lets the
        planner size ``num_shards`` and cost the optimizer's rewrites —
        an explicit ``num_shards`` still wins.
        """
        from repro.dataflow.pcollection import Pipeline

        if self._closed:
            raise RuntimeError("DataflowContext closed")
        plan_records = overrides.pop("plan_records", None)
        o = self.options.derive(**overrides) if overrides else self.options
        num_shards = o.num_shards
        if self.planner is not None and not o.is_explicit("num_shards"):
            num_shards = self.planner.choose_num_shards(
                plan_records, base=o.num_shards
            )
        return Pipeline(
            num_shards,
            spill_to_disk=o.spill_to_disk,
            executor=self.executor,
            fuse=o.fuse,
            optimize=o.optimize,
            columnar=o.columnar,
            stream_chunk_size=o.stream_chunk_size,
            checkpoint_dir=o.checkpoint_dir,
            checkpoint_salt=o.checkpoint_salt,
            touched_digests=self.touched_checkpoint_digests,
            planner=self.planner,
            plan_records=plan_records,
            shuffle=o.shuffle,
        )

    def scoped(self) -> "DataflowContext":
        """A per-job view of this warm context for concurrent drives.

        The view shares everything warm — options, executor pool (through
        a :class:`~repro.dataflow.executor.JobScopedExecutor`, which
        serializes dispatch across all views and meters only the view's
        own work), adaptive planner, and the touched-digest set — while
        giving each concurrent drive isolated executor stats, so per-job
        reports stay correct when a long-lived service multiplexes
        tenants onto one context.  Closing a view is a no-op on the
        shared resources: the base context's executor stays up and the
        planner's history flushes once, when the *base* closes.
        """
        if self._closed:
            raise RuntimeError("DataflowContext closed")
        view = object.__new__(DataflowContext)
        view.options = self.options
        view.planner = self.planner
        view.executor = JobScopedExecutor(self.executor, self._dispatch_lock)
        view._owns_executor = False
        view.touched_checkpoint_digests = self.touched_checkpoint_digests
        view._dispatch_lock = self._dispatch_lock
        view._scoped = True
        view._closed = False
        return view

    def gc_checkpoints(self, keep: Iterable[str] = ()) -> int:
        """Delete checkpoint entries no pipeline of this run touched.

        Returns the number of entries removed.  ``keep`` protects extra
        digests (e.g. from a sibling run sharing the directory).  A
        context without a checkpoint directory has nothing to collect.
        """
        from repro.dataflow.pcollection import gc_checkpoint_entries

        return gc_checkpoint_entries(
            self.options.checkpoint_dir,
            self.touched_checkpoint_digests | set(keep),
        )

    def close(self) -> None:
        """Release the executor (only if this context created it).

        With adaptive planning on, first persist the planner's profile
        history and recalibrated cost-model constants next to the
        checkpoints so the next drive starts calibrated.
        """
        if self._closed:
            return
        self._closed = True
        # Scoped views share the planner; flushing its history from every
        # concurrent job would race on the files, so only the base flushes.
        if self.planner is not None and not self._scoped:
            self.planner.flush()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "DataflowContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _SharedContext:
    """Context-manager view of a caller-owned :class:`DataflowContext`
    (exiting does not close it) — what beams use when handed a context."""

    def __init__(self, context: DataflowContext) -> None:
        self._context = context

    def __enter__(self) -> DataflowContext:
        return self._context

    def __exit__(self, *exc: Any) -> None:
        return None


def engine_context(
    options: Optional[EngineOptions],
    context: Optional[DataflowContext],
):
    """The beams' entry contract: yield a usable ``DataflowContext``.

    A passed-in ``context`` is shared (never closed here); otherwise a
    fresh context is built from ``options`` (or pure defaults) and closed
    when the beam finishes.
    """
    if context is not None:
        if options is not None:
            raise TypeError("pass either options= or context=, not both")
        return _SharedContext(context)
    return DataflowContext(options if options is not None else EngineOptions())
