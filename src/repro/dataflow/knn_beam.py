"""Distributed kNN-graph construction as a dataflow job.

The paper builds its 10-NN graph with ScaNN over billions of embeddings —
graph construction is itself a larger-than-memory problem.  This module
expresses the standard IVF-sharded construction on the dataflow engine as
a thin composition: fit a coarse quantizer on a driver-sized sample (the
only centralized step), then apply the
:class:`~repro.dataflow.library.ShardedKnn` composite (multi-probe
assignment → per-cell brute force → per-point candidate merge) and take
each point's global top-k on the way out.  Peak per-worker memory is the
largest cell, not the corpus.

Engine configuration comes from a single
:class:`~repro.dataflow.options.EngineOptions` (``options=``) or a shared
:class:`~repro.dataflow.options.DataflowContext` (``context=``, e.g. to
reuse one worker pool across several builds).  The old per-call engine
keywords (``executor=``, ``num_shards=``, …) still work but are
deprecated — they fold into an ``EngineOptions`` and warn.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.dataflow.library import ShardedKnn
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.options import (
    UNSET,
    DataflowContext,
    EngineOptions,
    engine_context,
    legacy_engine_options,
)
from repro.graph.csr import NeighborGraph
from repro.graph.knn import l2_normalize
from repro.graph.symmetrize import symmetrize_knn
from repro.utils.rng import SeedLike, as_generator


def _fit_centroids(
    x: np.ndarray, n_clusters: int, n_iter: int, rng: np.random.Generator
) -> np.ndarray:
    """Spherical k-means on a sample (the driver-sized coarse quantizer)."""
    sample = x[rng.choice(x.shape[0], size=min(x.shape[0], 4096), replace=False)]
    n_clusters = min(n_clusters, sample.shape[0])
    centroids = sample[rng.choice(sample.shape[0], size=n_clusters, replace=False)]
    for _ in range(n_iter):
        assign = np.argmax(sample @ centroids.T, axis=1)
        for c in range(n_clusters):
            members = sample[assign == c]
            if members.size:
                mean = members.mean(axis=0)
                norm = np.linalg.norm(mean)
                if norm > 0:
                    centroids[c] = mean / norm
    return centroids


def beam_knn_graph(
    embeddings: np.ndarray,
    k: int,
    *,
    n_clusters: "int | None" = None,
    nprobe: int = 3,
    n_iter: int = 8,
    seed: SeedLike = 0,
    options: Optional[EngineOptions] = None,
    context: Optional[DataflowContext] = None,
    num_shards=UNSET,
    executor=UNSET,
    spill_to_disk=UNSET,
    optimize=UNSET,
    stream_source=UNSET,
    checkpoint_dir=UNSET,
) -> Tuple[NeighborGraph, np.ndarray, np.ndarray, PipelineMetrics]:
    """Construct a symmetric kNN graph with the dataflow engine.

    Returns ``(graph, neighbors, similarities, metrics)`` matching
    :func:`repro.graph.symmetrize.build_knn_graph`'s outputs, plus the
    engine metrics that witness the bounded per-worker footprint.

    Engine knobs live on ``options`` (every backend produces identical
    outputs for a fixed seed); ``context`` shares an existing executor /
    checkpoint scope instead.  ``options.stream_source=None`` keeps this
    beam's default of eager point-id ingest.  With a checkpoint
    directory, boundaries key on a plan digest (the stage DoFns capture
    the embeddings and fitted centroids, so only a bit-identical rerun
    hits) — a killed build resumes from its last completed stage.

    The candidate merge is written naively (``group_by_key`` + ``Fold``)
    inside :class:`~repro.dataflow.library.ShardedKnn`; with ``optimize``
    on the plan optimizer lifts it to ``combine_per_key`` and elides the
    redundant reshards, so shuffle volume drops by more than half versus
    the naive plan.
    """
    options = legacy_engine_options(
        {
            "num_shards": num_shards, "executor": executor,
            "spill_to_disk": spill_to_disk, "optimize": optimize,
            "stream_source": stream_source, "checkpoint_dir": checkpoint_dir,
        },
        options=options, context=context, api="beam_knn_graph",
    )
    x = l2_normalize(embeddings)
    n = x.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
    rng = as_generator(seed)
    if n_clusters is None:
        n_clusters = max(1, int(np.sqrt(n)))
    centroids = _fit_centroids(x, n_clusters, n_iter, rng)

    neighbors = np.full((n, k), -1, dtype=np.int64)
    sims_out = np.full((n, k), -np.inf)
    with engine_context(options, context) as ctx:
        opts = ctx.options
        # Input-size hint: lets the adaptive planner size shard counts
        # and cost the optimizer's rewrites before anything runs.
        pipeline_overrides = {"plan_records": int(n)}
        if opts.checkpoint_dir is not None:
            from repro.core.distributed import fingerprint

            # The streamed source is just ``range(n)``; the embeddings and
            # centroids are captured by the stage DoFns and enter the plan
            # digests through them.
            pipeline_overrides["checkpoint_salt"] = fingerprint(
                "knn-source", int(n)
            )
        pipeline = ctx.pipeline(**pipeline_overrides)
        try:
            points = pipeline.create(
                range(n), name="knn/source", stream=opts.resolve_stream(False)
            )
            merged = points.apply(
                ShardedKnn(x, centroids, k=k, nprobe=nprobe)
            )
            # Drain the per-point candidate dicts into flat columns and
            # rank them with one lexsort instead of one ``sorted`` per
            # point.  Sort order (point, -sim, host) reproduces the
            # per-point ``sorted(..., key=(-sim, host))`` bit-for-bit:
            # float negation is exact and each (point, host) pair is
            # unique, so the order is total.
            point_ids: List[int] = []
            counts: List[int] = []
            flat_hosts: List[int] = []
            flat_sims: List[float] = []
            for point, acc in (
                pair for shard in merged.iter_shards() for pair in shard
            ):
                point_ids.append(point)
                counts.append(len(acc))
                flat_hosts.extend(acc.keys())
                flat_sims.extend(acc.values())
            if flat_hosts:
                pts = np.repeat(
                    np.asarray(point_ids, dtype=np.int64),
                    np.asarray(counts, dtype=np.int64),
                )
                hosts_col = np.asarray(flat_hosts, dtype=np.int64)
                sims_col = np.asarray(flat_sims, dtype=np.float64)
                order = np.lexsort((hosts_col, -sims_col, pts))
                pts = pts[order]
                # Rank within each point's run (points are unique per
                # record, so runs are contiguous after the sort).
                run_start = np.empty(pts.size, dtype=bool)
                run_start[0] = True
                np.not_equal(pts[1:], pts[:-1], out=run_start[1:])
                starts = np.flatnonzero(run_start)
                ranks = np.arange(pts.size, dtype=np.int64) - np.repeat(
                    starts, np.diff(np.append(starts, pts.size))
                )
                keep = ranks < k
                pts = pts[keep]
                ranks = ranks[keep]
                neighbors[pts, ranks] = hosts_col[order][keep]
                sims_out[pts, ranks] = sims_col[order][keep]
            metrics = pipeline.metrics
        finally:
            pipeline.close()
    # Points whose probed cells had < k hosts: pad with random distinct ids.
    # (One whole-matrix scan finds them; the RNG is only drawn for rows
    # that actually pad, exactly as the per-row loop did.)
    for v in np.flatnonzero((neighbors < 0).any(axis=1)).tolist():
        missing = neighbors[v] < 0
        used = set(neighbors[v][~missing].tolist()) | {v}
        pool = [c for c in rng.permutation(n).tolist() if c not in used]
        fill = pool[: int(missing.sum())]
        neighbors[v, missing] = fill
        sims_out[v, missing] = x[fill] @ x[v]
    np.maximum(sims_out, 0.0, out=sims_out)
    graph = symmetrize_knn(neighbors, sims_out)
    return graph, neighbors, sims_out, metrics
