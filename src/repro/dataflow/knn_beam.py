"""Distributed kNN-graph construction as a dataflow job.

The paper builds its 10-NN graph with ScaNN over billions of embeddings —
graph construction is itself a larger-than-memory problem.  This module
expresses the standard IVF-sharded construction on the dataflow engine:

1. fit a coarse quantizer (k-means-style centroids) on a driver-sized
   sample — this is the only centralized step, O(n_clusters · dim);
2. *assignment*: map each point to its own cell plus the ``nprobe − 1``
   next-closest cells (multi-probe, so near-boundary neighbors are found);
3. *per-cell kNN*: group by cell and brute-force each cell locally — a
   worker only ever holds one cell;
4. *merge*: combine per-cell candidate lists per point, keeping the global
   top-k by similarity.

Peak per-worker memory is the largest cell, not the corpus; recall matches
the in-memory IVF index since both probe the same cells.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import Fold, Pipeline
from repro.graph.csr import NeighborGraph
from repro.graph.knn import l2_normalize
from repro.graph.symmetrize import symmetrize_knn
from repro.utils.rng import SeedLike, as_generator


def _fit_centroids(
    x: np.ndarray, n_clusters: int, n_iter: int, rng: np.random.Generator
) -> np.ndarray:
    """Spherical k-means on a sample (the driver-sized coarse quantizer)."""
    sample = x[rng.choice(x.shape[0], size=min(x.shape[0], 4096), replace=False)]
    n_clusters = min(n_clusters, sample.shape[0])
    centroids = sample[rng.choice(sample.shape[0], size=n_clusters, replace=False)]
    for _ in range(n_iter):
        assign = np.argmax(sample @ centroids.T, axis=1)
        for c in range(n_clusters):
            members = sample[assign == c]
            if members.size:
                mean = members.mean(axis=0)
                norm = np.linalg.norm(mean)
                if norm > 0:
                    centroids[c] = mean / norm
    return centroids


def beam_knn_graph(
    embeddings: np.ndarray,
    k: int,
    *,
    n_clusters: int | None = None,
    nprobe: int = 3,
    num_shards: int = 8,
    n_iter: int = 8,
    executor="sequential",
    spill_to_disk: bool = False,
    optimize: "bool | None" = None,
    stream_source: bool = False,
    checkpoint_dir: "str | None" = None,
    seed: SeedLike = 0,
) -> Tuple[NeighborGraph, np.ndarray, np.ndarray, PipelineMetrics]:
    """Construct a symmetric kNN graph with the dataflow engine.

    Returns ``(graph, neighbors, similarities, metrics)`` matching
    :func:`repro.graph.symmetrize.build_knn_graph`'s outputs, plus the
    engine metrics that witness the bounded per-worker footprint.
    ``executor`` picks the engine backend (``"sequential"`` / ``"thread"``
    / ``"multiprocess"`` or an Executor instance); outputs are identical
    on every backend for a fixed seed.

    The per-point candidate merge is written as the naive
    ``group_by_key().map_values(Fold)`` — with ``optimize`` on (the
    default) the plan optimizer lifts it to ``combine_per_key`` (partial
    dicts shuffle instead of full candidate lists) and elides the
    redundant ``as_keyed`` reshards, so shuffle volume drops by more than
    half versus ``optimize=False`` (the naive plan).  ``stream_source``
    ingests the point ids through the chunked streaming source path.
    ``checkpoint_dir`` persists materialization boundaries keyed by a
    plan digest (the stage DoFns capture the embeddings and fitted
    centroids, so only a bit-identical rerun hits) — a killed build
    resumes from its last completed stage.
    """
    x = l2_normalize(embeddings)
    n = x.shape[0]
    if not 1 <= k < n:
        raise ValueError(f"need 1 <= k < n, got k={k}, n={n}")
    rng = as_generator(seed)
    if n_clusters is None:
        n_clusters = max(1, int(np.sqrt(n)))
    centroids = _fit_centroids(x, n_clusters, n_iter, rng)
    nprobe = min(max(1, nprobe), centroids.shape[0])

    checkpoint_salt = None
    if checkpoint_dir is not None:
        from repro.core.distributed import fingerprint

        # The streamed source is just ``range(n)``; the embeddings and
        # centroids are captured by the stage DoFns and enter the plan
        # digests through them.
        checkpoint_salt = fingerprint("knn-source", int(n))
    pipeline = Pipeline(
        num_shards, executor=executor, spill_to_disk=spill_to_disk,
        optimize=optimize,
        checkpoint_dir=checkpoint_dir, checkpoint_salt=checkpoint_salt,
    )
    points = pipeline.create(
        range(n), name="knn/source", stream=bool(stream_source)
    )

    # (2) multi-probe assignment: (cell, (point, is_home)).  Only the home
    # cell *hosts* the point (appears as a potential neighbor); probe cells
    # treat it as a query so boundary neighbors are still found.
    def assign(v: int):
        sims = centroids @ x[v]
        order = np.argsort(-sims)[:nprobe]
        return [
            (int(cell), (v, probe_rank == 0))
            for probe_rank, cell in enumerate(order)
        ]

    assigned = points.flat_map(assign, name="knn/assign").as_keyed(
        name="knn/assign_key"
    )

    # (3) per-cell brute force: hosts are candidate neighbors, everyone in
    # the group (host or probe) is a query.
    def cell_knn(kv) -> List[Tuple[int, List[Tuple[int, float]]]]:
        _cell, members = kv
        hosts = np.array(sorted(v for v, is_home in members if is_home),
                         dtype=np.int64)
        queries = np.array(sorted({v for v, _ in members}), dtype=np.int64)
        if hosts.size == 0:
            return []
        sims = x[queries] @ x[hosts].T
        out = []
        for qi, q in enumerate(queries.tolist()):
            row = sims[qi]
            mask = hosts != q
            cand_hosts = hosts[mask]
            cand_sims = row[mask]
            take = min(k, cand_hosts.size)
            if take == 0:
                continue
            top = np.argpartition(cand_sims, -take)[-take:]
            out.append(
                (q, list(zip(cand_hosts[top].tolist(),
                             cand_sims[top].tolist())))
            )
        return out

    candidates = assigned.group_by_key(name="knn/group").flat_map(
        cell_knn, name="knn/cell_knn"
    ).as_keyed(name="knn/cand_key")

    # (4) merge per point: keep the global top-k, deduplicating hosts that
    # appeared in several probed cells.  Written as the naive
    # group-then-fold; the optimizer lifts it to combine_per_key (partial
    # per-shard dicts shuffle instead of full candidate lists).  Max-merge
    # is order-insensitive, so optimized and naive plans agree bit-for-bit.
    def merge_zero():
        return {}

    def merge_add(acc, pairs):
        for host, sim in pairs:
            prev = acc.get(host)
            if prev is None or sim > prev:
                acc[host] = sim
        return acc

    def merge_merge(a, b):
        for host, sim in b.items():
            prev = a.get(host)
            if prev is None or sim > prev:
                a[host] = sim
        return a

    merged = candidates.group_by_key(name="knn/merge_group").map_values(
        Fold(merge_zero, merge_add, merge_merge, label="knn/topk"),
        name="knn/merge",
    )

    neighbors = np.full((n, k), -1, dtype=np.int64)
    sims_out = np.full((n, k), -np.inf)
    try:
        for point, acc in (
            pair for shard in merged.iter_shards() for pair in shard
        ):
            items = sorted(acc.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
            for j, (host, sim) in enumerate(items):
                neighbors[point, j] = host
                sims_out[point, j] = sim
    finally:
        pipeline.close()
    # Points whose probed cells had < k hosts: pad with random distinct ids.
    for v in range(n):
        missing = neighbors[v] < 0
        if missing.any():
            used = set(neighbors[v][~missing].tolist()) | {v}
            pool = [c for c in rng.permutation(n).tolist() if c not in used]
            fill = pool[: int(missing.sum())]
            neighbors[v, missing] = fill
            sims_out[v, missing] = x[fill] @ x[v]
    np.maximum(sims_out, 0.0, out=sims_out)
    graph = symmetrize_knn(neighbors, sims_out)
    return graph, neighbors, sims_out, pipeline.metrics
