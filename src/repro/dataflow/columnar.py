"""Columnar shards and the vectorized (batch) operator protocol.

The row runtime hands every DoFn one record at a time; for numeric
workloads the per-record Python dispatch dominates wall time even after
the plan optimizer has minimized shuffle volume.  This module provides
the columnar alternative:

:class:`ColumnarShard`
    A struct-of-arrays shard — an optional key column plus one or more
    aligned value columns, all NumPy arrays.  It implements the engine's
    shard protocol (``len``, ``load``, iteration), so it flows through
    ``Pipeline._run_stage``, spill (pickled as whole arrays, never
    row-by-row), checkpoint payloads, and executor task payloads
    unchanged.  Row view and columnar view are interconvertible at any
    shard boundary: :meth:`ColumnarShard.to_records` emits exactly the
    Python-scalar records the row path would have produced (``tolist``
    semantics), so the two representations are bit-identical under
    ``repr`` comparison.

:class:`BatchDoFn`
    A DoFn that declares a whole-shard implementation next to its
    per-record one.  The engine applies ``batch`` to the entire shard
    when the pipeline runs columnar (``Pipeline(columnar=...)``) and the
    op sits in the leading *batch prefix* of a fused chain; everywhere
    else the scalar ``fn`` runs per record — automatic fallback, same
    results.  Consecutive batch ops chain without leaving NumPy
    (batch-level fusion); the first non-batch op in a chain is the
    *fallback boundary* where the shard is materialized to rows
    (``explain()`` renders it).

:func:`stable_shard` / :func:`stable_shard_column`
    The engine's deterministic key hash, and its whole-column
    counterpart.  Integer-dtype columns hash with one vectorized ``%``
    (NumPy's modulo matches Python's for negative values); every other
    dtype routes each element through the scalar hash, so the column
    path is bit-identical to the scalar path for **all** key types —
    property-tested in ``tests/test_columnar.py``.

Row <-> columnar conversion contract
------------------------------------
A keyed shard with one value column holds records ``(keys[i],
columns[0][i])``; with ``m > 1`` value columns, ``(keys[i],
(columns[0][i], ..., columns[m-1][i]))``.  An unkeyed shard (``keys is
None``) drops the key part.  Conversion to rows uses ``ndarray.tolist``,
which yields built-in Python scalars (``int``/``float``/``bool``) —
the exact types the scalar DoFns emit — so a pipeline may cross the
boundary in either direction any number of times without changing a
single bit of its output.
"""

from __future__ import annotations

import numbers
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ColumnarShard",
    "BatchDoFn",
    "as_records",
    "stable_shard",
    "stable_shard_column",
    "bucket_keyed_items",
]


def bucket_keyed_items(items: list, num_shards: int) -> List[list]:
    """Route ``(key, value)`` pairs into shard buckets, hashing the key
    column in one vectorized pass when the keys form a bool/signed-int
    array.

    Bit-identical to appending each pair under ``stable_shard(key)``:
    the vectorized branch fires only for dtypes where
    :func:`stable_shard_column` is an exact twin of the scalar hash, and
    bucket-internal pair order is the input order either way.  Anything
    else — strings, tuples (which ``asarray`` would turn 2-D), mixed or
    oversized ints — falls back to the scalar hash per pair.
    """
    buckets: List[list] = [[] for _ in range(num_shards)]
    if len(items) > 64:
        try:
            key_arr = np.asarray([kv[0] for kv in items])
        except (OverflowError, ValueError, TypeError):
            key_arr = None
        if (
            key_arr is not None
            and key_arr.ndim == 1
            and (
                key_arr.dtype == np.bool_
                or np.issubdtype(key_arr.dtype, np.signedinteger)
            )
        ):
            dests = stable_shard_column(key_arr, num_shards).tolist()
            for dest, kv in zip(dests, items):
                buckets[dest].append(kv)
            return buckets
    for kv in items:
        buckets[stable_shard(kv[0], num_shards)].append(kv)
    return buckets


def stable_shard(key: Any, num_shards: int) -> int:
    """Deterministic shard assignment (Python hash is salted for str only).

    Integral keys — Python ``int`` and NumPy integer scalars alike — shard
    by value, so ``5`` and ``np.int64(5)`` always land on the same shard.
    """
    if isinstance(key, numbers.Integral):
        return int(key) % num_shards
    if isinstance(key, tuple):
        acc = 0
        for part in key:
            acc = (acc * 1_000_003 + stable_shard(part, 2**61 - 1)) % (2**61 - 1)
        return acc % num_shards
    # Fall back to a stable string hash (FNV-1a).
    data = str(key).encode()
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) % (1 << 64)
    return h % num_shards


def stable_shard_column(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Vectorized :func:`stable_shard` over a whole key column.

    Bit-identical to the scalar hash for every key type: integer (and
    bool) dtypes use one vectorized modulo — NumPy's ``%`` agrees with
    Python's for negative operands — and any other dtype (floats,
    strings, object columns of tuples, ...) routes each element through
    the scalar hash.
    """
    keys = np.asarray(keys)
    if keys.dtype == np.bool_ or np.issubdtype(keys.dtype, np.integer):
        return np.mod(keys.astype(np.int64, copy=False), num_shards)
    return np.fromiter(
        (stable_shard(key, num_shards) for key in keys.tolist()),
        dtype=np.int64,
        count=len(keys),
    )


class ColumnarShard:
    """One shard as a struct of arrays: a key column + aligned value columns.

    Implements the engine's shard protocol — ``len`` without loading,
    ``load()`` (identity: the columnar form *is* the loaded form), and
    record iteration — so executors, spill, checkpointing, and the
    remote payload path treat it like any other shard.  Stages that
    understand columns operate on the arrays directly; everything else
    sees the exact row records via :meth:`to_records`.
    """

    __slots__ = ("keys", "columns")

    def __init__(
        self, keys: Optional[np.ndarray], columns: Sequence[np.ndarray]
    ) -> None:
        if not columns:
            raise ValueError("ColumnarShard needs at least one value column")
        self.keys = None if keys is None else np.asarray(keys)
        self.columns = tuple(np.asarray(col) for col in columns)
        n = len(self.columns[0])
        for col in self.columns[1:]:
            if len(col) != n:
                raise ValueError(
                    f"misaligned value columns: {len(col)} != {n}"
                )
        if self.keys is not None and len(self.keys) != n:
            raise ValueError(
                f"key column length {len(self.keys)} != value length {n}"
            )

    # -- shard protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns[0])

    def load(self) -> "ColumnarShard":
        """Shard-protocol hook: a columnar shard is its own loaded form."""
        return self

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_records())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        keyed = "keyed" if self.keys is not None else "unkeyed"
        return (
            f"ColumnarShard({keyed}, n={len(self)}, "
            f"cols={len(self.columns)})"
        )

    # -- row <-> columnar conversion ---------------------------------------

    def keys_list(self) -> list:
        """Key column as built-in Python scalars (``tolist`` semantics)."""
        if self.keys is None:
            raise ValueError("unkeyed columnar shard has no key column")
        return self.keys.tolist()

    def values_list(self) -> list:
        """Value records as Python scalars; multi-column values are tuples."""
        if len(self.columns) == 1:
            return self.columns[0].tolist()
        return list(zip(*(col.tolist() for col in self.columns)))

    def to_records(self) -> list:
        """The exact row records the scalar path would have produced."""
        values = self.values_list()
        if self.keys is None:
            return values
        return list(zip(self.keys.tolist(), values))

    @classmethod
    def from_records(cls, records: Sequence[Any], *, keyed: bool) -> "ColumnarShard":
        """Build a columnar shard from row records (inverse of
        :meth:`to_records`; dtypes are inferred by NumPy).  Multi-column
        values must be uniform-width tuples."""
        if keyed:
            keys = np.asarray([record[0] for record in records])
            values = [record[1] for record in records]
        else:
            keys = None
            values = list(records)
        if values and isinstance(values[0], tuple):
            columns = tuple(
                np.asarray([value[i] for value in values])
                for i in range(len(values[0]))
            )
        else:
            columns = (np.asarray(values),)
        return cls(keys, columns)

    # -- columnar operations -----------------------------------------------

    def take(self, indices: np.ndarray) -> "ColumnarShard":
        """Row subset/permutation by index array (keys follow)."""
        keys = None if self.keys is None else self.keys[indices]
        return ColumnarShard(keys, tuple(col[indices] for col in self.columns))

    def mask(self, keep: np.ndarray) -> "ColumnarShard":
        """Row subset by boolean mask, order preserved."""
        keep = np.asarray(keep, dtype=bool)
        keys = None if self.keys is None else self.keys[keep]
        return ColumnarShard(keys, tuple(col[keep] for col in self.columns))

    @staticmethod
    def concat(parts: Sequence["ColumnarShard"]) -> "ColumnarShard":
        """Concatenate aligned parts (the shuffle merge of column buckets)."""
        if len(parts) == 1:
            return parts[0]
        keys = (
            None
            if parts[0].keys is None
            else np.concatenate([part.keys for part in parts])
        )
        n_cols = len(parts[0].columns)
        columns = tuple(
            np.concatenate([part.columns[i] for part in parts])
            for i in range(n_cols)
        )
        return ColumnarShard(keys, columns)


class BatchDoFn:
    """A DoFn with a declared whole-shard (vectorized) implementation.

    ``fn`` is the per-record callable (the fallback, and what every
    row-path cell of the differential matrix runs); ``batch`` is the
    whole-shard twin.  A ``BatchDoFn`` *is* its scalar function — calling
    it delegates to ``fn`` — so serialization, plan digests, and any
    engine path that does not know about batching behave exactly as if
    the plain callable had been passed.

    Batch contract (the user's promise, mirrored on :class:`Fold`'s
    ``add``/``merge`` contract): for a shard ``s`` (a list of records or
    a :class:`ColumnarShard`),

    - ``map``: ``batch(s)`` equals ``[fn(x) for x in s]`` — same length,
      same order, same element types;
    - ``flat_map``: ``batch(s)`` equals the concatenation of ``fn(x)``
      outputs in record order;
    - ``filter``: ``batch(s)`` is a boolean mask aligned with ``s``
      (``[bool(fn(x)) for x in s]``); the engine applies it.

    ``batch`` may return a plain list or a :class:`ColumnarShard`; a
    columnar return keeps the chain (and the downstream shuffle routing)
    in NumPy.  Batch impls must accept both shard forms — helpers on
    :class:`ColumnarShard` make either direction cheap.
    """

    __slots__ = ("fn", "batch", "label")

    def __init__(
        self,
        fn: Callable[..., Any],
        batch: Callable[[Any], Any],
        *,
        label: Optional[str] = None,
    ) -> None:
        self.fn = fn
        self.batch = batch
        self.label = label or getattr(fn, "__name__", "batch_do_fn")

    def __call__(self, *args: Any) -> Any:
        return self.fn(*args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchDoFn({self.label})"


#: Op kinds the batch protocol covers (``map_values`` chains fall back to
#: rows; declared ``Fold`` reductions vectorize through the combiner path
#: instead — see ``Fold(batch=...)``).
_BATCHABLE_KINDS = frozenset({"map", "flat_map", "filter"})


def batch_prefix_len(ops: Sequence[Tuple[str, Any]]) -> int:
    """Length of the leading run of ops with whole-shard implementations."""
    n = 0
    for kind, fn in ops:
        if kind not in _BATCHABLE_KINDS or not isinstance(fn, BatchDoFn):
            break
        n += 1
    return n


def as_records(shard: Any) -> list:
    """Row view of a stage input: the fallback-boundary conversion."""
    if isinstance(shard, ColumnarShard):
        return shard.to_records()
    if isinstance(shard, list):
        return shard
    return list(shard)


def apply_batch_op(kind: str, dofn: BatchDoFn, shard: Any) -> Any:
    """Apply one batch op to a whole shard (list or columnar)."""
    out = dofn.batch(shard)
    if kind != "filter":
        return out
    if isinstance(shard, ColumnarShard):
        return shard.mask(np.asarray(out, dtype=bool))
    return [record for record, keep in zip(shard, out) if keep]


def run_batch_prefix(shard: Any, ops: Sequence[Tuple[str, Any]], n: int) -> Any:
    """Thread a shard through the first ``n`` ops batch-wise."""
    for kind, dofn in ops[:n]:
        shard = apply_batch_op(kind, dofn, shard)
    return shard


def route_columnar(shard: ColumnarShard, num_shards: int) -> List[Any]:
    """Vectorized shuffle write: bucket a keyed columnar shard by the
    stable key hash.

    One vectorized hash over the key column, one stable argsort, and
    ``num_shards`` zero-copy slices.  The stable sort preserves record
    order within each bucket, so the driver-side merge sees exactly the
    row path's record sequence — results stay bit-identical.  Empty
    buckets are plain empty lists (the merge skips them).
    """
    ids = stable_shard_column(shard.keys, num_shards)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    bounds = np.searchsorted(sorted_ids, np.arange(num_shards + 1))
    sorted_shard = shard.take(order)
    buckets: List[Any] = []
    for i in range(num_shards):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        if lo == hi:
            buckets.append([])
        else:
            buckets.append(
                ColumnarShard(
                    sorted_shard.keys[lo:hi],
                    tuple(col[lo:hi] for col in sorted_shard.columns),
                )
            )
    return buckets


def merge_bucket_parts(parts: List[Any]) -> Any:
    """Driver-side shuffle merge of one destination shard's bucket parts.

    All-columnar parts concatenate array-wise (no row materialization);
    anything else degrades to one flat row list in part order — the
    exact sequence the row path builds.
    """
    if not parts:
        return []
    if all(isinstance(part, ColumnarShard) for part in parts):
        return ColumnarShard.concat(parts)
    merged: list = []
    for part in parts:
        merged.extend(as_records(part))
    return merged
