"""Multi-collection transforms: Flatten, CoGroupByKey, distributed selection.

:class:`Fold` (re-exported from :mod:`repro.dataflow.pcollection`) is the
declared-reduction handle for the plan optimizer: writing
``group_by_key().map_values(Fold(zero, add, merge))`` lets combiner lifting
rewrite the pair to ``combine_per_key`` with pre-shuffle partial
aggregation, while the naive plan (``optimize=False``) applies the fold to
the grouped value lists directly.

``distributed_kth_largest`` deserves a note: the bounding thresholds
``U^k_min`` / ``U^k_max`` are order statistics of collections that may not
fit in memory (k itself can be billions).  We compute them with driver-side
bisection over the value range, where each probe is a distributed count —
O(1) driver state per probe — and a final exact pass once few candidates
straddle the boundary.  This is the classic MapReduce quantile pattern and
keeps the engine's "nothing holds the subset" guarantee intact.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.dataflow.columnar import BatchDoFn, ColumnarShard
from repro.dataflow.pcollection import Fold, PCollection, Pipeline

__all__ = [
    "Fold",
    "BatchDoFn",
    "ColumnarShard",
    "flatten",
    "cogroup",
    "sum_globally",
    "count_where",
    "min_max_globally",
    "distributed_kth_largest",
]


def flatten(collections: Sequence[PCollection], *, name: str = "flatten") -> PCollection:
    """Beam Flatten: union of PCollections without central materialization.

    Builds a lazy multi-input node; at materialization shard lists are
    concatenated index-wise — no data moves, mirroring how "a union can be
    implemented without materializing all data in memory" (Sec. 4.4).
    """
    if not collections:
        raise ValueError("flatten requires at least one collection")
    pipeline = collections[0].pipeline
    for coll in collections:
        if coll.pipeline is not pipeline:
            raise ValueError("all collections must share one pipeline")
    pipeline.metrics.count_stage(name)
    keyed = all(c.keyed for c in collections)
    node = pipeline._new_node(
        "flatten", tuple(c._node for c in collections), name=name
    )
    return PCollection(pipeline, node, keyed=keyed)


def cogroup(
    collections: Sequence[PCollection], *, name: str = "cogroup"
) -> PCollection:
    """Beam CoGroupByKey: join n keyed collections.

    Output: one element per distinct key, ``(key, ([values_0], [values_1],
    ..., [values_{n-1}]))`` with one value list per input collection.
    """
    if not collections:
        raise ValueError("cogroup requires at least one collection")
    pipeline = collections[0].pipeline
    for coll in collections:
        if coll.pipeline is not pipeline:
            raise ValueError("all collections must share one pipeline")
        coll._require_keyed("cogroup")
    pipeline.metrics.count_stage(name)
    node = pipeline._new_node(
        "cogroup",
        tuple(c._node for c in collections),
        extra=len(collections),
        name=name,
    )
    return PCollection(pipeline, node, keyed=True)


def sum_globally(values: PCollection) -> float:
    """Global float sum with O(num_shards) driver state."""
    return values.combine_globally(
        lambda: 0.0, lambda acc, x: acc + float(x), lambda a, b: a + b
    )


def count_where(values: PCollection, predicate: Callable[[Any], bool]) -> int:
    """Distributed count of elements satisfying ``predicate``."""
    return values.combine_globally(
        lambda: 0,
        lambda acc, x: acc + (1 if predicate(x) else 0),
        lambda a, b: a + b,
    )


def min_max_globally(values: PCollection) -> Tuple[float, float]:
    """Distributed (min, max) of a float collection."""

    def add(acc: Tuple[float, float], x: Any) -> Tuple[float, float]:
        v = float(x)
        return (min(acc[0], v), max(acc[1], v))

    def merge(a: Tuple[float, float], b: Tuple[float, float]) -> Tuple[float, float]:
        return (min(a[0], b[0]), max(a[1], b[1]))

    return values.combine_globally(lambda: (float("inf"), float("-inf")), add, merge)


def distributed_kth_largest(
    values: PCollection,
    k: int,
    *,
    exact_cap: int = 4096,
    max_probes: int = 128,
) -> float:
    """k-th largest element of a float PCollection, larger-than-memory safe.

    Bisects the value range with distributed counts until the candidates
    straddling the boundary fit under ``exact_cap``, then finishes exactly on
    that small slice.  Total driver memory: O(exact_cap).

    Parameters
    ----------
    k:
        1-based rank from the top (``k=1`` → maximum).
    """
    n = values.count()
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= {n}, got k={k}")
    lo, hi = min_max_globally(values)
    if lo == hi:
        return float(lo)
    # Invariant: count(> hi) < k <= count(>= lo); the answer is in [lo, hi].
    for _ in range(max_probes):
        in_band = count_where(values, lambda x, lo=lo, hi=hi: lo <= float(x) <= hi)
        if in_band <= exact_cap:
            break
        mid = (lo + hi) / 2.0
        if mid == lo or mid == hi:  # float resolution exhausted
            break
        above = count_where(values, lambda x, mid=mid: float(x) > mid)
        if above >= k:
            lo = mid
        else:
            hi = mid
    band = sorted(
        (float(x) for x in values.filter(
            lambda x, lo=lo, hi=hi: lo <= float(x) <= hi
        ).to_list()),
        reverse=True,
    )
    above_band = count_where(values, lambda x, hi=hi: float(x) > hi)
    rank_in_band = k - above_band
    if not 1 <= rank_in_band <= len(band):
        raise RuntimeError(
            "bisection invariant violated: "
            f"k={k}, above_band={above_band}, band={len(band)}"
        )
    return band[rank_in_band - 1]
