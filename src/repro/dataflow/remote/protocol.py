"""Wire protocol for the remote executor: length-prefixed pickle frames.

Every message on a worker channel is one *frame*: an 8-byte big-endian
length header followed by that many payload bytes.  The payload is a
pickled tuple whose first element is a message tag.  Frames are written
with a single ``sendall`` and read with an exact-length loop, so message
boundaries survive TCP's stream semantics.

Driver → worker messages
------------------------
``(MSG_PING,)``
    Liveness probe; the worker answers ``(MSG_PONG,)``.  Also used as the
    connection handshake.
``(MSG_BLOB, digest, blob_bytes)``
    One broadcast capture (see :mod:`repro.dataflow.executor`): the worker
    unpickles and caches it under ``digest`` for the channel's lifetime.
    No reply.
``(MSG_STAGE, payload_bytes)``
    The current stage function, serialized with the broadcast-aware
    pickler (blob references resolve against the channel's cache).  No
    reply; deserialization errors surface on the next task.
``(MSG_TASK, index, shard)``
    One shard of work.  Exactly one reply per task — ``(MSG_RESULT,
    index, value)`` or ``(MSG_ERROR, index, exc, traceback_str)`` — which
    keeps each channel in lockstep even through failing stages.
``(MSG_TASK_COL, index, payload_bytes)``
    One columnar shard of work, serialized with the broadcast-aware
    pickler: its large ndarray columns are blob references resolved
    against the channel's cache (the driver ships any unseen blob
    first), so a column the worker already holds never crosses the wire
    again.  Reply contract is identical to ``MSG_TASK``.
``(MSG_BYE,)``
    Close this channel; the worker daemon keeps serving other channels.
``(MSG_SHUTDOWN,)``
    Terminate the whole worker process (used by auto-spawned clusters).

Worker → driver, in addition to the replies above:
``(MSG_HEARTBEAT,)``
    Sent periodically while a task is computing, so the driver can tell a
    slow worker from a dead one without bounding task runtime.

Serialization uses :mod:`cloudpickle` when available (shards may contain
arbitrary user records; stage payloads are produced by the broadcast
pickler upstream) and degrades to the stdlib pickler otherwise — the
caller treats a serialization error as "run this shard on the driver".
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

try:
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised on minimal installs
    _cloudpickle = None

#: Message tags (first tuple element of every frame payload).
(
    MSG_PING,
    MSG_PONG,
    MSG_BLOB,
    MSG_STAGE,
    MSG_TASK,
    MSG_RESULT,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_BYE,
    MSG_SHUTDOWN,
) = range(10)

#: Appended after the original block so existing tag values never shift.
MSG_TASK_COL = 10

_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame (a corrupted header must not trigger a
#: multi-terabyte allocation).
MAX_FRAME_BYTES = 1 << 40


def dumps(message: Tuple[Any, ...]) -> bytes:
    """Serialize one message (cloudpickle when available)."""
    if _cloudpickle is not None:
        return _cloudpickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def loads(payload: bytes) -> Tuple[Any, ...]:
    """Deserialize one message (cloudpickle output is plain pickle)."""
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed the channel")
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> bytes:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame header ({length} bytes)")
    return _recv_exact(sock, length)


def send_msg(sock: socket.socket, message: Tuple[Any, ...]) -> None:
    send_frame(sock, dumps(message))


def recv_msg(sock: socket.socket) -> Tuple[Any, ...]:
    return loads(recv_frame(sock))
