"""Wire protocol for the remote executor: length-prefixed pickle frames.

Every message on a worker channel is one *frame*: an 8-byte big-endian
length header followed by that many payload bytes.  The payload is a
pickled tuple whose first element is a message tag.  Frames are written
with a single ``sendall`` and read with an exact-length loop, so message
boundaries survive TCP's stream semantics.

Driver → worker messages
------------------------
``(MSG_PING,)``
    Liveness probe; the worker answers ``(MSG_PONG,)``.  Also used as the
    connection handshake.
``(MSG_BLOB, digest, blob_bytes)``
    One broadcast capture (see :mod:`repro.dataflow.executor`): the worker
    unpickles and caches it under ``digest`` for the channel's lifetime.
    No reply.
``(MSG_STAGE, payload_bytes)``
    The current stage function, serialized with the broadcast-aware
    pickler (blob references resolve against the channel's cache).  No
    reply; deserialization errors surface on the next task.
``(MSG_TASK, index, shard)``
    One shard of work.  Exactly one reply per task — ``(MSG_RESULT,
    index, value)`` or ``(MSG_ERROR, index, exc, traceback_str)`` — which
    keeps each channel in lockstep even through failing stages.
``(MSG_TASK_COL, index, payload_bytes)``
    One columnar shard of work, serialized with the broadcast-aware
    pickler: its large ndarray columns are blob references resolved
    against the channel's cache (the driver ships any unseen blob
    first), so a column the worker already holds never crosses the wire
    again.  Reply contract is identical to ``MSG_TASK``.
``(MSG_BYE,)``
    Close this channel; the worker daemon keeps serving other channels.
``(MSG_SHUTDOWN,)`` / ``(MSG_SHUTDOWN, force)``
    Stop the worker process.  The graceful form (``force`` falsy or
    absent) closes the listener, lets every connection's in-flight task
    drain to its reply, and only then exits — other connected drivers
    lose the daemon *between* tasks, never mid-shard.  ``force=True``
    keeps the historical abrupt ``os._exit``.

Worker-to-worker shuffle (appended tags, values never shift):
``(MSG_TASK_SHUF, index, exchange_id, combine, shard)``
    A shuffle-write task: run the current stage function (a bucketer)
    over ``shard``, but keep the resulting buckets resident on the
    worker, registered in the daemon-wide bucket store under
    ``"<exchange_id>/<index>/<dest>"`` ids.  The single reply is
    ``(MSG_RESULT, index, (extra, metas))`` where ``metas`` lists
    ``(dest, n_records, n_bytes)`` for each non-empty bucket and
    ``extra`` is the pre-combine record count when ``combine`` is true
    (the write fn returns ``(n_pre, buckets)``) else ``None`` — the
    driver learns the routing without moving a byte of bucket data.
``(MSG_FETCH_BUCKET, bucket_id)``
    Peer-to-peer (or driver-fallback) bucket fetch, sent on a fresh
    connection to the *producing* worker's daemon; answered with one
    ``MSG_BUCKET`` frame, or — when the stored payload exceeds the
    daemon's ``bucket_chunk_bytes`` — a run of ``MSG_BUCKET_CHUNK``
    frames.
``(MSG_BUCKET, bucket_id, payload_bytes_or_None)``
    The stored bucket's serialized bytes (``None`` when the id is
    unknown — e.g. the exchange was already evicted).
``(MSG_BUCKET_CHUNK, bucket_id, seq, n_chunks, chunk_bytes)``
    One bounded piece of a large bucket: ``seq`` counts from 0 and the
    fetcher concatenates all ``n_chunks`` pieces in order to recover
    the serialized bucket.  Keeps a multi-hundred-MB bucket from
    occupying one giant frame (and one giant contiguous driver/worker
    buffer) per fetch; the receiver meters the frames as
    ``bucket_fetch_chunks``.
``(MSG_TASK_SHUF_READ, index, sources)``
    A shuffle-read task: ``sources`` lists this destination shard's
    bucket parts in input-shard order, each ``("peer", host, port,
    bucket_id)`` or ``("inline", payload_bytes)``.  The worker fetches
    peer parts (its own daemon's store is hit locally), merges them
    exactly like the driver's ``merge_bucket_parts``, and runs the
    current stage function over the merged shard.  The reply is
    ``(MSG_RESULT, index, (value, n_merged, merged_columnar,
    p2p_bytes, local_bytes, fetch_chunks))`` — or ``(MSG_RESULT, index,
    (FETCH_FAILED, detail))`` when a producing peer is unreachable, in
    which case the driver re-derives the shard itself (the fault
    fallback).
``(MSG_EVICT_BUCKETS, exchange_id)``
    Drop every stored bucket of one exchange (sent when the read stage
    completes).  No reply.
``(MSG_EVICT_BLOBS, digests_or_None)``
    Drop the listed broadcast blobs from this connection's cache
    (``None`` = all).  The driver forgets them from its shipped ledger
    first, so a later stage that needs one simply re-ships it —
    long-lived shared daemons stop accumulating the capture history of
    every drive they ever served.  No reply.

Worker → driver, in addition to the replies above:
``(MSG_HEARTBEAT,)``
    Sent periodically while a task is computing, so the driver can tell a
    slow worker from a dead one without bounding task runtime.

Serialization uses :mod:`cloudpickle` when available (shards may contain
arbitrary user records; stage payloads are produced by the broadcast
pickler upstream) and degrades to the stdlib pickler otherwise — the
caller treats a serialization error as "run this shard on the driver".
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

try:
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised on minimal installs
    _cloudpickle = None

#: Message tags (first tuple element of every frame payload).
(
    MSG_PING,
    MSG_PONG,
    MSG_BLOB,
    MSG_STAGE,
    MSG_TASK,
    MSG_RESULT,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_BYE,
    MSG_SHUTDOWN,
) = range(10)

#: Appended after the original block so existing tag values never shift.
MSG_TASK_COL = 10
MSG_TASK_SHUF = 11
MSG_FETCH_BUCKET = 12
MSG_BUCKET = 13
MSG_TASK_SHUF_READ = 14
MSG_EVICT_BUCKETS = 15
MSG_EVICT_BLOBS = 16
MSG_BUCKET_CHUNK = 17

#: Default upper bound on one ``MSG_BUCKET`` payload before the serving
#: daemon switches to ``MSG_BUCKET_CHUNK`` streaming (workers take
#: ``--bucket-chunk-bytes``; ``None`` disables chunking).
DEFAULT_BUCKET_CHUNK_BYTES = 4 << 20

#: Shuffle-read reply marker: the worker could not fetch every assigned
#: bucket (a producing peer died); the driver re-derives the shard.  A
#: module-level string constant so both sides compare by value.
FETCH_FAILED = "__repro_bucket_fetch_failed__"

_HEADER = struct.Struct(">Q")

#: Upper bound on a single frame (a corrupted header must not trigger a
#: multi-terabyte allocation).
MAX_FRAME_BYTES = 1 << 40


def dumps(message: Tuple[Any, ...]) -> bytes:
    """Serialize one message (cloudpickle when available)."""
    if _cloudpickle is not None:
        return _cloudpickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


def loads(payload: bytes) -> Tuple[Any, ...]:
    """Deserialize one message (cloudpickle output is plain pickle)."""
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed the channel")
        buf.extend(chunk)
    return bytes(buf)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> bytes:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"oversized frame header ({length} bytes)")
    return _recv_exact(sock, length)


def send_msg(sock: socket.socket, message: Tuple[Any, ...]) -> None:
    send_frame(sock, dumps(message))


def recv_msg(sock: socket.socket) -> Tuple[Any, ...]:
    return loads(recv_frame(sock))
