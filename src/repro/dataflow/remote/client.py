"""``RemoteExecutor``: the engine's socket/RPC backend.

Implements the exact :class:`~repro.dataflow.executor.Executor` contract
— ``run_stage(fn, shards)`` returning results in shard order, plus an
idempotent, concurrency-safe ``close`` — over a cluster of worker
daemons reached by TCP, so every pipeline, beam, and optimizer pass runs
unchanged with ``num_shards`` spread across real worker processes.

Scheduling mirrors the multiprocess backend: per stage, each live worker
receives any broadcast blobs it has not seen, the (small) stage payload,
and then shards one at a time, pulled dynamically from a shared queue so
skewed shards load-balance across the cluster.

Fault model
-----------
A worker is *dead* when its channel errors or stays silent longer than
``heartbeat_timeout`` (daemons heartbeat every second or so while
computing, so silence means the process or the network is gone, not that
the shard is slow).  The dead worker's in-flight shard is requeued and
the stage completes on the survivors — ``worker_failures`` and
``retried_shards`` count the events.  Shards are assumed idempotent
(DoFns are pure everywhere in this codebase), so a retry cannot change
results.  A *Python exception* inside a DoFn is not a fault: it fails
the stage deterministically on every backend alike.  If every worker
dies mid-stage, ``run_stage`` raises.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import traceback
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.executor import (
    DEFAULT_BROADCAST_MIN_BYTES,
    BroadcastRegistry,
    Executor,
    _resolve,
    columnar_task_eligible,
    dumps_with_broadcast,
)
from repro.dataflow.remote import protocol
from repro.dataflow.remote.cluster import LocalCluster
from repro.dataflow.remote.protocol import (
    MSG_BLOB,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_STAGE,
    MSG_TASK,
    MSG_TASK_COL,
)


def _parse_address(spec) -> Tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` → ``(host, port)``.

    Delegates to the engine's single address validator
    (:func:`repro.dataflow.options.parse_worker_address`), so malformed
    addresses and out-of-range ports fail identically whether they arrive
    here or at :class:`~repro.dataflow.options.EngineOptions`
    construction.
    """
    from repro.dataflow.options import parse_worker_address

    return parse_worker_address(spec)


class _Channel:
    """One driver↔worker connection and its shipped-blob ledger."""

    __slots__ = ("address", "sock", "alive", "shipped")

    def __init__(self, address: Tuple[str, int], sock: socket.socket) -> None:
        self.address = address
        self.sock = sock
        self.alive = True
        self.shipped: "set[str]" = set()

    def kill(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class _StageState:
    """Shared bookkeeping for one stage's dynamic task dispatch.

    ``next_task`` blocks while the queue is empty but other channels still
    have shards in flight — a dead worker may requeue its shard at any
    moment, and a surviving channel that returned early would strand it.
    """

    def __init__(self, n_tasks: int) -> None:
        self.results: List[Any] = [None] * n_tasks
        self.done = [False] * n_tasks
        self.pending = deque(range(n_tasks))
        self.in_flight = 0
        self.completed = 0
        self.n_tasks = n_tasks
        self.failure: Optional[Tuple[Any, str]] = None
        self.cond = threading.Condition()

    def next_task(self, close_event: threading.Event) -> Optional[int]:
        with self.cond:
            while True:
                if self.failure is not None or close_event.is_set():
                    return None
                if self.pending:
                    self.in_flight += 1
                    return self.pending.popleft()
                if self.completed == self.n_tasks or self.in_flight == 0:
                    return None
                # Timed wait so a concurrent close() (which cannot reach
                # this condition) still unblocks us promptly.
                self.cond.wait(0.05)

    def complete(self, index: int, value: Any) -> None:
        with self.cond:
            self.results[index] = value
            self.done[index] = True
            self.completed += 1
            self.in_flight -= 1
            self.cond.notify_all()

    def requeue(self, index: int) -> None:
        with self.cond:
            self.pending.append(index)
            self.in_flight -= 1
            self.cond.notify_all()

    def abandon(self, index: int) -> None:
        with self.cond:
            self.in_flight -= 1
            self.cond.notify_all()

    def fail(self, exc: Any, tb: str) -> None:
        with self.cond:
            if self.failure is None:
                self.failure = (exc, tb)
            self.cond.notify_all()

    def missing(self) -> List[int]:
        return [i for i, ok in enumerate(self.done) if not ok]


class _ChannelDead(Exception):
    """Internal: the worker behind a channel is gone."""


class RemoteExecutor(Executor):
    """Dataflow backend over a TCP worker cluster.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs) of daemons started with ``python -m
        repro.dataflow.remote.worker``.  ``None`` (or empty) auto-spawns
        ``max_workers`` localhost daemons owned — and terminated — by
        this executor.
    max_workers:
        Auto-spawned worker count (default 2).  Ignored when ``workers``
        is given.
    min_parallel_records:
        Stages with fewer total records run on the driver (default 0:
        every stage goes to the cluster).
    connect_timeout:
        Seconds to keep retrying the initial connection per worker
        (daemons need a moment to import the engine).
    heartbeat_timeout:
        Seconds of channel silence after which a worker is declared dead.
        Workers heartbeat every ~1 s while computing, so this bounds
        failure *detection*, not task runtime.
    broadcast_min_bytes:
        Captured objects at least this large ship once per worker (the
        closure-broadcast threshold shared with the multiprocess
        backend).
    resolve_before_send:
        Load spilled shards on the driver before shipping.  Off by
        default (localhost workers read the driver's spill files
        directly); turn on for workers without a shared filesystem.
    """

    name = "remote"

    def __init__(
        self,
        workers: Optional[Sequence[Any]] = None,
        *,
        max_workers: Optional[int] = None,
        min_parallel_records: int = 0,
        connect_timeout: float = 60.0,
        heartbeat_timeout: float = 10.0,
        broadcast_min_bytes: int = DEFAULT_BROADCAST_MIN_BYTES,
        resolve_before_send: bool = False,
    ) -> None:
        self.min_parallel_records = int(min_parallel_records)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.resolve_before_send = bool(resolve_before_send)
        self.worker_failures = 0
        self.retried_shards = 0
        self.broadcast_bytes = 0
        self.broadcast_blobs = 0
        self.stage_payload_bytes = 0
        self._registry = BroadcastRegistry(broadcast_min_bytes)
        self._close_event = threading.Event()
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._cluster: Optional[LocalCluster] = None
        self._channels: List[_Channel] = []
        try:
            if workers:
                addresses = [_parse_address(w) for w in workers]
            else:
                n = 2 if max_workers is None else int(max_workers)
                if n < 1:
                    raise ValueError(f"max_workers must be >= 1, got {n}")
                self._cluster = LocalCluster(n)
                addresses = list(self._cluster.addresses)
            for address in addresses:
                self._channels.append(
                    _Channel(address, self._connect(address, connect_timeout))
                )
        except BaseException:
            self.close()
            raise

    # -- connection management ---------------------------------------------

    @staticmethod
    def _connect(
        address: Tuple[str, int], connect_timeout: float
    ) -> socket.socket:
        """Connect with retries (the daemon may still be importing)."""
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                sock = socket.create_connection(address, timeout=5.0)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"could not connect to worker at "
                        f"{address[0]}:{address[1]} within "
                        f"{connect_timeout:.0f}s"
                    ) from None
                time.sleep(0.05)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Handshake: one round trip proves a protocol-speaking worker.
        protocol.send_msg(sock, (MSG_PING,))
        sock.settimeout(30.0)
        reply = protocol.recv_msg(sock)
        if reply[0] != MSG_PONG:
            sock.close()
            raise RuntimeError(
                f"worker at {address[0]}:{address[1]} answered the "
                "handshake with an unexpected message"
            )
        return sock

    @property
    def worker_addresses(self) -> List[Tuple[str, int]]:
        return [ch.address for ch in self._channels]

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of auto-spawned workers (empty for external clusters)."""
        return list(self._cluster.pids) if self._cluster is not None else []

    def stats(self) -> Dict[str, Any]:
        return {
            "stages_run": self.stages_run,
            "n_workers": len(self._channels),
            "worker_failures": self.worker_failures,
            "retried_shards": self.retried_shards,
            "broadcast_bytes": self.broadcast_bytes,
            "broadcast_blobs": self.broadcast_blobs,
            "unique_broadcast_bytes": self._registry.unique_bytes,
            "stage_payload_bytes": self.stage_payload_bytes,
        }

    # -- stage execution ---------------------------------------------------

    def run_stage(self, fn, shards: Sequence[Any]) -> List[Any]:
        if self._close_event.is_set():
            raise RuntimeError("executor closed")
        shards = list(shards)
        total = sum(len(shard) for shard in shards)
        channels = [ch for ch in self._channels if ch.alive]
        if not channels:
            raise RuntimeError(
                "no live remote workers (all "
                f"{len(self._channels)} failed)"
            )
        if len(shards) < 2 or total < self.min_parallel_records:
            return [fn(_resolve(shard)) for shard in shards]
        try:
            payload, digests = dumps_with_broadcast(fn, self._registry)
        except Exception:
            # Stage function doesn't serialize: run on the driver with
            # identical results, like the multiprocess backend.
            return [fn(_resolve(shard)) for shard in shards]
        state = _StageState(len(shards))
        # Task-shard broadcast digests, accumulated by the channel loops
        # (under ``_stats_lock``) so stage-end eviction sees them too.
        task_digests_seen: "set[str]" = set()
        threads = [
            threading.Thread(
                target=self._channel_loop,
                args=(
                    channel,
                    payload,
                    digests,
                    fn,
                    shards,
                    state,
                    task_digests_seen,
                ),
                daemon=True,
                name=f"repro-remote-{channel.address[1]}",
            )
            for channel in channels
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._close_event.is_set():
            raise RuntimeError("executor closed during stage")
        if state.failure is not None:
            exc, tb = state.failure
            if exc is not None:
                raise exc from RuntimeError(f"worker traceback:\n{tb}")
            raise RuntimeError(f"stage failed on remote worker:\n{tb}")
        # Single-threaded again (channel loops joined): drop blob bytes
        # every live channel has received — no further reader exists, so
        # long drives don't pile their capture history on the driver.
        # Eviction must stay this conservative — ``maybe_register``'s
        # identity fast path returns a digest without repopulating
        # ``blobs``, so bytes a live channel has never seen must survive
        # for a later ship.
        live = [ch for ch in self._channels if ch.alive]
        for digest in digests | frozenset(task_digests_seen):
            if live and all(digest in ch.shipped for ch in live):
                self._registry.evict(digest)
        missing = state.missing()
        if missing:
            raise RuntimeError(
                f"all remote workers died mid-stage with {len(missing)} "
                f"shard(s) unfinished (of {len(shards)})"
            )
        return state.results

    def _channel_loop(
        self,
        channel: _Channel,
        payload: bytes,
        digests: "frozenset[str]",
        fn,
        shards: List[Any],
        state: _StageState,
        task_digests_seen: "set[str]",
    ) -> None:
        """Drive one worker through the stage; never raises."""
        in_flight: Optional[int] = None
        try:
            self._send_stage(channel, payload, digests)
            while True:
                index = state.next_task(self._close_event)
                if index is None:
                    return
                in_flight = index
                shard = shards[index]
                if self.resolve_before_send:
                    shard = _resolve(shard)
                task_frame = None
                if columnar_task_eligible(shard, self._registry):
                    # Zero-copy columnar dispatch: broadcast-sized ndarray
                    # columns travel as content-addressed blobs, shipped
                    # to this worker only if it has not seen them yet.
                    try:
                        col_payload, task_digests = dumps_with_broadcast(
                            shard, self._registry
                        )
                        task_frame = protocol.dumps(
                            (MSG_TASK_COL, index, col_payload)
                        )
                    except Exception:
                        task_frame = None  # degrade to the inline frame
                    else:
                        self._ship_blobs(channel, task_digests)
                        with self._stats_lock:
                            task_digests_seen.update(task_digests)
                if task_frame is None:
                    try:
                        task_frame = protocol.dumps((MSG_TASK, index, shard))
                    except Exception:
                        task_frame = None
                if task_frame is None:
                    # Unserializable shard: compute on the driver (nothing
                    # was sent, so the channel stays in lockstep).  A DoFn
                    # exception here is a deterministic stage failure, the
                    # same one the sequential backend would raise.
                    try:
                        result = fn(_resolve(shards[index]))
                    except BaseException as exc:
                        state.abandon(index)
                        in_flight = None
                        state.fail(exc, traceback.format_exc())
                        return
                    state.complete(index, result)
                    in_flight = None
                    continue
                protocol.send_frame(channel.sock, task_frame)
                reply = self._recv_reply(channel)
                tag = reply[0]
                if tag == MSG_RESULT:
                    state.complete(reply[1], reply[2])
                    in_flight = None
                elif tag == MSG_ERROR:
                    state.abandon(index)
                    in_flight = None
                    state.fail(reply[2], reply[3])
                    return
                else:
                    raise _ChannelDead(f"unexpected message tag {tag}")
        except (
            _ChannelDead,
            ConnectionError,
            OSError,
            EOFError,
            pickle.UnpicklingError,
        ):
            channel.kill()
            if self._close_event.is_set():
                # close() tore the socket down under us; not a worker
                # fault.  Release the shard so no other loop waits on it.
                if in_flight is not None:
                    state.abandon(in_flight)
                return
            with self._stats_lock:
                self.worker_failures += 1
            if in_flight is not None:
                with self._stats_lock:
                    self.retried_shards += 1
                state.requeue(in_flight)
        except BaseException:
            # Anything else is a driver-side protocol/deserialization
            # error (e.g. a worker exception whose class fails to
            # unpickle).  The channel is desynced and retrying would
            # reproduce it, so fail the stage cleanly — never leave the
            # shard in flight, which would hang the sibling loops.
            channel.kill()
            if in_flight is not None:
                state.abandon(in_flight)
            state.fail(
                None,
                "driver-side channel error (worker reply could not be "
                "processed):\n" + traceback.format_exc(),
            )

    def _ship_blobs(
        self, channel: _Channel, digests: "frozenset[str]"
    ) -> None:
        """Ship the blobs this channel has not seen yet (once each, ever)."""
        for digest in sorted(digests - channel.shipped):
            blob = self._registry.blobs[digest]
            protocol.send_msg(channel.sock, (MSG_BLOB, digest, blob))
            channel.shipped.add(digest)
            with self._stats_lock:
                self.broadcast_bytes += len(blob)
                self.broadcast_blobs += 1

    def _send_stage(
        self, channel: _Channel, payload: bytes, digests: "frozenset[str]"
    ) -> None:
        """One-time blob broadcast, then the per-stage delta."""
        self._ship_blobs(channel, digests)
        protocol.send_msg(channel.sock, (MSG_STAGE, payload))
        with self._stats_lock:
            self.stage_payload_bytes += len(payload)

    def _recv_reply(self, channel: _Channel) -> tuple:
        """Next non-heartbeat frame; silence past the timeout = dead."""
        channel.sock.settimeout(self.heartbeat_timeout)
        while True:
            message = protocol.recv_msg(channel.sock)
            if message[0] == MSG_HEARTBEAT:
                continue
            return message

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Tear down channels (and any auto-spawned cluster).

        Idempotent, and safe while a stage is in flight on another
        thread: channel loops observe the closed sockets, the in-flight
        ``run_stage`` raises ``RuntimeError("executor closed during
        stage")``, and nothing deadlocks waiting on a worker that will
        never answer.
        """
        with self._close_lock:
            self._close_event.set()
            channels, self._channels = self._channels, []
            cluster, self._cluster = self._cluster, None
        for channel in channels:
            channel.kill()
        if cluster is not None:
            cluster.terminate()
