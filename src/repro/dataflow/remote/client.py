"""``RemoteExecutor``: the engine's socket/RPC backend.

Implements the exact :class:`~repro.dataflow.executor.Executor` contract
— ``run_stage(fn, shards)`` returning results in shard order, plus an
idempotent, concurrency-safe ``close`` — over a cluster of worker
daemons reached by TCP, so every pipeline, beam, and optimizer pass runs
unchanged with ``num_shards`` spread across real worker processes.

Scheduling mirrors the multiprocess backend: per stage, each live worker
receives any broadcast blobs it has not seen, the (small) stage payload,
and then shards one at a time, pulled dynamically from a shared queue so
skewed shards load-balance across the cluster.

Fault model
-----------
A worker is *dead* when its channel errors or stays silent longer than
``heartbeat_timeout`` (daemons heartbeat every second or so while
computing, so silence means the process or the network is gone, not that
the shard is slow).  The dead worker's in-flight shard is requeued and
the stage completes on the survivors — ``worker_failures`` and
``retried_shards`` count the events.  Shards are assumed idempotent
(DoFns are pure everywhere in this codebase), so a retry cannot change
results.  A *Python exception* inside a DoFn is not a fault: it fails
the stage deterministically on every backend alike.  If every worker
dies mid-stage, ``run_stage`` raises.

Worker-to-worker shuffle
------------------------
``run_exchange(write_fn, shards, read_fn, num_shards)`` runs a shuffle
as two worker stages with *no bucket data through the driver* on the
fault-free path: write tasks park their buckets on the producing
worker's daemon, the driver plans only the bucket→worker assignment,
and read tasks fetch their parts peer-to-peer before running the read
stage in place.  Any bucket the driver computed itself (unserializable
shard) travels inline; any bucket whose producer died is recovered by
the driver — fetched from a surviving daemon or re-derived from the
original input shard — so results stay bit-identical under faults.

Elastic membership: ``add_worker``/``remove_worker`` grow and shrink
the channel list between stages.  A joining worker starts with an empty
shipped-blob ledger, so the ship-on-first-use path streams it exactly
the captures its first tasks need; a leaving worker's in-flight shard
rides the normal requeue path.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
import traceback
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataflow.columnar import ColumnarShard, merge_bucket_parts
from repro.dataflow.executor import (
    DEFAULT_BROADCAST_MIN_BYTES,
    BroadcastRegistry,
    Executor,
    _resolve,
    columnar_task_eligible,
    dumps_with_broadcast,
)
from repro.dataflow.remote import protocol
from repro.dataflow.remote.cluster import LocalCluster
from repro.dataflow.remote.protocol import (
    FETCH_FAILED,
    MSG_BLOB,
    MSG_BYE,
    MSG_ERROR,
    MSG_EVICT_BLOBS,
    MSG_EVICT_BUCKETS,
    MSG_HEARTBEAT,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STAGE,
    MSG_TASK,
    MSG_TASK_COL,
    MSG_TASK_SHUF,
    MSG_TASK_SHUF_READ,
)
from repro.dataflow.remote.worker import _fetch_peer_buckets

#: Per-worker broadcast-cache budget (bytes of shipped blobs tracked in
#: the driver's ledger).  Crossing it evicts least-recently-referenced
#: blobs worker-side via ``MSG_EVICT_BLOBS`` — and forgets them from the
#: ledger first, so a later stage that needs one re-ships it.
DEFAULT_WORKER_CACHE_MAX_BYTES = 1 << 30


def _parse_address(spec) -> Tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` → ``(host, port)``.

    Delegates to the engine's single address validator
    (:func:`repro.dataflow.options.parse_worker_address`), so malformed
    addresses and out-of-range ports fail identically whether they arrive
    here or at :class:`~repro.dataflow.options.EngineOptions`
    construction.
    """
    from repro.dataflow.options import parse_worker_address

    return parse_worker_address(spec)


class _Channel:
    """One driver↔worker connection and its shipped-blob ledger.

    The ledger is an LRU byte-bounded map ``digest → blob size``: it
    both prevents re-shipping a blob the worker already holds and, when
    the executor's ``worker_cache_max_bytes`` budget is exceeded, picks
    the least-recently-referenced digests to evict worker-side.
    """

    __slots__ = ("address", "sock", "alive", "shipped", "shipped_bytes")

    def __init__(self, address: Tuple[str, int], sock: socket.socket) -> None:
        self.address = address
        self.sock = sock
        self.alive = True
        self.shipped: "OrderedDict[str, int]" = OrderedDict()
        self.shipped_bytes = 0

    def kill(self) -> None:
        self.alive = False
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - defensive
            pass


class _StageState:
    """Shared bookkeeping for one stage's dynamic task dispatch.

    ``next_task`` blocks while the queue is empty but other channels still
    have shards in flight — a dead worker may requeue its shard at any
    moment, and a surviving channel that returned early would strand it.
    """

    def __init__(self, n_tasks: int) -> None:
        self.results: List[Any] = [None] * n_tasks
        self.done = [False] * n_tasks
        #: Which channel completed each task (``None`` = the driver).
        #: The exchange write stage reads this to plan bucket fetches.
        self.owners: List[Optional[_Channel]] = [None] * n_tasks
        self.pending = deque(range(n_tasks))
        self.in_flight = 0
        self.completed = 0
        self.n_tasks = n_tasks
        self.failure: Optional[Tuple[Any, str]] = None
        self.cond = threading.Condition()

    def next_task(self, close_event: threading.Event) -> Optional[int]:
        with self.cond:
            while True:
                if self.failure is not None or close_event.is_set():
                    return None
                if self.pending:
                    self.in_flight += 1
                    return self.pending.popleft()
                if self.completed == self.n_tasks or self.in_flight == 0:
                    return None
                # Timed wait so a concurrent close() (which cannot reach
                # this condition) still unblocks us promptly.
                self.cond.wait(0.05)

    def complete(
        self, index: int, value: Any, owner: "Optional[_Channel]" = None
    ) -> None:
        with self.cond:
            self.results[index] = value
            self.done[index] = True
            self.owners[index] = owner
            self.completed += 1
            self.in_flight -= 1
            self.cond.notify_all()

    def requeue(self, index: int) -> None:
        with self.cond:
            self.pending.append(index)
            self.in_flight -= 1
            self.cond.notify_all()

    def abandon(self, index: int) -> None:
        with self.cond:
            self.in_flight -= 1
            self.cond.notify_all()

    def fail(self, exc: Any, tb: str) -> None:
        with self.cond:
            if self.failure is None:
                self.failure = (exc, tb)
            self.cond.notify_all()

    def missing(self) -> List[int]:
        return [i for i, ok in enumerate(self.done) if not ok]


class _ChannelDead(Exception):
    """Internal: the worker behind a channel is gone."""


class RemoteExecutor(Executor):
    """Dataflow backend over a TCP worker cluster.

    Parameters
    ----------
    workers:
        Worker addresses (``"host:port"`` strings or ``(host, port)``
        pairs) of daemons started with ``python -m
        repro.dataflow.remote.worker``.  ``None`` (or empty) auto-spawns
        ``max_workers`` localhost daemons owned — and terminated — by
        this executor.
    max_workers:
        Auto-spawned worker count (default 2).  Ignored when ``workers``
        is given.
    min_parallel_records:
        Stages with fewer total records run on the driver (default 0:
        every stage goes to the cluster).
    connect_timeout:
        Seconds to keep retrying the initial connection per worker
        (daemons need a moment to import the engine).
    heartbeat_timeout:
        Seconds of channel silence after which a worker is declared dead.
        Workers heartbeat every ~1 s while computing, so this bounds
        failure *detection*, not task runtime.
    broadcast_min_bytes:
        Captured objects at least this large ship once per worker (the
        closure-broadcast threshold shared with the multiprocess
        backend).
    resolve_before_send:
        Load spilled shards on the driver before shipping.  Off by
        default (localhost workers read the driver's spill files
        directly); turn on for workers without a shared filesystem.
    worker_cache_max_bytes:
        Byte budget for each worker's broadcast-blob cache (default
        1 GiB).  Exceeding it evicts least-recently-referenced blobs on
        the worker and forgets them from the shipped ledger, so
        long-lived shared daemons stop accumulating the capture history
        of every drive they ever served; a later stage that needs an
        evicted blob transparently re-ships it.  ``None`` disables the
        cap.
    """

    name = "remote"

    def __init__(
        self,
        workers: Optional[Sequence[Any]] = None,
        *,
        max_workers: Optional[int] = None,
        min_parallel_records: int = 0,
        connect_timeout: float = 60.0,
        heartbeat_timeout: float = 10.0,
        broadcast_min_bytes: int = DEFAULT_BROADCAST_MIN_BYTES,
        resolve_before_send: bool = False,
        worker_cache_max_bytes: Optional[int] = DEFAULT_WORKER_CACHE_MAX_BYTES,
    ) -> None:
        self.min_parallel_records = int(min_parallel_records)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.resolve_before_send = bool(resolve_before_send)
        self.worker_cache_max_bytes = (
            None if worker_cache_max_bytes is None
            else int(worker_cache_max_bytes)
        )
        self._connect_timeout = float(connect_timeout)
        self.worker_failures = 0
        self.retried_shards = 0
        self.broadcast_bytes = 0
        self.broadcast_blobs = 0
        self.stage_payload_bytes = 0
        self.blob_evictions = 0
        self.p2p_shuffle_bytes = 0
        self.driver_shuffle_bytes = 0
        self.bucket_refetches = 0
        self.bucket_fetch_chunks = 0
        self._exchange_counter = 0
        self._registry = BroadcastRegistry(broadcast_min_bytes)
        self._close_event = threading.Event()
        self._close_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._cluster: Optional[LocalCluster] = None
        self._channels: List[_Channel] = []
        try:
            if workers:
                addresses = [_parse_address(w) for w in workers]
            else:
                n = 2 if max_workers is None else int(max_workers)
                if n < 1:
                    raise ValueError(f"max_workers must be >= 1, got {n}")
                self._cluster = LocalCluster(n)
                addresses = list(self._cluster.addresses)
            for address in addresses:
                self._channels.append(
                    _Channel(address, self._connect(address, connect_timeout))
                )
        except BaseException:
            self.close()
            raise

    # -- connection management ---------------------------------------------

    @staticmethod
    def _connect(
        address: Tuple[str, int], connect_timeout: float
    ) -> socket.socket:
        """Connect with retries (the daemon may still be importing)."""
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                sock = socket.create_connection(address, timeout=5.0)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise RuntimeError(
                        f"could not connect to worker at "
                        f"{address[0]}:{address[1]} within "
                        f"{connect_timeout:.0f}s"
                    ) from None
                time.sleep(0.05)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # Handshake: one round trip proves a protocol-speaking worker.
        # The deadline covers only the handshake reply — it must not
        # leak onto later sends (see ``_recv_reply``).
        protocol.send_msg(sock, (MSG_PING,))
        sock.settimeout(30.0)
        try:
            reply = protocol.recv_msg(sock)
        finally:
            sock.settimeout(None)
        if reply[0] != MSG_PONG:
            sock.close()
            raise RuntimeError(
                f"worker at {address[0]}:{address[1]} answered the "
                "handshake with an unexpected message"
            )
        return sock

    @property
    def worker_addresses(self) -> List[Tuple[str, int]]:
        return [ch.address for ch in self._channels]

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of auto-spawned workers (empty for external clusters)."""
        return list(self._cluster.pids) if self._cluster is not None else []

    def stats(self) -> Dict[str, Any]:
        return {
            "stages_run": self.stages_run,
            "n_workers": len(self._channels),
            "worker_failures": self.worker_failures,
            "retried_shards": self.retried_shards,
            "broadcast_bytes": self.broadcast_bytes,
            "broadcast_blobs": self.broadcast_blobs,
            "unique_broadcast_bytes": self._registry.unique_bytes,
            "stage_payload_bytes": self.stage_payload_bytes,
            "blob_evictions": self.blob_evictions,
            "p2p_shuffle_bytes": self.p2p_shuffle_bytes,
            "driver_shuffle_bytes": self.driver_shuffle_bytes,
            "bucket_refetches": self.bucket_refetches,
            "bucket_fetch_chunks": self.bucket_fetch_chunks,
        }

    # -- elastic membership ------------------------------------------------

    def add_worker(
        self, worker: Any, *, connect_timeout: Optional[float] = None
    ) -> Tuple[str, int]:
        """Connect a new worker daemon and enter it into the task pool.

        The worker participates from the next stage onward (stages
        snapshot the live channel list when they start).  It joins with
        an empty shipped-blob ledger, so the ship-on-first-use path
        streams it exactly the broadcast captures its first stage needs
        — nothing is pre-copied.  Returns the parsed ``(host, port)``.
        """
        address = _parse_address(worker)
        timeout = (
            self._connect_timeout if connect_timeout is None
            else float(connect_timeout)
        )
        sock = self._connect(address, timeout)
        channel = _Channel(address, sock)
        with self._close_lock:
            if self._close_event.is_set():
                channel.kill()
                raise RuntimeError("executor closed")
            self._channels.append(channel)
        return address

    def remove_worker(self, worker: Any) -> Tuple[str, int]:
        """Detach one worker (graceful ``MSG_BYE``, then drop the channel).

        The daemon itself keeps running (it may serve other drivers); it
        just stops receiving this executor's tasks.  If a stage is in
        flight, its channel loop observes the closed socket and requeues
        the worker's shard on the survivors — the normal fault path.
        Returns the parsed ``(host, port)``.
        """
        address = _parse_address(worker)
        with self._close_lock:
            channel = next(
                (ch for ch in self._channels if ch.address == address), None
            )
            if channel is None:
                raise ValueError(f"no such worker: {address[0]}:{address[1]}")
            self._channels.remove(channel)
        try:
            protocol.send_msg(channel.sock, (MSG_BYE,))
        except OSError:
            pass
        channel.kill()
        return address

    def shutdown_workers(self, *, force: bool = False) -> None:
        """Ask every connected daemon to exit, then close the executor.

        Graceful by default: each daemon stops listening, drains every
        connection's in-flight task to its reply, and then exits — other
        drivers sharing the daemon lose it between tasks, never
        mid-shard.  ``force=True`` requests the abrupt ``os._exit``.
        """
        for channel in list(self._channels):
            if not channel.alive:
                continue
            try:
                protocol.send_msg(channel.sock, (MSG_SHUTDOWN, force))
            except OSError:
                pass
        self.close()

    # -- stage execution ---------------------------------------------------

    def run_stage(self, fn, shards: Sequence[Any]) -> List[Any]:
        if self._close_event.is_set():
            raise RuntimeError("executor closed")
        shards = list(shards)
        total = sum(len(shard) for shard in shards)
        channels = [ch for ch in self._channels if ch.alive]
        if not channels:
            raise RuntimeError(
                "no live remote workers (all "
                f"{len(self._channels)} failed)"
            )
        if len(shards) < 2 or total < self.min_parallel_records:
            return [fn(_resolve(shard)) for shard in shards]
        try:
            payload, digests = dumps_with_broadcast(fn, self._registry)
        except Exception:
            # Stage function doesn't serialize: run on the driver with
            # identical results, like the multiprocess backend.
            return [fn(_resolve(shard)) for shard in shards]
        state = _StageState(len(shards))
        # Task-shard broadcast digests, accumulated by the channel loops
        # (under ``_stats_lock``) so stage-end eviction sees them too.
        task_digests_seen: "set[str]" = set()
        threads = [
            threading.Thread(
                target=self._channel_loop,
                args=(
                    channel,
                    payload,
                    digests,
                    fn,
                    shards,
                    state,
                    task_digests_seen,
                ),
                daemon=True,
                name=f"repro-remote-{channel.address[1]}",
            )
            for channel in channels
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._close_event.is_set():
            raise RuntimeError("executor closed during stage")
        if state.failure is not None:
            exc, tb = state.failure
            if exc is not None:
                raise exc from RuntimeError(f"worker traceback:\n{tb}")
            raise RuntimeError(f"stage failed on remote worker:\n{tb}")
        # Single-threaded again (channel loops joined): drop blob bytes
        # every live channel has received — no further reader exists, so
        # long drives don't pile their capture history on the driver.
        # Eviction must stay this conservative — ``maybe_register``'s
        # identity fast path returns a digest without repopulating
        # ``blobs``, so bytes a live channel has never seen must survive
        # for a later ship.
        live = [ch for ch in self._channels if ch.alive]
        for digest in digests | frozenset(task_digests_seen):
            if live and all(digest in ch.shipped for ch in live):
                self._registry.evict(digest)
        missing = state.missing()
        if missing:
            raise RuntimeError(
                f"all remote workers died mid-stage with {len(missing)} "
                f"shard(s) unfinished (of {len(shards)})"
            )
        return state.results

    def _channel_loop(
        self,
        channel: _Channel,
        payload: bytes,
        digests: "frozenset[str]",
        fn,
        shards: List[Any],
        state: _StageState,
        task_digests_seen: "set[str]",
    ) -> None:
        """Drive one worker through the stage; never raises."""
        in_flight: Optional[int] = None
        try:
            self._send_stage(channel, payload, digests)
            while True:
                index = state.next_task(self._close_event)
                if index is None:
                    return
                in_flight = index
                shard = shards[index]
                if self.resolve_before_send:
                    shard = _resolve(shard)
                task_frame = None
                if columnar_task_eligible(shard, self._registry):
                    # Zero-copy columnar dispatch: broadcast-sized ndarray
                    # columns travel as content-addressed blobs, shipped
                    # to this worker only if it has not seen them yet.
                    try:
                        col_payload, task_digests = dumps_with_broadcast(
                            shard, self._registry
                        )
                        task_frame = protocol.dumps(
                            (MSG_TASK_COL, index, col_payload)
                        )
                    except Exception:
                        task_frame = None  # degrade to the inline frame
                    else:
                        self._ship_blobs(channel, task_digests)
                        with self._stats_lock:
                            task_digests_seen.update(task_digests)
                if task_frame is None:
                    try:
                        task_frame = protocol.dumps((MSG_TASK, index, shard))
                    except Exception:
                        task_frame = None
                if task_frame is None:
                    # Unserializable shard: compute on the driver (nothing
                    # was sent, so the channel stays in lockstep).  A DoFn
                    # exception here is a deterministic stage failure, the
                    # same one the sequential backend would raise.
                    try:
                        result = fn(_resolve(shards[index]))
                    except BaseException as exc:
                        state.abandon(index)
                        in_flight = None
                        state.fail(exc, traceback.format_exc())
                        return
                    state.complete(index, result)
                    in_flight = None
                    continue
                protocol.send_frame(channel.sock, task_frame)
                reply = self._recv_reply(channel)
                tag = reply[0]
                if tag == MSG_RESULT:
                    state.complete(reply[1], reply[2])
                    in_flight = None
                elif tag == MSG_ERROR:
                    state.abandon(index)
                    in_flight = None
                    state.fail(reply[2], reply[3])
                    return
                else:
                    raise _ChannelDead(f"unexpected message tag {tag}")
        except (
            _ChannelDead,
            ConnectionError,
            OSError,
            EOFError,
            pickle.UnpicklingError,
        ):
            channel.kill()
            if self._close_event.is_set():
                # close() tore the socket down under us; not a worker
                # fault.  Release the shard so no other loop waits on it.
                if in_flight is not None:
                    state.abandon(in_flight)
                return
            with self._stats_lock:
                self.worker_failures += 1
            if in_flight is not None:
                with self._stats_lock:
                    self.retried_shards += 1
                state.requeue(in_flight)
        except BaseException:
            # Anything else is a driver-side protocol/deserialization
            # error (e.g. a worker exception whose class fails to
            # unpickle).  The channel is desynced and retrying would
            # reproduce it, so fail the stage cleanly — never leave the
            # shard in flight, which would hang the sibling loops.
            channel.kill()
            if in_flight is not None:
                state.abandon(in_flight)
            state.fail(
                None,
                "driver-side channel error (worker reply could not be "
                "processed):\n" + traceback.format_exc(),
            )

    # -- worker-to-worker shuffle exchange ---------------------------------

    def run_exchange(
        self,
        write_fn: Callable[[Any], Any],
        shards: Sequence[Any],
        read_fn: Callable[[Any], Any],
        num_shards: int,
        *,
        combine: bool = False,
    ) -> Optional[Tuple[List[Any], Dict[str, Any]]]:
        """Run one shuffle (write stage + read stage) worker-to-worker.

        ``write_fn`` is a bucketer: shard → ``num_shards`` buckets (or
        ``(n_pre, buckets)`` when ``combine``).  Write tasks leave their
        buckets resident on the producing worker; the driver collects
        only ``(dest, n_records, n_bytes)`` routing metadata and plans
        the read stage's bucket→worker assignment.  Read tasks fetch
        their parts peer-to-peer, merge them in input-shard order
        (exactly the driver's ``merge_bucket_parts``), and run
        ``read_fn`` in place — on the fault-free path zero bucket bytes
        cross the driver.

        Fault fallback: a bucket whose producer died (or that the driver
        computed itself for an unserializable shard) goes through the
        driver — fetched from a surviving daemon when possible,
        re-derived from the original input shard otherwise — so retries
        stay bit-identical with the driver-merge path.

        Returns ``(results, info)`` with one read-stage result per
        destination shard and an ``info`` dict of exchange telemetry
        (``moved``, ``pre_records``, ``p2p_bytes``, ``driver_bytes``,
        ``local_bytes``, ``refetches``, per-destination counts, phase
        timings) — or ``None`` when the exchange cannot run remotely
        (too few shards, below ``min_parallel_records``, nothing
        serializes, or no live workers) and the caller should use the
        driver-merge shuffle path.
        """
        if self._close_event.is_set():
            raise RuntimeError("executor closed")
        shards = list(shards)
        total = sum(len(shard) for shard in shards)
        channels = [ch for ch in self._channels if ch.alive]
        if (
            not channels
            or len(shards) < 2
            or total < self.min_parallel_records
        ):
            return None
        try:
            w_payload, w_digests = dumps_with_broadcast(
                write_fn, self._registry
            )
            r_payload, r_digests = dumps_with_broadcast(
                read_fn, self._registry
            )
        except Exception:
            return None
        with self._stats_lock:
            self._exchange_counter += 1
            exchange_id = (
                f"x{os.getpid():x}.{id(self):x}.{self._exchange_counter}"
            )

        # Buckets held on the driver: produced here for unserializable
        # shards, or re-derived for dead producers (cached per input
        # shard so one lost worker doesn't recompute a shard per
        # destination).  Guarded by one lock together with the fallback
        # byte counters — fallbacks may run on several channel threads.
        driver_buckets: Dict[int, List[Any]] = {}
        rederived: Dict[int, List[Any]] = {}
        fallback_lock = threading.Lock()
        info: Dict[str, Any] = {
            "p2p_bytes": 0,
            "driver_bytes": 0,
            "local_bytes": 0,
            "refetches": 0,
            "fetch_chunks": 0,
        }

        def bucket_for(input_idx: int, dest: int, *, refetch: bool) -> Any:
            """One bucket via the driver: held, else re-derived (cached)."""
            with fallback_lock:
                buckets = driver_buckets.get(input_idx)
                if buckets is None:
                    buckets = rederived.get(input_idx)
                if buckets is None:
                    out = write_fn(_resolve(shards[input_idx]))
                    buckets = out[1] if combine else out
                    rederived[input_idx] = buckets
                if refetch:
                    info["refetches"] += 1
                return buckets[dest]

        def write_local(index: int) -> tuple:
            out = write_fn(_resolve(shards[index]))
            extra, buckets = (out if combine else (None, out))
            with fallback_lock:
                driver_buckets[index] = buckets
            metas = [
                (dest, len(bucket), 0)
                for dest, bucket in enumerate(buckets)
                if len(bucket)
            ]
            return (extra, metas)

        def write_send(channel: _Channel, index: int) -> bool:
            shard = shards[index]
            if self.resolve_before_send:
                shard = _resolve(shard)
            try:
                frame = protocol.dumps(
                    (MSG_TASK_SHUF, index, exchange_id, combine, shard)
                )
            except Exception:
                return False
            protocol.send_frame(channel.sock, frame)
            return True

        t_write = time.perf_counter()
        w_state = _StageState(len(shards))
        try:
            self._run_exchange_stage(
                channels, w_payload, w_digests, w_state, write_send,
                write_local, None,
            )
            self._check_exchange_stage(w_state)
            for index in w_state.missing():
                # Every worker died mid-write: finish on the driver.
                w_state.results[index] = write_local(index)
                w_state.done[index] = True
                w_state.owners[index] = None
        except BaseException:
            self._evict_exchange(exchange_id)
            raise
        t_read = time.perf_counter()

        # Assignment: per destination, the bucket parts in input-shard
        # order — peer descriptors for live producers, inline payloads
        # through the driver for driver-held or lost buckets.
        moved = 0
        offered: Optional[int] = 0 if combine else None
        sources: List[List[tuple]] = [[] for _ in range(num_shards)]
        for index in range(len(shards)):
            extra, metas = w_state.results[index]
            if combine and extra is not None:
                offered += extra
            owner = w_state.owners[index]
            for dest, n_records, _n_bytes in metas:
                moved += n_records
                if owner is not None and owner.alive:
                    host, port = owner.address
                    sources[dest].append(
                        ("peer", host, port, f"{exchange_id}/{index}/{dest}")
                    )
                    continue
                payload = protocol.dumps(
                    bucket_for(index, dest, refetch=owner is not None)
                )
                info["driver_bytes"] += len(payload)
                sources[dest].append(("inline", payload))

        def read_dest_local(index: int) -> tuple:
            """Driver fallback for one destination shard."""
            parts: List[Any] = []
            for source in sources[index]:
                if source[0] == "inline":
                    parts.append(protocol.loads(source[1]))
                    continue
                _, host, port, bucket_id = source
                try:
                    got, n_chunks = _fetch_peer_buckets(
                        host, port, [bucket_id]
                    )
                    payload = got[bucket_id]
                except (ConnectionError, OSError):
                    payload, n_chunks = None, 0
                if payload is None:
                    input_idx, dest = self._split_bucket_id(bucket_id)
                    parts.append(bucket_for(input_idx, dest, refetch=True))
                else:
                    parts.append(protocol.loads(payload))
                    with fallback_lock:
                        info["driver_bytes"] += len(payload)
                        info["fetch_chunks"] += n_chunks
            merged = merge_bucket_parts(parts)
            value = read_fn(merged)
            return (
                value, len(merged), isinstance(merged, ColumnarShard), 0, 0,
                0,
            )

        def read_send(channel: _Channel, index: int) -> bool:
            protocol.send_frame(
                channel.sock,
                protocol.dumps((MSG_TASK_SHUF_READ, index, sources[index])),
            )
            return True

        def read_handle(
            channel: _Channel, state: _StageState, index: int, value: Any
        ) -> bool:
            if (
                isinstance(value, tuple)
                and len(value) == 2
                and value[0] == FETCH_FAILED
            ):
                # A producing peer is gone; this worker stays healthy —
                # recover the shard on the driver and keep the channel
                # pulling tasks.
                try:
                    result = read_dest_local(index)
                except BaseException as exc:
                    state.abandon(index)
                    state.fail(exc, traceback.format_exc())
                    return False
                state.complete(index, result, owner=channel)
                return True
            state.complete(index, value, owner=channel)
            return True

        r_state = _StageState(num_shards)
        try:
            # Fresh snapshot: a worker that joined since the write stage
            # can serve reads (it fetches its parts from peers).
            read_channels = [ch for ch in self._channels if ch.alive]
            if read_channels:
                self._run_exchange_stage(
                    read_channels, r_payload, r_digests, r_state, read_send,
                    read_dest_local, read_handle,
                )
            self._check_exchange_stage(r_state)
            for index in r_state.missing():
                r_state.results[index] = read_dest_local(index)
                r_state.done[index] = True
        finally:
            self._evict_exchange(exchange_id)
        read_seconds = time.perf_counter() - t_read

        # Stage-end registry eviction, same conservative rule as
        # ``run_stage``: drop bytes every live channel already holds.
        live = [ch for ch in self._channels if ch.alive]
        for digest in w_digests | r_digests:
            if live and all(digest in ch.shipped for ch in live):
                self._registry.evict(digest)

        results: List[Any] = []
        dest_counts: List[int] = []
        dest_columnar: List[bool] = []
        for index in range(num_shards):
            value, n_merged, is_col, p2p, local, chunks = (
                r_state.results[index]
            )
            results.append(value)
            dest_counts.append(n_merged)
            dest_columnar.append(is_col)
            info["p2p_bytes"] += p2p
            info["local_bytes"] += local
            info["fetch_chunks"] += chunks
        with self._stats_lock:
            self.p2p_shuffle_bytes += info["p2p_bytes"]
            self.driver_shuffle_bytes += info["driver_bytes"]
            self.bucket_refetches += info["refetches"]
            self.bucket_fetch_chunks += info["fetch_chunks"]
        info.update(
            moved=moved,
            pre_records=offered,
            dest_counts=dest_counts,
            dest_columnar=dest_columnar,
            write_seconds=t_read - t_write,
            read_seconds=read_seconds,
            write_payload_bytes=len(w_payload),
            read_payload_bytes=len(r_payload),
        )
        return results, info

    @staticmethod
    def _split_bucket_id(bucket_id: str) -> Tuple[int, int]:
        """``"<exchange>/<input>/<dest>"`` → ``(input, dest)``."""
        _exchange, input_idx, dest = bucket_id.rsplit("/", 2)
        return int(input_idx), int(dest)

    def _check_exchange_stage(self, state: _StageState) -> None:
        if self._close_event.is_set():
            raise RuntimeError("executor closed during stage")
        if state.failure is not None:
            exc, tb = state.failure
            if exc is not None:
                raise exc from RuntimeError(f"worker traceback:\n{tb}")
            raise RuntimeError(f"stage failed on remote worker:\n{tb}")

    def _evict_exchange(self, exchange_id: str) -> None:
        """Best-effort: drop the exchange's buckets on every live worker."""
        for channel in self._channels:
            if not channel.alive:
                continue
            try:
                protocol.send_msg(
                    channel.sock, (MSG_EVICT_BUCKETS, exchange_id)
                )
            except OSError:
                channel.kill()

    def _run_exchange_stage(
        self,
        channels: List[_Channel],
        payload: bytes,
        digests: "frozenset[str]",
        state: _StageState,
        send_task: Callable[[_Channel, int], bool],
        local_compute: Callable[[int], Any],
        handle_result: Optional[
            Callable[[_Channel, _StageState, int, Any], bool]
        ],
    ) -> None:
        threads = [
            threading.Thread(
                target=self._exchange_loop,
                args=(
                    channel, payload, digests, state, send_task,
                    local_compute, handle_result,
                ),
                daemon=True,
                name=f"repro-remote-x-{channel.address[1]}",
            )
            for channel in channels
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def _exchange_loop(
        self,
        channel: _Channel,
        payload: bytes,
        digests: "frozenset[str]",
        state: _StageState,
        send_task: Callable[[_Channel, int], bool],
        local_compute: Callable[[int], Any],
        handle_result: Optional[
            Callable[[_Channel, _StageState, int, Any], bool]
        ],
    ) -> None:
        """Drive one worker through an exchange stage; never raises.

        The skeleton — dynamic task pull, lockstep reply, dead-channel
        requeue — matches ``_channel_loop``; what varies per phase is how
        a task is sent (``send_task``; returning False means the frame
        does not serialize and ``local_compute`` runs it on the driver)
        and how a result is recorded (``handle_result``; ``None`` means
        plain completion owned by this channel).
        """
        in_flight: Optional[int] = None
        try:
            self._send_stage(channel, payload, digests)
            while True:
                index = state.next_task(self._close_event)
                if index is None:
                    return
                in_flight = index
                if not send_task(channel, index):
                    try:
                        value = local_compute(index)
                    except BaseException as exc:
                        state.abandon(index)
                        in_flight = None
                        state.fail(exc, traceback.format_exc())
                        return
                    state.complete(index, value, owner=None)
                    in_flight = None
                    continue
                reply = self._recv_reply(channel)
                tag = reply[0]
                if tag == MSG_RESULT:
                    if handle_result is None:
                        state.complete(reply[1], reply[2], owner=channel)
                    elif not handle_result(channel, state, reply[1], reply[2]):
                        in_flight = None
                        return
                    in_flight = None
                elif tag == MSG_ERROR:
                    state.abandon(index)
                    in_flight = None
                    state.fail(reply[2], reply[3])
                    return
                else:
                    raise _ChannelDead(f"unexpected message tag {tag}")
        except (
            _ChannelDead,
            ConnectionError,
            OSError,
            EOFError,
            pickle.UnpicklingError,
        ):
            channel.kill()
            if self._close_event.is_set():
                if in_flight is not None:
                    state.abandon(in_flight)
                return
            with self._stats_lock:
                self.worker_failures += 1
            if in_flight is not None:
                with self._stats_lock:
                    self.retried_shards += 1
                state.requeue(in_flight)
        except BaseException:
            channel.kill()
            if in_flight is not None:
                state.abandon(in_flight)
            state.fail(
                None,
                "driver-side channel error (worker reply could not be "
                "processed):\n" + traceback.format_exc(),
            )

    def _ship_blobs(
        self, channel: _Channel, digests: "frozenset[str]"
    ) -> None:
        """Ship the blobs this channel has not seen (or has since evicted).

        Every referenced digest is bumped to most-recently-used in the
        channel's LRU ledger; if the ship pushes the worker's cache past
        ``worker_cache_max_bytes``, the coldest unreferenced blobs are
        evicted worker-side (the referencing payload is sent *after* the
        eviction frame on the same FIFO channel, so a blob needed right
        now is pinned by construction).
        """
        for digest in sorted(digests):
            if digest in channel.shipped:
                channel.shipped.move_to_end(digest)
                continue
            blob = self._registry.blobs[digest]
            protocol.send_msg(channel.sock, (MSG_BLOB, digest, blob))
            channel.shipped[digest] = len(blob)
            channel.shipped_bytes += len(blob)
            with self._stats_lock:
                self.broadcast_bytes += len(blob)
                self.broadcast_blobs += 1
        cap = self.worker_cache_max_bytes
        if cap is None or channel.shipped_bytes <= cap:
            return
        evict: List[str] = []
        for digest in list(channel.shipped):
            if channel.shipped_bytes <= cap or digest in digests:
                break
            evict.append(digest)
            channel.shipped_bytes -= channel.shipped.pop(digest)
        if evict:
            protocol.send_msg(channel.sock, (MSG_EVICT_BLOBS, evict))
            with self._stats_lock:
                self.blob_evictions += len(evict)

    def _send_stage(
        self, channel: _Channel, payload: bytes, digests: "frozenset[str]"
    ) -> None:
        """One-time blob broadcast, then the per-stage delta."""
        self._ship_blobs(channel, digests)
        protocol.send_msg(channel.sock, (MSG_STAGE, payload))
        with self._stats_lock:
            self.stage_payload_bytes += len(payload)

    def _recv_reply(self, channel: _Channel) -> tuple:
        """Next non-heartbeat frame; silence past the timeout = dead.

        The deadline is scoped to the reply wait and restored to
        blocking afterwards: leaving it installed would put the same
        ~10s ceiling on every later ``sendall`` — a multi-hundred-MB
        broadcast blob that ships slower than that would raise
        ``socket.timeout`` and be misclassified as a worker death.
        """
        channel.sock.settimeout(self.heartbeat_timeout)
        try:
            while True:
                message = protocol.recv_msg(channel.sock)
                if message[0] == MSG_HEARTBEAT:
                    continue
                return message
        finally:
            try:
                channel.sock.settimeout(None)
            except OSError:
                pass

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Tear down channels (and any auto-spawned cluster).

        Idempotent, and safe while a stage is in flight on another
        thread: channel loops observe the closed sockets, the in-flight
        ``run_stage`` raises ``RuntimeError("executor closed during
        stage")``, and nothing deadlocks waiting on a worker that will
        never answer.
        """
        with self._close_lock:
            self._close_event.set()
            channels, self._channels = self._channels, []
            cluster, self._cluster = self._cluster, None
        for channel in channels:
            channel.kill()
        if cluster is not None:
            cluster.terminate()
