"""Remote execution subsystem: a socket/RPC worker cluster backend.

The executor abstraction is the engine's scale-out seam; this package
makes it cross process — and machine — boundaries:

:mod:`~repro.dataflow.remote.worker`
    The long-lived worker daemon (``python -m repro.dataflow.remote.
    worker --host H --port P``): accepts length-prefixed cloudpickle
    frames over TCP, caches broadcast blobs, executes stage shards, and
    heartbeats while computing.
:mod:`~repro.dataflow.remote.client`
    :class:`RemoteExecutor`, the ``Executor`` implementation that
    partitions each stage's shards across the cluster with dynamic
    load balancing, one-time closure broadcast, heartbeat-based fault
    detection, and shard retry on surviving workers.
:mod:`~repro.dataflow.remote.cluster`
    :class:`LocalCluster`, which auto-spawns localhost daemons for the
    zero-configuration ``--executor remote`` path (and for tests).
:mod:`~repro.dataflow.remote.protocol`
    The framing and message vocabulary shared by both ends.

The backend registers as ``"remote"`` in
:func:`repro.dataflow.executor.resolve_executor`, so
``EngineOptions("remote", workers=(...))`` — and therefore every beam,
``SelectorConfig``, and ``--executor remote --workers host:port,...`` —
reaches it without touching engine code.  Worker addresses are validated
(``host:port`` shape, port range) at ``EngineOptions`` construction, not
at connect time.
"""

from repro.dataflow.remote.client import RemoteExecutor
from repro.dataflow.remote.cluster import LocalCluster

__all__ = ["RemoteExecutor", "LocalCluster", "WorkerServer"]


def __getattr__(name):
    # WorkerServer is imported lazily so that ``python -m
    # repro.dataflow.remote.worker`` does not find the module pre-imported
    # by its own package (runpy would warn about the double import).
    if name == "WorkerServer":
        from repro.dataflow.remote.worker import WorkerServer

        return WorkerServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
