"""The remote worker daemon: ``python -m repro.dataflow.remote.worker``.

A long-lived TCP server that executes dataflow stages for a
:class:`~repro.dataflow.remote.client.RemoteExecutor`.  Each driver
connection gets its own handler thread with its own state — the cached
broadcast blobs and the current stage function — so several executors
(e.g. the differential test matrix) can share one worker daemon without
stepping on each other.

Per connection the protocol is strictly driver-paced (see
:mod:`~repro.dataflow.remote.protocol`): blobs and the stage payload
arrive without replies, and every task produces exactly one
``MSG_RESULT``/``MSG_ERROR`` reply.  While a task computes, the handler
emits ``MSG_HEARTBEAT`` frames every ``--heartbeat-interval`` seconds so
the driver can distinguish a long-running shard from a dead worker
without imposing a task deadline.

On start the daemon prints exactly one line to stdout::

    REPRO_WORKER_READY <host> <port>

which is how :class:`~repro.dataflow.remote.cluster.LocalCluster`
discovers the ephemeral port of an auto-spawned worker (``--port 0``).

Spilled-shard caveat: a shard may arrive as a
:class:`~repro.dataflow.pcollection._DiskShard`, whose ``load()`` reads a
driver-local path — valid for localhost workers (the supported
auto-spawn deployment) and for clusters with a shared filesystem; drivers
targeting true remote hosts without one should resolve shards before
shipping (``RemoteExecutor(resolve_before_send=True)``).
"""

from __future__ import annotations

import argparse
import os
import queue
import socket
import threading
import traceback
from typing import Any, Dict, Optional

from repro.dataflow.executor import _resolve, load_blob, loads_with_broadcast
from repro.dataflow.remote import protocol
from repro.dataflow.remote.protocol import (
    MSG_BLOB,
    MSG_BYE,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STAGE,
    MSG_TASK,
    MSG_TASK_COL,
)


class WorkerServer:
    """Accept loop plus one handler thread per driver connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 1.0,
    ) -> None:
        self.heartbeat_interval = float(heartbeat_interval)
        self._listener = socket.create_server((host, int(port)))
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:  # pragma: no cover - run in subprocess
        while True:
            conn, _addr = self._listener.accept()
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def close(self) -> None:
        self._listener.close()

    # -- per-connection state machine -------------------------------------

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        blobs: Dict[str, Any] = {}
        fn = None
        fn_error: Optional[str] = None
        try:
            while True:
                message = protocol.recv_msg(sock)
                tag = message[0]
                if tag == MSG_PING:
                    protocol.send_msg(sock, (MSG_PONG,))
                elif tag == MSG_BLOB:
                    try:
                        blobs[message[1]] = load_blob(message[2])
                    except BaseException:
                        # Leave the digest unresolved; the stage payload
                        # referencing it fails to load, which surfaces as
                        # a task error with a real traceback.
                        blobs.pop(message[1], None)
                elif tag == MSG_STAGE:
                    try:
                        fn = loads_with_broadcast(message[1], blobs)
                        fn_error = None
                    except BaseException:
                        fn, fn_error = None, traceback.format_exc()
                elif tag == MSG_TASK:
                    self._run_task(sock, fn, fn_error, message[1], message[2])
                elif tag == MSG_TASK_COL:
                    # Columnar task: the shard's ndarray columns are blob
                    # references against this channel's cache.  A resolve
                    # failure is this task's (one and only) error reply,
                    # keeping the channel in lockstep.
                    try:
                        shard = loads_with_broadcast(message[2], blobs)
                    except BaseException:
                        protocol.send_frame(
                            sock,
                            protocol.dumps(
                                (
                                    MSG_ERROR,
                                    message[1],
                                    None,
                                    "columnar task payload failed to "
                                    "load on the worker:\n"
                                    + traceback.format_exc(),
                                )
                            ),
                        )
                    else:
                        self._run_task(sock, fn, fn_error, message[1], shard)
                elif tag == MSG_BYE:
                    return
                elif tag == MSG_SHUTDOWN:
                    os._exit(0)
                else:
                    return  # protocol violation: drop the channel
        except (ConnectionError, OSError):
            return
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def _run_task(
        self, sock: socket.socket, fn, fn_error, index: int, shard
    ) -> None:
        """Compute one shard in a thread, heartbeating until it finishes."""
        box: "queue.Queue[tuple]" = queue.Queue(maxsize=1)

        def compute() -> None:
            try:
                if fn_error is not None:
                    raise RuntimeError(
                        "stage function failed to deserialize on the "
                        f"worker:\n{fn_error}"
                    )
                box.put((MSG_RESULT, index, fn(_resolve(shard))))
            except BaseException as exc:
                box.put((MSG_ERROR, index, exc, traceback.format_exc()))

        thread = threading.Thread(target=compute, daemon=True)
        thread.start()
        while True:
            try:
                reply = box.get(timeout=self.heartbeat_interval)
                break
            except queue.Empty:
                protocol.send_msg(sock, (MSG_HEARTBEAT,))
        try:
            payload = protocol.dumps(reply)
        except Exception:
            # Unpicklable result or exception object: ship the traceback.
            if reply[0] == MSG_ERROR:
                payload = protocol.dumps((MSG_ERROR, index, None, reply[3]))
            else:
                payload = protocol.dumps(
                    (
                        MSG_ERROR,
                        index,
                        None,
                        "task result failed to serialize:\n"
                        + traceback.format_exc(),
                    )
                )
        protocol.send_frame(sock, payload)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.dataflow.remote.worker",
        description="long-lived dataflow worker daemon (length-prefixed "
        "cloudpickle frames over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks an ephemeral port, "
                             "announced on stdout")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between liveness frames while a "
                             "task computes")
    args = parser.parse_args(argv)
    server = WorkerServer(
        args.host, args.port, heartbeat_interval=args.heartbeat_interval
    )
    print(f"REPRO_WORKER_READY {server.host} {server.port}", flush=True)
    server.serve_forever()
    return 0  # pragma: no cover - serve_forever never returns


if __name__ == "__main__":  # pragma: no cover - exercised via LocalCluster
    raise SystemExit(main())
