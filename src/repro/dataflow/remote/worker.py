"""The remote worker daemon: ``python -m repro.dataflow.remote.worker``.

A long-lived TCP server that executes dataflow stages for a
:class:`~repro.dataflow.remote.client.RemoteExecutor`.  Each driver
connection gets its own handler thread with its own state — the cached
broadcast blobs and the current stage function — so several executors
(e.g. the differential test matrix) can share one worker daemon without
stepping on each other.

Per connection the protocol is strictly driver-paced (see
:mod:`~repro.dataflow.remote.protocol`): blobs and the stage payload
arrive without replies, and every task produces exactly one
``MSG_RESULT``/``MSG_ERROR`` reply.  While a task computes, the handler
emits ``MSG_HEARTBEAT`` frames every ``--heartbeat-interval`` seconds so
the driver can distinguish a long-running shard from a dead worker
without imposing a task deadline.

Worker-to-worker shuffle: a ``MSG_TASK_SHUF`` write task leaves its
buckets in the *daemon-wide* bucket store (shared across connections —
peers arrive on fresh connections), serialized once at write time;
``MSG_FETCH_BUCKET`` serves those bytes to any peer (or to the driver's
fault fallback), and a ``MSG_TASK_SHUF_READ`` task fetches its assigned
parts, merges them in input-shard order (bit-identical to the driver's
``merge_bucket_parts``), and runs the read stage in place — the driver
sees routing metadata and final results, never bucket data.

Shutdown is graceful by default: ``(MSG_SHUTDOWN,)`` closes the listener
and drains every connection's in-flight task before exiting, so other
connected drivers lose the daemon between tasks, never mid-shard.
``(MSG_SHUTDOWN, True)`` keeps the abrupt ``os._exit`` for force kills.

On start the daemon prints exactly one line to stdout::

    REPRO_WORKER_READY <host> <port>

which is how :class:`~repro.dataflow.remote.cluster.LocalCluster`
discovers the ephemeral port of an auto-spawned worker (``--port 0``).

Spilled-shard caveat: a shard may arrive as a
:class:`~repro.dataflow.pcollection._DiskShard`, whose ``load()`` reads a
driver-local path — valid for localhost workers (the supported
auto-spawn deployment) and for clusters with a shared filesystem; drivers
targeting true remote hosts without one should resolve shards before
shipping (``RemoteExecutor(resolve_before_send=True)``).
"""

from __future__ import annotations

import argparse
import os
import queue
import socket
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.dataflow.columnar import merge_bucket_parts
from repro.dataflow.executor import _resolve, load_blob, loads_with_broadcast
from repro.dataflow.remote import protocol
from repro.dataflow.remote.protocol import (
    DEFAULT_BUCKET_CHUNK_BYTES,
    FETCH_FAILED,
    MSG_BLOB,
    MSG_BUCKET,
    MSG_BUCKET_CHUNK,
    MSG_BYE,
    MSG_ERROR,
    MSG_EVICT_BLOBS,
    MSG_EVICT_BUCKETS,
    MSG_FETCH_BUCKET,
    MSG_HEARTBEAT,
    MSG_PING,
    MSG_PONG,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_STAGE,
    MSG_TASK,
    MSG_TASK_COL,
    MSG_TASK_SHUF,
    MSG_TASK_SHUF_READ,
)

from repro.dataflow.columnar import ColumnarShard


def _fetch_peer_buckets(
    host: str, port: int, bucket_ids: List[str]
) -> Tuple[Dict[str, Optional[bytes]], int]:
    """Fetch several buckets from one peer daemon over a fresh connection.

    Returns ``(id → serialized bytes, chunk_frames)`` — the value is
    ``None`` when the peer no longer holds the bucket, and
    ``chunk_frames`` counts the bounded ``MSG_BUCKET_CHUNK`` frames
    received for buckets large enough to stream in pieces (single-frame
    ``MSG_BUCKET`` replies add nothing).  Connection errors propagate —
    the caller turns them into a ``FETCH_FAILED`` reply so the driver
    can fall back.
    """
    sock = socket.create_connection((host, port), timeout=30.0)
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        out: Dict[str, Optional[bytes]] = {}
        chunk_frames = 0
        for bucket_id in bucket_ids:
            protocol.send_msg(sock, (MSG_FETCH_BUCKET, bucket_id))
            reply = protocol.recv_msg(sock)
            if reply[0] == MSG_BUCKET and reply[1] == bucket_id:
                out[bucket_id] = reply[2]
                continue
            if reply[0] != MSG_BUCKET_CHUNK or reply[1] != bucket_id:
                raise ConnectionError("bucket fetch protocol violation")
            pieces: List[bytes] = []
            while True:
                if (
                    reply[0] != MSG_BUCKET_CHUNK
                    or reply[1] != bucket_id
                    or reply[2] != len(pieces)
                ):
                    raise ConnectionError(
                        "bucket chunk sequence protocol violation"
                    )
                pieces.append(reply[4])
                chunk_frames += 1
                if len(pieces) == reply[3]:
                    break
                reply = protocol.recv_msg(sock)
            out[bucket_id] = b"".join(pieces)
        try:
            protocol.send_msg(sock, (MSG_BYE,))
        except OSError:
            pass
        return out, chunk_frames
    finally:
        sock.close()


class WorkerServer:
    """Accept loop plus one handler thread per driver connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 1.0,
        bucket_chunk_bytes: Optional[int] = DEFAULT_BUCKET_CHUNK_BYTES,
    ) -> None:
        self.heartbeat_interval = float(heartbeat_interval)
        #: Serve a stored bucket larger than this in bounded
        #: ``MSG_BUCKET_CHUNK`` frames instead of one giant ``MSG_BUCKET``
        #: frame (``None`` disables chunking).
        self.bucket_chunk_bytes = (
            None if bucket_chunk_bytes is None else int(bucket_chunk_bytes)
        )
        if self.bucket_chunk_bytes is not None and self.bucket_chunk_bytes < 1:
            raise ValueError(
                "bucket_chunk_bytes must be >= 1 or None, got "
                f"{bucket_chunk_bytes}"
            )
        self._listener = socket.create_server((host, int(port)))
        self.host, self.port = self._listener.getsockname()[:2]
        #: Daemon-wide bucket store: ``"<exchange>/<input>/<dest>" ->
        #: serialized bucket`` — shared across connections because peers
        #: (and the driver's fault fallback) fetch over fresh connections.
        self._buckets: Dict[str, bytes] = {}
        self._buckets_lock = threading.Lock()
        #: In-flight task count across every connection, so a graceful
        #: shutdown can drain to a task boundary before exiting.
        self._active_tasks = 0
        self._drain = threading.Condition()
        self._shutting_down = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:  # pragma: no cover - run in subprocess
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by a graceful shutdown
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def close(self) -> None:
        self._listener.close()

    # -- bucket store ------------------------------------------------------

    def store_bucket(self, bucket_id: str, payload: bytes) -> None:
        with self._buckets_lock:
            self._buckets[bucket_id] = payload

    def get_bucket(self, bucket_id: str) -> Optional[bytes]:
        with self._buckets_lock:
            return self._buckets.get(bucket_id)

    def evict_exchange(self, exchange_id: str) -> None:
        prefix = exchange_id + "/"
        with self._buckets_lock:
            for key in [k for k in self._buckets if k.startswith(prefix)]:
                del self._buckets[key]

    def bucket_store_bytes(self) -> int:
        with self._buckets_lock:
            return sum(len(v) for v in self._buckets.values())

    def _send_bucket(self, sock: socket.socket, bucket_id: str) -> None:
        """Answer one ``MSG_FETCH_BUCKET``: a single frame for small (or
        missing) payloads, bounded ``MSG_BUCKET_CHUNK`` frames otherwise."""
        payload = self.get_bucket(bucket_id)
        limit = self.bucket_chunk_bytes
        if payload is None or limit is None or len(payload) <= limit:
            protocol.send_msg(sock, (MSG_BUCKET, bucket_id, payload))
            return
        n_chunks = -(-len(payload) // limit)
        for seq in range(n_chunks):
            protocol.send_msg(
                sock,
                (
                    MSG_BUCKET_CHUNK,
                    bucket_id,
                    seq,
                    n_chunks,
                    payload[seq * limit:(seq + 1) * limit],
                ),
            )

    # -- shutdown ----------------------------------------------------------

    def _graceful_shutdown(self) -> None:
        """Close the listener, drain in-flight tasks, then exit.

        Idempotent; the caller's connection handler returns right after
        initiating, so its driver sees the channel close promptly.
        """
        with self._drain:
            if self._shutting_down:
                return
            self._shutting_down = True
        self.close()

        def drain_and_exit() -> None:
            with self._drain:
                while self._active_tasks > 0:
                    self._drain.wait()
            os._exit(0)

        threading.Thread(target=drain_and_exit, daemon=True).start()

    # -- per-connection state machine -------------------------------------

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        blobs: Dict[str, Any] = {}
        fn = None
        fn_error: Optional[str] = None
        try:
            while True:
                message = protocol.recv_msg(sock)
                tag = message[0]
                if tag == MSG_PING:
                    protocol.send_msg(sock, (MSG_PONG,))
                elif tag == MSG_BLOB:
                    try:
                        blobs[message[1]] = load_blob(message[2])
                    except BaseException:
                        # Leave the digest unresolved; the stage payload
                        # referencing it fails to load, which surfaces as
                        # a task error with a real traceback.
                        blobs.pop(message[1], None)
                elif tag == MSG_EVICT_BLOBS:
                    if message[1] is None:
                        blobs.clear()
                    else:
                        for digest in message[1]:
                            blobs.pop(digest, None)
                elif tag == MSG_STAGE:
                    try:
                        fn = loads_with_broadcast(message[1], blobs)
                        fn_error = None
                    except BaseException:
                        fn, fn_error = None, traceback.format_exc()
                elif tag == MSG_TASK:
                    self._run_task(
                        sock,
                        message[1],
                        self._make_plain_work(fn, fn_error, message[2]),
                    )
                elif tag == MSG_TASK_COL:
                    # Columnar task: the shard's ndarray columns are blob
                    # references against this channel's cache.  A resolve
                    # failure is this task's (one and only) error reply,
                    # keeping the channel in lockstep.
                    try:
                        shard = loads_with_broadcast(message[2], blobs)
                    except BaseException:
                        protocol.send_frame(
                            sock,
                            protocol.dumps(
                                (
                                    MSG_ERROR,
                                    message[1],
                                    None,
                                    "columnar task payload failed to "
                                    "load on the worker:\n"
                                    + traceback.format_exc(),
                                )
                            ),
                        )
                    else:
                        self._run_task(
                            sock,
                            message[1],
                            self._make_plain_work(fn, fn_error, shard),
                        )
                elif tag == MSG_TASK_SHUF:
                    self._run_task(
                        sock,
                        message[1],
                        self._make_shuffle_write_work(
                            fn, fn_error,
                            message[1], message[2], message[3], message[4],
                        ),
                    )
                elif tag == MSG_TASK_SHUF_READ:
                    self._run_task(
                        sock,
                        message[1],
                        self._make_shuffle_read_work(
                            fn, fn_error, message[2]
                        ),
                    )
                elif tag == MSG_FETCH_BUCKET:
                    self._send_bucket(sock, message[1])
                elif tag == MSG_EVICT_BUCKETS:
                    self.evict_exchange(message[1])
                elif tag == MSG_BYE:
                    return
                elif tag == MSG_SHUTDOWN:
                    if len(message) > 1 and message[1]:
                        os._exit(0)
                    self._graceful_shutdown()
                    return
                else:
                    return  # protocol violation: drop the channel
        except (ConnectionError, OSError):
            return
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    # -- task bodies (run inside the heartbeating compute thread) ----------

    @staticmethod
    def _check_fn(fn, fn_error):
        if fn_error is not None:
            raise RuntimeError(
                "stage function failed to deserialize on the "
                f"worker:\n{fn_error}"
            )
        return fn

    def _make_plain_work(self, fn, fn_error, shard):
        def work() -> Any:
            return self._check_fn(fn, fn_error)(_resolve(shard))

        return work

    def _make_shuffle_write_work(
        self, fn, fn_error, index: int, exchange_id: str, combine: bool, shard
    ):
        """Run the bucketer, park the buckets locally, return their metas."""

        def work() -> Any:
            out = self._check_fn(fn, fn_error)(_resolve(shard))
            extra: Optional[int] = None
            if combine:
                extra, buckets = out
            else:
                buckets = out
            metas: List[Tuple[int, int, int]] = []
            for dest, bucket in enumerate(buckets):
                n = len(bucket)
                if not n:
                    continue
                payload = protocol.dumps(bucket)
                self.store_bucket(f"{exchange_id}/{index}/{dest}", payload)
                metas.append((dest, n, len(payload)))
            return extra, metas

        return work

    def _make_shuffle_read_work(self, fn, fn_error, sources):
        """Fetch the assigned bucket parts, merge in input order, read."""

        def work() -> Any:
            read_fn = self._check_fn(fn, fn_error)
            # Group the peer parts by producer so each peer costs one
            # connection; own-daemon parts are served from the local store.
            by_peer: Dict[Tuple[str, int], List[str]] = {}
            for source in sources:
                if source[0] == "peer":
                    _, host, port, bucket_id = source
                    if not (host == self.host and port == self.port):
                        by_peer.setdefault((host, port), []).append(bucket_id)
            fetched: Dict[str, Optional[bytes]] = {}
            fetch_chunks = 0
            for (host, port), ids in by_peer.items():
                try:
                    got, n_chunks = _fetch_peer_buckets(host, port, ids)
                except (ConnectionError, OSError) as exc:
                    return (FETCH_FAILED, f"{host}:{port}: {exc}")
                fetched.update(got)
                fetch_chunks += n_chunks
            parts: List[Any] = []
            p2p_bytes = 0
            local_bytes = 0
            for source in sources:
                if source[0] == "inline":
                    payload = source[1]
                    parts.append(protocol.loads(payload))
                    continue
                _, host, port, bucket_id = source
                if host == self.host and port == self.port:
                    payload = self.get_bucket(bucket_id)
                    if payload is None:
                        return (FETCH_FAILED, f"local bucket {bucket_id} gone")
                    local_bytes += len(payload)
                else:
                    payload = fetched.get(bucket_id)
                    if payload is None:
                        return (
                            FETCH_FAILED,
                            f"{host}:{port} no longer holds {bucket_id}",
                        )
                    p2p_bytes += len(payload)
                parts.append(protocol.loads(payload))
            merged = merge_bucket_parts(parts)
            n_merged = len(merged)
            merged_columnar = isinstance(merged, ColumnarShard)
            value = read_fn(merged)
            return (
                value, n_merged, merged_columnar, p2p_bytes, local_bytes,
                fetch_chunks,
            )

        return work

    def _run_task(self, sock: socket.socket, index: int, work) -> None:
        """Compute one task in a thread, heartbeating until it finishes."""
        box: "queue.Queue[tuple]" = queue.Queue(maxsize=1)
        with self._drain:
            self._active_tasks += 1

        def compute() -> None:
            try:
                box.put((MSG_RESULT, index, work()))
            except BaseException as exc:
                box.put((MSG_ERROR, index, exc, traceback.format_exc()))

        thread = threading.Thread(target=compute, daemon=True)
        thread.start()
        try:
            while True:
                try:
                    reply = box.get(timeout=self.heartbeat_interval)
                    break
                except queue.Empty:
                    protocol.send_msg(sock, (MSG_HEARTBEAT,))
            try:
                payload = protocol.dumps(reply)
            except Exception:
                # Unpicklable result or exception object: ship the traceback.
                if reply[0] == MSG_ERROR:
                    payload = protocol.dumps((MSG_ERROR, index, None, reply[3]))
                else:
                    payload = protocol.dumps(
                        (
                            MSG_ERROR,
                            index,
                            None,
                            "task result failed to serialize:\n"
                            + traceback.format_exc(),
                        )
                    )
            protocol.send_frame(sock, payload)
        finally:
            with self._drain:
                self._active_tasks -= 1
                self._drain.notify_all()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.dataflow.remote.worker",
        description="long-lived dataflow worker daemon (length-prefixed "
        "cloudpickle frames over TCP)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: loopback)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port; 0 picks an ephemeral port, "
                             "announced on stdout")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between liveness frames while a "
                             "task computes")
    parser.add_argument("--bucket-chunk-bytes", type=int,
                        default=DEFAULT_BUCKET_CHUNK_BYTES,
                        help="serve stored shuffle buckets larger than this "
                             "in bounded MSG_BUCKET_CHUNK frames; 0 disables "
                             "chunking")
    args = parser.parse_args(argv)
    server = WorkerServer(
        args.host, args.port, heartbeat_interval=args.heartbeat_interval,
        bucket_chunk_bytes=args.bucket_chunk_bytes or None,
    )
    print(f"REPRO_WORKER_READY {server.host} {server.port}", flush=True)
    server.serve_forever()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via LocalCluster
    raise SystemExit(main())
