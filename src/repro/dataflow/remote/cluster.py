"""Spawn and manage localhost worker daemons.

:class:`LocalCluster` launches ``n_workers`` copies of ``python -m
repro.dataflow.remote.worker`` on ephemeral loopback ports, waits for
each daemon's ``REPRO_WORKER_READY`` line, and exposes their addresses.
It backs two use cases:

- ``RemoteExecutor()`` / ``--executor remote`` with no address list
  auto-spawns a private cluster and tears it down with the executor —
  the zero-configuration path that makes ``num_shards`` real worker
  processes;
- tests share one cluster across many executors (workers serve each
  driver connection independently).

Workers are separate OS processes (not forks): they import the engine
fresh, exactly like a daemon started by hand on another machine, so the
localhost cluster exercises the same serialization and broadcast paths a
multi-host deployment would.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from typing import List, Optional, Tuple


def _worker_env() -> dict:
    """Child environment with the engine's source tree importable."""
    env = dict(os.environ)
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class LocalCluster:
    """A set of auto-spawned localhost worker daemons.

    Parameters
    ----------
    n_workers:
        Daemon count (each is one OS process serving one task at a time
        per driver channel).
    heartbeat_interval:
        Passed through to each worker (seconds between liveness frames
        during a long task).
    startup_timeout:
        Seconds to wait for each worker's ready line before giving up.
    bucket_chunk_bytes:
        Passed through as each worker's ``--bucket-chunk-bytes`` (the
        per-frame cap on served shuffle buckets); ``None`` keeps the
        worker default.
    """

    def __init__(
        self,
        n_workers: int = 2,
        *,
        heartbeat_interval: float = 1.0,
        startup_timeout: float = 60.0,
        bucket_chunk_bytes: "int | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.addresses: List[Tuple[str, int]] = []
        self._procs: List[subprocess.Popen] = []
        self._heartbeat_interval = float(heartbeat_interval)
        self._startup_timeout = float(startup_timeout)
        self._bucket_chunk_bytes = bucket_chunk_bytes
        try:
            procs = [self._spawn_proc() for _ in range(int(n_workers))]
            for proc in procs:
                self.addresses.append(
                    self._read_ready_line(proc, self._startup_timeout)
                )
        except BaseException:
            self.terminate()
            raise

    def _spawn_proc(self) -> subprocess.Popen:
        argv = [
            sys.executable,
            "-m",
            "repro.dataflow.remote.worker",
            "--host", "127.0.0.1",
            "--port", "0",
            "--heartbeat-interval", str(self._heartbeat_interval),
        ]
        if self._bucket_chunk_bytes is not None:
            argv += ["--bucket-chunk-bytes", str(self._bucket_chunk_bytes)]
        proc = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            env=_worker_env(),
        )
        self._procs.append(proc)
        return proc

    def spawn(self) -> Tuple[str, int]:
        """Start one more worker daemon and return its ``(host, port)``.

        The elastic-membership companion to
        :meth:`RemoteExecutor.add_worker`: spawn a daemon here, then hand
        its address to a running executor to grow the task pool
        mid-drive.  The new worker is owned by this cluster and dies
        with :meth:`terminate` like the initial ones.
        """
        proc = self._spawn_proc()
        try:
            address = self._read_ready_line(proc, self._startup_timeout)
        except BaseException:
            self._procs.remove(proc)
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)
            if proc.stdout is not None:
                proc.stdout.close()
            raise
        self.addresses.append(address)
        return address

    @staticmethod
    def _read_ready_line(
        proc: subprocess.Popen, timeout: float
    ) -> Tuple[str, int]:
        """Block (bounded) until the worker announces its bound port."""
        holder: List[bytes] = []

        def read() -> None:
            holder.append(proc.stdout.readline())

        reader = threading.Thread(target=read, daemon=True)
        reader.start()
        reader.join(timeout)
        if reader.is_alive() or not holder or not holder[0]:
            raise RuntimeError(
                "worker daemon failed to start "
                f"(pid {proc.pid}, exit code {proc.poll()})"
            )
        parts = holder[0].decode().split()
        if len(parts) != 3 or parts[0] != "REPRO_WORKER_READY":
            raise RuntimeError(
                f"unexpected worker banner: {holder[0]!r}"
            )
        return parts[1], int(parts[2])

    @property
    def pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    def terminate(self) -> None:
        """Stop every worker (SIGTERM, then SIGKILL).  Idempotent."""
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                proc.kill()
                proc.wait(timeout=5)
            if proc.stdout is not None:
                proc.stdout.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()
