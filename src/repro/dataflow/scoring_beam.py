"""Distributed subset scoring (Sec. 5, "Scoring").

Computes ``f(S)`` without holding ``S`` on any machine: fan out the neighbor
graph, join against the solution to keep edges whose *neighbor* endpoint is
selected, invert, join against the solution again to keep edges whose
*source* endpoint is selected, reduce to a per-point score, and sum — "our
function is decomposable".
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.core.distributed import fingerprint, problem_fingerprint
from repro.core.problem import SubsetProblem
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import Pipeline
from repro.dataflow.transforms import cogroup, sum_globally


def beam_score(
    problem: SubsetProblem,
    subset_ids: np.ndarray,
    *,
    num_shards: int = 8,
    executor="sequential",
    spill_to_disk: bool = False,
    optimize: "bool | None" = None,
    stream_source: bool = True,
    checkpoint_dir: "str | None" = None,
) -> Tuple[float, PipelineMetrics]:
    """Distributed evaluation of the pairwise submodular objective.

    Returns ``(f(S), metrics)``; the metrics witness that no shard held more
    than ~``(n + nnz) / num_shards`` records.  The graph/utility/solution
    sources are generator-fed and stream in bounded chunks by default
    (``stream_source=False`` forces eager ingest); ``optimize`` toggles
    the plan optimizer (cogroup write-side fusion, reshard elision,
    post-shuffle fusion of the join consumers).  ``checkpoint_dir``
    persists the join boundaries keyed by a plan digest salted with the
    problem and subset contents, so a rerun of the same scoring job skips
    completed stages.
    """
    subset_ids = np.asarray(subset_ids, dtype=np.int64)
    if subset_ids.size and (
        subset_ids.min() < 0 or subset_ids.max() >= problem.n
    ):
        raise ValueError("subset ids out of range")
    checkpoint_salt = None
    if checkpoint_dir is not None:
        checkpoint_salt = fingerprint(
            "score-sources", problem_fingerprint(problem), subset_ids
        )
    pipeline = Pipeline(
        num_shards, executor=executor, spill_to_disk=spill_to_disk,
        optimize=optimize,
        checkpoint_dir=checkpoint_dir, checkpoint_salt=checkpoint_salt,
    )
    stream = bool(stream_source)
    g = problem.graph
    try:
        neighbors = pipeline.create_keyed(
            (
                (v, list(zip(g.indices[g.indptr[v]:g.indptr[v + 1]].tolist(),
                             g.weights[g.indptr[v]:g.indptr[v + 1]].tolist())))
                for v in range(g.n)
            ),
            name="score/neighbors",
            stream=stream,
        )
        utilities = pipeline.create_keyed(
            ((v, float(problem.utilities[v])) for v in range(problem.n)),
            name="score/utilities",
            stream=stream,
        )
        solution = pipeline.create_keyed(
            ((int(v), True) for v in subset_ids), name="score/solution",
            stream=stream,
        )

        # Unary term: utilities of selected points.
        unary = cogroup([utilities, solution], name="score/unary_join").flat_map(
            lambda kv: [kv[1][0][0]] if kv[1][1] else [], name="score/unary"
        )
        unary_sum = sum_globally(unary)

        # Pairwise term.  Fan out keyed by the neighbor endpoint, keep edges
        # whose neighbor is selected, invert, keep edges whose source is
        # selected; each surviving (a, b, s) has both endpoints in S.
        fanned = neighbors.flat_map(
            lambda kv: [(b, (kv[0], s)) for b, s in kv[1]], name="score/fan_out"
        ).as_keyed(name="score/fan_out_key")

        def keep_selected_neighbor(kv) -> Iterable[Tuple[int, float]]:
            a, (edges, in_solution) = kv
            if not in_solution:
                return []
            return [(b, s) for b, s in edges]

        half_edges = cogroup([fanned, solution], name="score/neighbor_join").flat_map(
            keep_selected_neighbor, name="score/invert"
        ).as_keyed(name="score/invert_key")

        def per_point_mass(kv) -> Iterable[float]:
            b, (sims, in_solution) = kv
            if not in_solution:
                return []
            return [float(sum(sims))]

        pair_mass = cogroup([half_edges, solution], name="score/source_join").flat_map(
            per_point_mass, name="score/per_point"
        )
        # Symmetric CSR double-counts each undirected edge.
        pairwise_sum = sum_globally(pair_mass) / 2.0

        score = problem.alpha * unary_sum - problem.beta * pairwise_sum
        return float(score), pipeline.metrics
    finally:
        pipeline.close()
