"""Distributed subset scoring (Sec. 5, "Scoring").

Computes ``f(S)`` without holding ``S`` on any machine: fan out the neighbor
graph, join against the solution to keep edges whose *neighbor* endpoint is
selected, invert, join against the solution again to keep edges whose
*source* endpoint is selected, reduce to a per-point score, and sum — "our
function is decomposable".  The pairwise chain is packaged as the
:class:`SelectedEdgeMass` composite, so ``explain()`` renders it as one
named group.

Engine configuration is one :class:`~repro.dataflow.options.EngineOptions`
(``options=``) or a shared :class:`~repro.dataflow.options.DataflowContext`
(``context=``).  This beam streams its graph/utility/solution generators
by default (``options.stream_source=None``); the old per-call engine
keywords are deprecated shims.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.distributed import fingerprint, problem_fingerprint
from repro.core.problem import SubsetProblem
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.options import (
    UNSET,
    DataflowContext,
    EngineOptions,
    engine_context,
    legacy_engine_options,
)
from repro.dataflow.pcollection import PCollection, PTransform
from repro.dataflow.transforms import cogroup, sum_globally


class SelectedEdgeMass(PTransform):
    """Per-point pairwise mass restricted to a selected subset.

    Input: the keyed neighbor lists ``(v, [(neighbor, weight), ...])``.
    Output: one float per selected point — the summed weight of its edges
    whose *both* endpoints are selected.  Two membership joins against the
    solution (no machine ever holds the subset as a lookup table).
    """

    def __init__(self, solution: PCollection, *, name: str = "SelectedEdgeMass") -> None:
        super().__init__(name)
        self.solution = solution

    def expand(self, neighbors: PCollection) -> PCollection:
        solution = self.solution
        fanned = neighbors.flat_map(
            lambda kv: [(b, (kv[0], s)) for b, s in kv[1]], name="score/fan_out"
        ).as_keyed(name="score/fan_out_key")

        def keep_selected_neighbor(kv) -> Iterable[Tuple[int, float]]:
            a, (edges, in_solution) = kv
            if not in_solution:
                return []
            return [(b, s) for b, s in edges]

        half_edges = cogroup(
            [fanned, solution], name="score/neighbor_join"
        ).flat_map(
            keep_selected_neighbor, name="score/invert"
        ).as_keyed(name="score/invert_key")

        def per_point_mass(kv) -> Iterable[float]:
            b, (sims, in_solution) = kv
            if not in_solution:
                return []
            return [float(sum(sims))]

        return cogroup(
            [half_edges, solution], name="score/source_join"
        ).flat_map(per_point_mass, name="score/per_point")


def beam_score(
    problem: SubsetProblem,
    subset_ids: np.ndarray,
    *,
    options: Optional[EngineOptions] = None,
    context: Optional[DataflowContext] = None,
    num_shards=UNSET,
    executor=UNSET,
    spill_to_disk=UNSET,
    optimize=UNSET,
    stream_source=UNSET,
    checkpoint_dir=UNSET,
) -> Tuple[float, PipelineMetrics]:
    """Distributed evaluation of the pairwise submodular objective.

    Returns ``(f(S), metrics)``; the metrics witness that no shard held more
    than ~``(n + nnz) / num_shards`` records.  Engine knobs live on
    ``options`` (or a shared ``context``); with a checkpoint directory the
    join boundaries key on a plan digest salted with the problem and
    subset contents, so a rerun of the same scoring job skips completed
    stages.
    """
    options = legacy_engine_options(
        {
            "num_shards": num_shards, "executor": executor,
            "spill_to_disk": spill_to_disk, "optimize": optimize,
            "stream_source": stream_source, "checkpoint_dir": checkpoint_dir,
        },
        options=options, context=context, api="beam_score",
    )
    subset_ids = np.asarray(subset_ids, dtype=np.int64)
    if subset_ids.size and (
        subset_ids.min() < 0 or subset_ids.max() >= problem.n
    ):
        raise ValueError("subset ids out of range")
    g = problem.graph
    with engine_context(options, context) as ctx:
        opts = ctx.options
        # Input-size hint for the adaptive planner's cost gates.
        pipeline_overrides = {"plan_records": int(problem.n)}
        if opts.checkpoint_dir is not None:
            pipeline_overrides["checkpoint_salt"] = fingerprint(
                "score-sources", problem_fingerprint(problem), subset_ids
            )
        pipeline = ctx.pipeline(**pipeline_overrides)
        stream = opts.resolve_stream(True)
        try:
            neighbors = pipeline.create_keyed(
                (
                    (v, list(zip(g.indices[g.indptr[v]:g.indptr[v + 1]].tolist(),
                                 g.weights[g.indptr[v]:g.indptr[v + 1]].tolist())))
                    for v in range(g.n)
                ),
                name="score/neighbors",
                stream=stream,
            )
            utilities = pipeline.create_keyed(
                ((v, float(problem.utilities[v])) for v in range(problem.n)),
                name="score/utilities",
                stream=stream,
            )
            solution = pipeline.create_keyed(
                ((int(v), True) for v in subset_ids), name="score/solution",
                stream=stream,
            )

            # Unary term: utilities of selected points.
            unary = cogroup(
                [utilities, solution], name="score/unary_join"
            ).flat_map(
                lambda kv: [kv[1][0][0]] if kv[1][1] else [], name="score/unary"
            )
            unary_sum = sum_globally(unary)

            # Pairwise term; the symmetric CSR double-counts each
            # undirected edge.
            pair_mass = neighbors.apply(SelectedEdgeMass(solution))
            pairwise_sum = sum_globally(pair_mass) / 2.0

            score = problem.alpha * unary_sum - problem.beta * pairwise_sum
            return float(score), pipeline.metrics
        finally:
            pipeline.close()
