"""PCollection and Pipeline: the core of the Beam-like engine.

A :class:`PCollection` is an immutable, sharded bag of elements.  Keyed
elements are ``(key, value)`` tuples; shuffles route by a stable hash of the
key so all engine semantics match Beam's (per-key grouping is total,
cross-key ordering is unspecified).

Execution model
---------------
Transforms are **lazy**: ``map``/``flat_map``/``filter``/``key_by``/
``group_by_key``/``combine_per_key``/``reshuffle`` build nodes in an operator
DAG instead of executing.  Work happens only at *sinks* — :meth:`PCollection.
count`, :meth:`~PCollection.to_list`, :meth:`~PCollection.iter_shards`,
:meth:`~PCollection.combine_globally`, and the explicit :meth:`~PCollection.
run`/:meth:`~PCollection.cache`.  At a sink the engine:

1. runs the **plan optimizer** (``optimize=True``, the default) over the
   DAG below the sink — see *Plan optimization* below,
2. walks the DAG up to materialized ancestors,
3. *fuses* adjacent element-wise stages (and element-wise producers of a
   shuffle write) into a single generator pass over each shard
   (``metrics.fused_stages`` counts the stages eliminated),
4. hands each physical stage's per-shard work to the pipeline's
   :class:`~repro.dataflow.executor.Executor` (sequential, shard-parallel
   threads, or a persistent pool of worker processes),
5. caches the materialized shards on the node and truncates its lineage, so
   dropped intermediates are freed exactly like the old eager engine.

Plan optimization
-----------------
With ``optimize=True`` three rewrites run between DAG construction and
execution (``optimize=False`` — the CLI's ``--no-optimize`` — reproduces
the naive plan exactly):

*Combiner lifting*
    ``group_by_key().map_values(fold)`` where ``fold`` is a declared
    :class:`Fold` rewrites to ``combine_per_key``: each input shard
    pre-aggregates locally and only per-key accumulators shuffle.  The
    ``Fold`` contract (associative ``add``/``merge``, as in Beam's
    CombineFn) is the user's promise that regrouping is value-preserving.
    Counted in ``metrics.lifted_combiners``; ``pre_shuffle_records`` vs
    ``shuffled_records`` witnesses the saved volume.

*Redundant-shuffle elision*
    A ``key_by``/``as_keyed`` reshard whose only consumer is a downstream
    grouping shuffle (``group_by_key``/``combine_per_key``/``cogroup``) is
    skipped — the grouping op routes by the same key anyway, so records
    cross the network once instead of twice.  Only key-preserving stages
    (``filter``/``map_values``) may sit between the two, which is what the
    keyed type system allows; per-shard order is unchanged (routing a
    key-routed shard is the identity), so results are bit-identical.
    Counted in ``metrics.elided_shuffles``.

*Post-shuffle fusion*
    Element-wise consumers of a shuffle *read* (``group_by_key``,
    ``combine_per_key``, ``cogroup``, ``flatten``) fuse into the read
    stage, so ``group_by_key().flat_map(fn)`` executes as one physical
    stage and the grouped intermediate never exists as a stored shard.
    (Pre-shuffle producers already fused into the shuffle write; cogroup
    inputs gain the same write-side fusion under ``optimize``.)

:meth:`PCollection.explain` renders the optimized physical plan without
executing it (golden-plan tests pin the rewrites).

Sharing: materialized nodes execute once, and fusion stops at any
element-wise node that already has multiple consumers, materializing it
instead.  The one lazy-engine caveat (same as Spark's uncached-RDD
semantics): an element-wise intermediate that was fused through — because
it had a single consumer at the time — is not cached, so a *new* consumer
derived after that sink re-runs its chain.  DoFns are pure throughout this
codebase, so results never change; call :meth:`PCollection.cache` on an
intermediate you will fan out from later to pin it.

Streaming sources: :meth:`Pipeline.create`/:meth:`Pipeline.create_keyed`
accept any iterable.  Generators and other bare iterators (anything that
is not a materialized ``Collection``) shard lazily in bounded chunks of
``stream_chunk_size`` records — with
``spill_to_disk`` the driver never holds more than one chunk of the input,
so the ground set is never materialized driver-side.  Chunked sharding
reproduces eager sharding's placement and order exactly, so results are
bit-identical; ``stream=True/False`` overrides the auto-detection.

Spilling (``spill_to_disk=True``) happens only at materialization
boundaries: fused intermediates never touch storage, and one shard is
resident at a time under the sequential backend (one per worker under the
multiprocess backend).

Checkpointing (``checkpoint_dir=...``) also happens only at
materialization boundaries: every boundary output is persisted keyed by a
deterministic *plan digest* — a recursive content hash over the physical
subplan that produced it (operator kinds, names, serialized DoFns, shard
count, and source contents; streaming sources, whose contents cannot be
hashed without consuming them, are keyed by the caller-supplied
``checkpoint_salt`` instead).  A rerun of the same plan over the same
inputs finds the digest on disk and skips the whole subtree — which is
how a killed bounding drive resumes from its last completed stage
(``metrics.checkpoint_hits`` / ``checkpoint_stores``).  Because the
digest covers everything that determines the boundary's bit-exact
output, differently-configured runs (other data, seeds, shard counts, or
DoFns) can safely share one checkpoint directory; plans that the
optimizer rewrites differently simply key different boundaries, and a
hit may legally cross ``optimize`` settings since backends and plans are
bit-identical.  A node whose DoFn or source cannot be serialized
deterministically is silently non-checkpointable (it and its descendants
always execute).

Metrics semantics: ``stage_counts`` are recorded when transforms are
*built* (identical to the eager engine), ``shuffled_records`` /
``materialized_records`` when they execute.  With ``fuse=False``,
``optimize=False``, and the sequential executor, all counters — including
``peak_shard_records`` — are byte-identical to the historical eager
engine; fusion and optimization can only lower ``peak_shard_records`` and
``shuffled_records`` because fused intermediates never exist as shards and
elided shuffles never move records.

There is intentionally no operation that hands a whole PCollection to user
code; :meth:`PCollection.to_list` is the explicit test-only escape hatch and
records itself in the metrics.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import re
import shutil
import tempfile
import time
import uuid
import weakref
from collections.abc import Collection
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.dataflow.columnar import (
    BatchDoFn,
    ColumnarShard,
    as_records,
    batch_prefix_len,
    bucket_keyed_items,
    merge_bucket_parts,
    route_columnar,
    run_batch_prefix,
)
from repro.dataflow.columnar import stable_shard as _stable_shard
from repro.dataflow.executor import (
    Executor,
    _dumps_payload,
    _resolve,
    resolve_executor,
)
from repro.dataflow.metrics import PipelineMetrics, StageProfile

#: Module default for ``Pipeline(optimize=None)``.  The test harness flips
#: this via the ``--no-optimize`` pytest option so the whole tier-1 suite
#: can run against the naive plan.
DEFAULT_OPTIMIZE = True

#: Module default for ``Pipeline(columnar=None)`` — the "auto" setting of
#: the columnar runtime: on, which means *on where vectorized
#: implementations exist* (batch execution only ever fires on ops declared
#: as :class:`~repro.dataflow.columnar.BatchDoFn` / ``Fold(batch=...)``;
#: plain callables always run the row path).  The test harness flips this
#: via the ``--no-columnar`` pytest option so the whole tier-1 suite can
#: run against the pure row runtime.
DEFAULT_COLUMNAR = True

#: Module default for ``Pipeline(shuffle=None)`` — the shuffle data
#: plane: ``"driver"`` merges buckets on the driver (the historical star
#: topology), ``"worker"`` exchanges them worker-to-worker on executors
#: that implement ``run_exchange`` (the remote backend), with the driver
#: path kept as the fault fallback.  The test harness flips this via the
#: ``--worker-shuffle`` pytest option; results are bit-identical.
DEFAULT_SHUFFLE = "driver"


class Fold:
    """A declared per-key reduction — the unit of combiner lifting.

    ``zero()`` makes a fresh accumulator, ``add(acc, value)`` folds one
    value in, ``merge(a, b)`` combines two accumulators (defaults to
    ``add``, which is correct whenever accumulators and values share a
    type, e.g. sums).  Declaring the reduction is the user's promise that
    ``add``/``merge`` are associative — Beam's CombineFn contract — which
    lets the optimizer rewrite ``group_by_key().map_values(fold)`` into
    ``combine_per_key`` with pre-shuffle partial aggregation.

    A ``Fold`` is also a plain callable over a grouped value list, so the
    unoptimized plan (``optimize=False``) applies it directly to the
    output of ``group_by_key`` with identical results.

    ``batch`` optionally declares a whole-list (vectorized)
    implementation: ``batch(values)`` must equal folding ``add`` over
    ``values`` from ``zero()`` — bit-identically, value order respected.
    Under the columnar runtime the lifted combiner's pre-combine stage
    applies ``batch`` once per key instead of ``add`` once per record;
    everywhere else (row runtime, naive plan) the scalar fold runs, so a
    ``batch`` fold is subject to the same differential bit-identity bar
    as every other rewrite.
    """

    __slots__ = ("zero", "add", "merge", "label", "batch")

    def __init__(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Optional[Callable[[Any, Any], Any]] = None,
        *,
        label: str = "fold",
        batch: Optional[Callable[[list], Any]] = None,
    ) -> None:
        self.zero = zero
        self.add = add
        self.merge = merge if merge is not None else add
        self.label = label
        self.batch = batch

    def __call__(self, values: Iterable[Any]) -> Any:
        acc = self.zero()
        for value in values:
            acc = self.add(acc, value)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fold({self.label})"

    @classmethod
    def sum(cls) -> "Fold":
        return cls(int, lambda a, v: a + v, label="sum")

    @classmethod
    def count(cls) -> "Fold":
        return cls(int, lambda a, _v: a + 1, lambda a, b: a + b, label="count")

    @classmethod
    def max(cls) -> "Fold":
        return cls(
            lambda: None,
            lambda a, v: v if a is None or v > a else a,
            label="max",
        )

    @classmethod
    def min(cls) -> "Fold":
        return cls(
            lambda: None,
            lambda a, v: v if a is None or v < a else a,
            label="min",
        )


class PTransform:
    """A named composite transform: a reusable sub-pipeline.

    Subclasses implement :meth:`expand`, building an arbitrary chain of
    primitive transforms (and other composites) on the input collection.
    Applying one — ``pcoll.apply(MyTransform(...))`` or the Beam-style
    ``pcoll | MyTransform(...)`` — runs :meth:`expand` inside a *composite
    scope*: every node built during expansion is tagged with the
    transform's name, and :meth:`PCollection.explain` renders those nodes
    as a collapsible named group.  Results, metrics, and plan rewrites are
    exactly those of the expanded primitives; composites are organization,
    not semantics.

    The reusable composites extracted from the beam entry points live in
    :mod:`repro.dataflow.library`.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else type(self).__name__

    def expand(self, pcoll: "PCollection") -> "PCollection":
        raise NotImplementedError(
            f"{type(self).__name__} must implement expand(pcoll)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class _PipelineState:
    """Shared liveness flag, visible to spilled shards (even across fork)."""

    __slots__ = ("closed",)

    def __init__(self) -> None:
        self.closed = False


class _DiskShard:
    """A shard spilled to disk; loaded lazily, one shard in memory at a time.

    Supports ``len`` without loading (count cached at write time).
    """

    __slots__ = ("path", "_count", "_state")

    def __init__(self, path: str, records: list, state: _PipelineState) -> None:
        self.path = path
        self._count = len(records)
        self._state = state
        with open(path, "wb") as fh:
            pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self) -> list:
        if self._state.closed:
            raise RuntimeError("pipeline closed")
        with open(self.path, "rb") as fh:
            return pickle.load(fh)

    def __len__(self) -> int:
        return self._count


class _ShardGroup:
    """Aligned parts of one logical shard, presented as one virtual shard.

    Used by Flatten (one part per input collection) and by streaming
    sources (one part per consumed chunk).  Implements the shard protocol
    (``len`` without loading; ``load`` resolves each part), so the stage
    runs through the executor like every other and spilled parts are
    loaded inside the worker, never on the driver.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: List[Any]) -> None:
        self.parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def load(self) -> list:
        out: list = []
        for part in self.parts:
            out.extend(_resolve(part))
        return out


def gc_checkpoint_entries(
    checkpoint_dir: Optional[str], protected: "set[str]"
) -> int:
    """Delete every ``.ckpt`` entry whose digest is not in ``protected``,
    plus orphaned ``.ckpt.tmp-*`` write leftovers from killed runs.

    The single scan-and-unlink loop behind both
    :meth:`Pipeline.gc_checkpoints` and
    :meth:`repro.dataflow.options.DataflowContext.gc_checkpoints`.
    Returns the number of entries removed.  (GC is a post-run operation;
    a tmp file unlinked under a *concurrent* writer merely skips that
    writer's store — stores are best-effort by design.)
    """
    if checkpoint_dir is None or not os.path.isdir(checkpoint_dir):
        return 0
    removed = 0
    for entry in os.listdir(checkpoint_dir):
        if entry.endswith(".ckpt"):
            if entry[: -len(".ckpt")] in protected:
                continue
        elif ".ckpt.tmp-" not in entry:
            continue
        try:
            os.unlink(os.path.join(checkpoint_dir, entry))
            removed += 1
        except OSError:  # pragma: no cover - concurrent GC
            pass
    return removed


# ``_stable_shard`` now lives in :mod:`repro.dataflow.columnar` (as
# ``stable_shard``, next to its vectorized column twin); the engine-internal
# name is kept as an alias via the import above.


# -- operator DAG ----------------------------------------------------------

#: Node kinds that are element-wise (shard-local, fusable).
_ELEMENTWISE = frozenset({"map", "flat_map", "filter", "map_values"})

#: Element-wise kinds that leave every element's key untouched — the only
#: stages that may legally sit between an elided reshard and the grouping
#: shuffle that subsumes it.
_KEY_PRESERVING = frozenset({"filter", "map_values"})

#: Shuffle-read stages that element-wise consumers may fuse into.
_POST_SHUFFLE_FUSABLE = frozenset(
    {"group", "combine_per_key", "cogroup", "flatten"}
)


class _Node:
    """One operator in the lazy DAG.

    ``cached`` holds the materialized (possibly spilled) shards once the
    node has executed; materialization also truncates ``deps`` so upstream
    intermediates become collectable, mirroring the eager engine's memory
    profile.  ``consumers`` counts downstream nodes built on this one:
    fusion never reaches through a node that has more than one consumer at
    materialization time — it materializes instead, so subgraphs shared by
    the already-built consumers execute once.  A consumer releases its
    claim when it materializes (lineage truncation decrements its deps'
    counts), so only *live* consumers block fusion.  (A consumer derived
    *after* the node was fused through recomputes the chain; ``cache()``
    pins.)

    ``lifted_from`` records the name of the ``group_by_key`` a lifted
    ``combine_per_key`` node replaced (for ``explain()``).
    """

    __slots__ = (
        "kind", "name", "deps", "fn", "extra", "cached", "consumers",
        "claims_released", "lifted_from", "scope", "__weakref__"
    )

    def __init__(
        self, kind: str, deps: tuple = (), fn=None, extra=None,
        name: str = "", scope: tuple = (),
    ) -> None:
        self.kind = kind
        self.name = name
        self.deps = deps
        self.fn = fn
        self.extra = extra
        self.cached: Optional[list] = None
        self.consumers = 0
        self.claims_released = False
        self.lifted_from: Optional[str] = None
        #: Composite-scope tokens ``(label, seq)`` — which named composite
        #: application(s) built this node; ``explain()`` groups by it.
        self.scope = scope

    def release_claims(self) -> None:
        """Drop this node's claim on its deps' ``consumers`` counts.

        Called once — when the node materializes (lineage truncation) or
        when it is fused through into an executing stage.  The flag guards
        against double release: a fused-through node may still materialize
        directly later (late-consumer recompute), and decrementing twice
        would let fusion reach through deps with live consumers.
        """
        if not self.claims_released:
            self.claims_released = True
            for dep in self.deps:
                dep.consumers -= 1


def _iter_map(it, fn):
    return map(fn, it)


def _iter_flat_map(it, fn):
    return itertools.chain.from_iterable(map(fn, it))


def _iter_filter(it, fn):
    return filter(fn, it)


def _iter_map_values(it, fn):
    return ((k, fn(v)) for k, v in it)


_OP_ITER = {
    "map": _iter_map,
    "flat_map": _iter_flat_map,
    "filter": _iter_filter,
    "map_values": _iter_map_values,
}


def _chain_iter(records, ops: tuple):
    """Lazily thread one shard through a fused element-wise chain."""
    it: Iterable[Any] = records
    for kind, fn in ops:
        it = _OP_ITER[kind](it, fn)
    return it


def _split_batch_prefix(ops: tuple, columnar: bool) -> Tuple[int, tuple]:
    """``(n_batch, row_ops)``: how much of a fused chain runs whole-shard.

    With the columnar runtime off the prefix is always empty — every op
    runs the scalar row path, which is the differential reference.
    """
    n_batch = batch_prefix_len(ops) if columnar else 0
    return n_batch, ops[n_batch:]


def _chain_shard(records, ops: tuple, n_batch: int, row_ops: tuple):
    """One shard through a chain: batch prefix, then the row remainder.

    Returns a :class:`ColumnarShard` when the whole chain stayed batch
    and produced one (so the downstream stage — or the stored boundary —
    keeps the columns); otherwise a plain row list.  The transition from
    the batch prefix to the first row op is the *fallback boundary*:
    ``as_records`` materializes the exact scalar records there.
    """
    shard = run_batch_prefix(records, ops, n_batch)
    if not row_ops:
        if isinstance(shard, (list, ColumnarShard)):
            return shard
        return list(shard)
    return list(_chain_iter(as_records(shard), row_ops))


def _make_chain_fn(ops, columnar=False):
    """Stage: fused element-wise chain, one pass per shard."""
    ops = tuple(ops)
    n_batch, row_ops = _split_batch_prefix(ops, columnar)

    def run_chain(records, _ops=ops, _n=n_batch, _rest=row_ops):
        return _chain_shard(records, _ops, _n, _rest)

    return run_chain


def _compose_post_ops(fn, ops, columnar=False):
    """Wrap a shuffle-read stage with a fused element-wise consumer chain
    (post-shuffle fusion): one pass produces the chain's output directly,
    so the shuffle-read intermediate never exists as a stored shard."""
    if not ops:
        return fn
    ops = tuple(ops)
    n_batch, row_ops = _split_batch_prefix(ops, columnar)

    def read_and_chain(records, _fn=fn, _ops=ops, _n=n_batch, _rest=row_ops):
        return _chain_shard(_fn(records), _ops, _n, _rest)

    return read_and_chain


def _make_keyed_bucketer(ops, num_shards, columnar=False):
    """Stage: shuffle write — fuse the producing chain into key routing.

    When the whole producing chain ran batch and left a keyed
    :class:`ColumnarShard`, routing is vectorized too: one column hash +
    one stable argsort replace the per-record ``_stable_shard`` loop
    (:func:`~repro.dataflow.columnar.route_columnar`), and the buckets
    stay columnar through the driver merge.
    """
    ops = tuple(ops)
    n_batch, row_ops = _split_batch_prefix(ops, columnar)

    def route(records, _ops=ops, _num=num_shards, _n=n_batch, _rest=row_ops):
        shard = run_batch_prefix(records, _ops, _n)
        if not _rest and isinstance(shard, ColumnarShard) and shard.keys is not None:
            return route_columnar(shard, _num)
        buckets: List[list] = [[] for _ in range(_num)]
        for element in _chain_iter(as_records(shard), _rest):
            buckets[_stable_shard(element[0], _num)].append(element)
        return buckets

    return route


class _MissingKey:
    """Key-absent sentinel for the combiner dicts.  ``None`` is a
    legitimate accumulator state (``Fold.max()``'s ``zero()`` returns it),
    so absence must be a value no ``add``/``merge`` can produce.  A class
    pickles by reference, keeping the identity check valid inside forked
    workers."""


def _make_precombiner(ops, zero, add, num_shards, columnar=False, batch=None):
    """Stage: combiner lifting — local pre-combine, then bucket partials.

    Returns ``(n_pre, buckets)`` so the driver can meter the pre-shuffle
    record volume the local aggregation absorbed (the payload the executor
    ships back is the partials plus one int).

    Under the columnar runtime, a fold that declares ``batch`` is applied
    once per key over that key's (order-preserved) value list instead of
    once per record; key order — and therefore every downstream insertion
    order — matches the scalar dict's first-appearance order exactly.
    """
    ops = tuple(ops)
    n_batch, row_ops = _split_batch_prefix(ops, columnar)
    if not columnar:
        batch = None

    def precombine(
        records, _ops=ops, _zero=zero, _add=add, _num=num_shards,
        _n=n_batch, _rest=row_ops, _batch=batch, _columnar=columnar,
    ):
        shard = run_batch_prefix(records, _ops, _n)
        local: dict = {}
        n_pre = 0
        if (
            _batch is not None
            and not _rest
            and isinstance(shard, ColumnarShard)
            and shard.keys is not None
        ):
            grouped: dict = {}
            for key, value in zip(shard.keys_list(), shard.values_list()):
                grouped.setdefault(key, []).append(value)
            n_pre = len(shard)
            for key, values in grouped.items():
                local[key] = _batch(values)
        elif _batch is not None:
            grouped = {}
            for key, value in _chain_iter(as_records(shard), _rest):
                n_pre += 1
                grouped.setdefault(key, []).append(value)
            for key, values in grouped.items():
                local[key] = _batch(values)
        else:
            for key, value in _chain_iter(as_records(shard), _rest):
                n_pre += 1
                acc = local.get(key, _MissingKey)
                local[key] = _add(_zero() if acc is _MissingKey else acc, value)
        if _columnar:
            buckets = bucket_keyed_items(list(local.items()), _num)
        else:
            buckets = [[] for _ in range(_num)]
            for key, acc in local.items():
                buckets[_stable_shard(key, _num)].append((key, acc))
        return n_pre, buckets

    return precombine


def _make_combiner_merger(merge):
    """Stage: merge routed per-key accumulators on the destination shard."""

    def merge_shard(records, _merge=merge):
        merged: dict = {}
        for key, acc in records:
            prev = merged.get(key, _MissingKey)
            merged[key] = acc if prev is _MissingKey else _merge(prev, acc)
        return list(merged.items())

    return merge_shard


def _flatten_shard(records):
    """Stage: Flatten — the concatenation happened in ``_ShardGroup.load``
    (inside the executor); the stage itself is the identity."""
    return records


def _group_shard(records):
    """Stage: GroupByKey's per-shard grouping (input already key-routed).

    Accepts a :class:`ColumnarShard` (zipping the key/value columns keeps
    the first-appearance insertion order identical to the row loop) or a
    plain row list.
    """
    groups: dict = {}
    if isinstance(records, ColumnarShard) and records.keys is not None:
        for key, value in zip(records.keys_list(), records.values_list()):
            groups.setdefault(key, []).append(value)
    else:
        for key, value in records:
            groups.setdefault(key, []).append(value)
    return list(groups.items())


def _make_cogroup_bucketer(tag, num_shards, ops=(), columnar=False):
    """Stage: tagged shuffle write for CoGroupByKey (producing chain fused).

    The tagged ``(key, tag, value)`` triple has no columnar layout, so this
    write is always a fallback boundary: a vectorized producing chain runs
    in batch, then rows are routed one at a time.
    """
    ops = tuple(ops)
    n_batch, row_ops = _split_batch_prefix(ops, columnar)

    def route(records, _tag=tag, _num=num_shards, _ops=ops, _n=n_batch, _rest=row_ops):
        shard = run_batch_prefix(records, _ops, _n)
        buckets: List[list] = [[] for _ in range(_num)]
        for key, value in _chain_iter(as_records(shard), _rest):
            buckets[_stable_shard(key, _num)].append((key, _tag, value))
        return buckets

    return route


def _make_cogroup_grouper(n_inputs):
    """Stage: build the per-key tuple-of-value-lists for CoGroupByKey."""

    def group(records, _n=n_inputs):
        groups: dict = {}
        for key, tag, value in records:
            entry = groups.get(key)
            if entry is None:
                entry = tuple([] for _ in range(_n))
                groups[key] = entry
            entry[tag].append(value)
        return list(groups.items())

    return group


def _make_folder(zero, add):
    """Stage: CombineGlobally's per-shard accumulation."""

    def fold(records, _zero=zero, _add=add):
        acc = _zero()
        for element in records:
            acc = _add(acc, element)
        return [acc]

    return fold


class Pipeline:
    """Factory, scheduler, and metrics scope for PCollections.

    Parameters
    ----------
    num_shards:
        Logical worker count.  Memory metering reports the max records any
        one shard held, so more shards = smaller per-worker footprint.
    spill_to_disk:
        Store materialized shards on disk (one resident at a time under the
        sequential executor) — the literal larger-than-memory mode.
    executor:
        ``"sequential"`` (default), ``"thread"``, ``"multiprocess"``, or an
        :class:`~repro.dataflow.executor.Executor` instance.  Backends are
        result- and metrics-equivalent; thread runs shards of a stage on a
        persistent thread pool, multiprocess on a persistent pool of forked
        worker processes.  An executor created here (from a string) is
        closed by :meth:`close`; a passed-in instance is not — it can be
        shared across pipelines and outlives each of them.
    fuse:
        Collapse adjacent element-wise stages (and element-wise producers
        of shuffle writes) into one pass per shard.  ``False`` *together
        with* ``optimize=False`` reproduces the eager engine's
        stage-by-stage execution byte-for-byte, including
        ``peak_shard_records`` (the optimizer's post-shuffle fusion and
        shuffle elision are governed by ``optimize``, not ``fuse``).
    optimize:
        Run the plan optimizer (combiner lifting, redundant-shuffle
        elision, post-shuffle fusion) before execution.  ``None`` (the
        default) resolves to the module default ``DEFAULT_OPTIMIZE``;
        ``False`` keeps the naive plan reachable (the CLI's
        ``--no-optimize``).
    stream_chunk_size:
        Records per chunk when a source streams lazily (see
        :meth:`create`).  Bounds driver memory during ingest.
    checkpoint_dir:
        Persist every materialization-boundary output here, keyed by a
        deterministic plan digest, and skip any boundary whose digest is
        already on disk — crash/restart of a long drive resumes from the
        last completed stage (see the module docstring).  The directory
        is created if missing and **never** cleaned by :meth:`close`
        (surviving the run is the point).
    checkpoint_salt:
        Content fingerprint standing in for streaming sources in the
        plan digest (their data cannot be hashed without consuming the
        iterator).  Callers must derive it from the streamed content
        (e.g. :func:`repro.core.distributed.problem_fingerprint`);
        without it, streaming sources — and everything derived from
        them — are simply not checkpointed.
    columnar:
        Enable the columnar shard runtime: operators that declare a
        whole-shard batch implementation (:class:`BatchDoFn`, ``Fold``
        with ``batch=``) run vectorized over :class:`ColumnarShard`
        struct-of-arrays, falling back to per-record rows at the first
        non-batch operator.  ``None`` (the default) resolves to the
        module default ``DEFAULT_COLUMNAR`` — "auto": on wherever
        vectorized implementations exist, a no-op everywhere else.
        Results are bit-identical either way; ``False`` forces the pure
        row path (the CLI's ``--no-columnar``).
    planner:
        An :class:`~repro.dataflow.planner.AdaptivePlanner` to consult for
        cost-gated optimizer rewrites and checkpoint placement, and to
        feed per-stage profiles.  ``None`` (the default) keeps every
        rewrite unconditional — the exact pre-adaptive behavior.
    plan_records:
        Caller's estimate of the input size in records; used by the
        planner's cost gates and by ``explain``'s predicted-cost
        rendering when sources stream (eager sources are simply counted).
    shuffle:
        Shuffle data plane: ``"driver"`` merges buckets on the driver,
        ``"worker"`` runs group/combine shuffles as a worker-to-worker
        exchange on executors that implement ``run_exchange`` (the
        remote backend) — bucket bytes move peer-to-peer and the driver
        only plans the assignment, falling back to the driver merge for
        anything the exchange cannot cover.  ``None`` (the default)
        resolves to the module default ``DEFAULT_SHUFFLE``.  Results are
        bit-identical in both modes.
    """

    def __init__(
        self,
        num_shards: int = 8,
        *,
        spill_to_disk: bool = False,
        executor: "str | Executor" = "sequential",
        fuse: bool = True,
        optimize: Optional[bool] = None,
        stream_chunk_size: int = 4096,
        checkpoint_dir: Optional[str] = None,
        checkpoint_salt: Optional[str] = None,
        touched_digests: "Optional[set]" = None,
        columnar: Optional[bool] = None,
        planner=None,
        plan_records: Optional[int] = None,
        shuffle: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if stream_chunk_size < 1:
            raise ValueError(
                f"stream_chunk_size must be >= 1, got {stream_chunk_size}"
            )
        if shuffle is not None and shuffle not in ("driver", "worker"):
            raise ValueError(
                f"shuffle must be 'driver', 'worker', or None, got {shuffle!r}"
            )
        self.num_shards = int(num_shards)
        self.metrics = PipelineMetrics()
        self.spill_to_disk = bool(spill_to_disk)
        self.fuse = bool(fuse)
        self.optimize = DEFAULT_OPTIMIZE if optimize is None else bool(optimize)
        self.columnar = DEFAULT_COLUMNAR if columnar is None else bool(columnar)
        self.shuffle = DEFAULT_SHUFFLE if shuffle is None else str(shuffle)
        self.stream_chunk_size = int(stream_chunk_size)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_salt = checkpoint_salt
        self.executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, Executor)
        #: Checkpoint digests this run computed, stored, or resumed —
        #: the "still live" set :meth:`gc_checkpoints` protects.  A
        #: caller-supplied set (``touched_digests``) lets a
        #: :class:`~repro.dataflow.options.DataflowContext` aggregate
        #: across every pipeline of a multi-stage run.
        self.touched_checkpoint_digests: "set[str]" = (
            touched_digests if touched_digests is not None else set()
        )
        #: Adaptive planner consulted by the optimizer (lift/elide cost
        #: gates) and the checkpoint-placement gate; ``None`` — the
        #: default — preserves the unconditional seed behavior exactly.
        self.planner = planner
        #: The caller's estimate of this pipeline's input size (records);
        #: what the planner costs rewrites against and what ``explain``'s
        #: predicted-cost rendering uses for streaming sources.
        self.plan_records = plan_records
        #: Plan digest of the boundary currently executing — stamps the
        #: stage profiles recorded under it (checkpointed runs only).
        self._current_digest: Optional[str] = None
        self._scope: tuple = ()
        self._scope_seq = 0
        self._state = _PipelineState()
        self._nodes: "weakref.WeakSet[_Node]" = weakref.WeakSet()
        self._digest_memo: "weakref.WeakKeyDictionary[_Node, Optional[str]]" = (
            weakref.WeakKeyDictionary()
        )
        self._spill_dir: Optional[str] = None
        if spill_to_disk:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-dataflow-")
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)

    def _store_shard(self, records: list):
        """Keep a shard in memory, or spill it to disk when enabled."""
        if not self.spill_to_disk:
            return records
        path = os.path.join(self._spill_dir, f"{uuid.uuid4().hex}.pkl")
        return _DiskShard(path, records, self._state)

    def close(self) -> None:
        """Tear the pipeline down: drop every node's shards, delete spills.

        Any later materialization — or load of an already-handed-out spilled
        shard — raises ``RuntimeError("pipeline closed")``.
        """
        self._state.closed = True
        for node in list(self._nodes):
            node.cached = None
            node.deps = ()
            node.fn = None
            node.extra = None
        if self._spill_dir and os.path.isdir(self._spill_dir):
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sources -----------------------------------------------------------

    def create(
        self,
        elements: Iterable[Any],
        *,
        name: str = "create",
        stream: Optional[bool] = None,
    ) -> "PCollection":
        """A round-robin-sharded PCollection from any iterable.

        Materialized containers (lists, tuples, ranges, arrays, sets)
        shard **eagerly** — the collection snapshots the input at create()
        time, as the eager engine always did.  Genuinely lazy iterables —
        generators and other iterators — shard **lazily in bounded
        chunks** of ``stream_chunk_size`` records at first
        materialization, so with ``spill_to_disk`` the driver never holds
        more than one chunk of the input.  Chunked sharding reproduces
        eager sharding's placement and order exactly (element ``i`` lands
        on shard ``i % num_shards`` either way), so results are
        bit-identical.  ``stream`` overrides the auto-detection in either
        direction.
        """
        self.metrics.count_stage(name)
        if stream is None:
            stream = not isinstance(elements, Collection)
        if stream:
            node = self._new_node(
                "stream_source", (), extra=(iter(elements), False), name=name
            )
            return PCollection(self, node, keyed=False)
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for i, element in enumerate(elements):
            shards[i % self.num_shards].append(element)
        return self._from_materialized(shards, keyed=False, name=name)

    def create_keyed(
        self,
        pairs: Iterable[Tuple[Any, Any]],
        *,
        name: str = "create_keyed",
        stream: Optional[bool] = None,
    ) -> "PCollection":
        """``(key, value)`` pairs, sharded by key.

        Streaming (see :meth:`create`) routes each bounded chunk by key as
        it is consumed — same placement, same order as eager sharding.
        """
        self.metrics.count_stage(name)
        if stream is None:
            stream = not isinstance(pairs, Collection)
        if stream:
            node = self._new_node(
                "stream_source", (), extra=(iter(pairs), True), name=name
            )
            return PCollection(self, node, keyed=True)
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for key, value in pairs:
            shards[_stable_shard(key, self.num_shards)].append((key, value))
        return self._from_materialized(shards, keyed=True, name=name)

    # -- DAG construction --------------------------------------------------

    def _new_node(
        self, kind: str, deps: tuple = (), fn=None, extra=None, name: str = ""
    ) -> _Node:
        node = _Node(kind, deps, fn, extra, name=name, scope=self._scope)
        for dep in deps:
            dep.consumers += 1
        self._nodes.add(node)
        return node

    @contextmanager
    def composite_scope(self, label: str):
        """Tag every node built inside the block with composite ``label``.

        Entered by :meth:`PCollection.apply`; scopes nest.  Each entry is
        a distinct application (two applications of the same composite
        render as two groups), hence the sequence token.
        """
        self._scope_seq += 1
        prev = self._scope
        self._scope = prev + ((str(label), self._scope_seq),)
        try:
            yield
        finally:
            self._scope = prev

    def _from_materialized(
        self, shards: List[list], *, keyed: bool, name: str = "source"
    ) -> "PCollection":
        node = self._new_node("source", name=name)
        self._finish_node(node, shards)
        return PCollection(self, node, keyed=keyed)

    def _finish_node(
        self,
        node: _Node,
        raw_shards: List[list],
        *,
        stored: bool = False,
        checkpoint_digest: Optional[str] = None,
    ) -> List[Any]:
        """Store + meter a node's output shards, then truncate its lineage.

        ``stored=True`` means the shards already went through
        :meth:`_store_shard` (streaming sources spill chunk by chunk).
        ``checkpoint_digest`` persists the boundary under that key before
        lineage truncation (``None`` for non-checkpointable nodes, plain
        sources cached at creation, and boundaries *loaded* from a
        checkpoint — rewriting those would be wasted I/O).

        Truncation releases the node's claim on its deps: their
        ``consumers`` counts drop so a chain derived from a dep *after*
        this sink still fuses (``_upstream_chain`` stops at nodes with
        multiple live consumers; a stale count would block fusion forever).
        """
        if stored:
            kept = raw_shards
        else:
            kept = [self._store_shard(shard) for shard in raw_shards]
        if checkpoint_digest is not None:
            self._checkpoint_store(checkpoint_digest, kept)
        for shard in kept:
            self.metrics.observe_shard(
                len(shard), columnar=isinstance(shard, ColumnarShard)
            )
        node.cached = kept
        node.release_claims()
        node.deps = ()
        node.fn = None
        node.extra = None
        return kept

    # -- checkpointing -----------------------------------------------------

    #: Bump when the digest recipe or checkpoint file format changes —
    #: stale checkpoint directories then miss instead of mis-loading.
    _CHECKPOINT_VERSION = b"repro-ckpt-1"

    def _node_digest(self, node: _Node) -> Optional[str]:
        """Deterministic digest of the subplan below ``node`` (memoized).

        ``None`` marks the node non-checkpointable (a streaming source
        without a salt, an unserializable DoFn, …); the marker is
        memoized too, and poisons every descendant.
        """
        memo = self._digest_memo
        if node in memo:
            return memo[node]
        digest = self._compute_digest(node)
        memo[node] = digest
        return digest

    def _compute_digest(self, node: _Node) -> Optional[str]:
        h = hashlib.sha256()
        h.update(self._CHECKPOINT_VERSION)
        h.update(f"|{self.num_shards}|{node.kind}|{node.name}|".encode())
        if node.kind == "source":
            # Eager sources are cached at creation: their digest is their
            # content, which is exactly what keys every derived boundary
            # to this run's input data.
            if node.cached is None:
                return None
            try:
                for shard in node.cached:
                    h.update(b"#shard")
                    h.update(
                        pickle.dumps(
                            _resolve(shard), protocol=pickle.HIGHEST_PROTOCOL
                        )
                    )
            except Exception:
                return None
            return h.hexdigest()
        if node.kind == "stream_source":
            if self.checkpoint_salt is None:
                return None
            h.update(self.checkpoint_salt.encode())
            return h.hexdigest()
        if node.cached is not None:
            # Materialized mid-run without a recorded digest (checkpointing
            # sees every boundary, so this means lineage was truncated
            # before a digest was taken — e.g. the dir was set after).
            return None
        for part in (node.fn, node.extra):
            h.update(b"#part")
            if part is None:
                h.update(b"none")
                continue
            try:
                h.update(_dumps_payload(part))
            except Exception:
                return None
        for dep in node.deps:
            dep_digest = self._node_digest(dep)
            if dep_digest is None:
                return None
            h.update(dep_digest.encode())
        return h.hexdigest()

    def _checkpoint_path(self, digest: str) -> str:
        return os.path.join(self.checkpoint_dir, digest + ".ckpt")

    def _checkpoint_store(self, digest: str, shards: List[Any]) -> None:
        """Persist one boundary atomically (tmp + rename), shard by shard.

        Spilled shards are resolved one at a time, so the write keeps the
        engine's one-shard-resident memory profile.  Serialization
        failures (exotic record types) skip the checkpoint rather than
        fail the run.
        """
        path = self._checkpoint_path(digest)
        if os.path.exists(path):
            return
        tmp = path + f".tmp-{uuid.uuid4().hex}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(_dumps_payload(len(shards)))
                for shard in shards:
                    fh.write(_dumps_payload(_resolve(shard)))
            os.replace(tmp, path)
        except Exception:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.metrics.observe_checkpoint_store()

    def _checkpoint_load(self, digest: str) -> Optional[List[Any]]:
        """Load a boundary's shards, or ``None`` when absent/unreadable.

        Each shard is passed through :meth:`_store_shard` as soon as it is
        read, so with ``spill_to_disk`` a resume keeps the engine's
        one-shard-resident memory profile (mirroring the store path) —
        the returned shards are already stored.
        """
        path = self._checkpoint_path(digest)
        try:
            with open(path, "rb") as fh:
                n_shards = pickle.load(fh)
                if n_shards != self.num_shards:
                    return None
                return [
                    self._store_shard(pickle.load(fh))
                    for _ in range(n_shards)
                ]
        except FileNotFoundError:
            return None
        except Exception:
            # Unreadable/corrupt entry (e.g. version skew): recompute.
            # (Shards already re-spilled before the failure are orphaned
            # in the spill dir until close() — harmless.)
            return None

    def gc_checkpoints(self, keep: Iterable[str] = ()) -> int:
        """Drop checkpoint entries whose plan digest this run never touched.

        Checkpoint directories only grow: every plan change (new data,
        different shard count, edited DoFns) keys fresh boundaries and
        strands the old ones.  After a successful run, this deletes every
        ``.ckpt`` entry the run neither computed, stored, nor resumed —
        i.e. everything no longer reachable from the current plan.
        ``keep`` protects extra digests (e.g. a sibling configuration
        sharing the directory).  Returns the number of entries removed.

        For multi-pipeline runs, prefer
        :meth:`repro.dataflow.options.DataflowContext.gc_checkpoints`,
        which aggregates the touched sets of every stage first.
        """
        return gc_checkpoint_entries(
            self.checkpoint_dir, self.touched_checkpoint_digests | set(keep)
        )

    # -- plan optimization -------------------------------------------------

    def _lift_combiners(self, node: _Node) -> None:
        """Logical rewrite pass: ``group_by_key → map_values(Fold)`` becomes
        ``combine_per_key`` (Beam's combiner lifting).

        The rewrite fires only when the group is uncached and the
        ``map_values`` is its sole live consumer; it mutates the
        ``map_values`` node in place (so PCollections referencing it see
        the combine) and transfers the group's claim on its dep to the new
        combine node.  Idempotent — safe to run at every sink and from
        :meth:`PCollection.explain`.
        """
        seen: set = set()
        stack = [node]
        while stack:
            cur = stack.pop()
            if id(cur) in seen or cur.cached is not None:
                continue
            seen.add(id(cur))
            if cur.kind == "map_values" and isinstance(cur.fn, Fold):
                dep = cur.deps[0]
                if (
                    dep.kind == "group"
                    and dep.cached is None
                    and dep.consumers == 1
                    and not dep.claims_released
                    # Adaptive runs consult the cost model: a lift whose
                    # modeled shuffle saving cannot repay its pre-combine
                    # pass stays a plain group (non-adaptive: always lift).
                    and (
                        self.planner is None
                        or self.planner.should_lift(self.plan_records)
                    )
                ):
                    fold = cur.fn
                    cur.kind = "combine_per_key"
                    cur.fn = None
                    cur.extra = (fold.zero, fold.add, fold.merge, fold.batch)
                    cur.deps = dep.deps
                    cur.lifted_from = dep.name
                    # The combine inherits the group's claim on its dep;
                    # mark the group released so it never decrements the
                    # (transferred) claim again, and drop the combine's
                    # own claim on the now-orphaned group — a stale count
                    # would block fusion for any later consumer of the
                    # group.  (The lift is metered at execution, not here
                    # — explain() also runs this pass and must leave the
                    # metrics untouched.)
                    dep.claims_released = True
                    dep.consumers -= 1
            stack.extend(cur.deps)

    def _peek_chain(self, dep: _Node, *, for_shuffle: bool = False):
        """Read-only fusion walk: what would fuse above (and including)
        ``dep``?

        Returns ``(chain, base, base_live, elided)`` — the fusable
        element-wise nodes in execution order, the first non-fusable (or
        already materialized) ancestor, ``base``'s live-consumer count at
        walk time (counting our own claim), and the redundant reshard
        nodes elided along the way.  ``for_shuffle=True`` means the chain
        feeds a shuffle write, which both fuses the producers into the
        routing pass and (under ``optimize``) elides single-consumer
        reshards whose routing the write subsumes — legal only while every
        op walked so far preserves keys.  Shared by execution
        (:meth:`_upstream_chain`) and :meth:`explain`.
        """
        chain: List[_Node] = []
        elided: List[_Node] = []
        keys_stable = True
        cur = dep
        while True:
            if (
                self.fuse
                and cur.kind in _ELEMENTWISE
                and cur.cached is None
                and cur.consumers <= 1
            ):
                chain.append(cur)
                if cur.kind not in _KEY_PRESERVING:
                    keys_stable = False
                cur = cur.deps[0]
                continue
            if (
                for_shuffle
                and self.optimize
                and cur.kind == "reshard"
                and cur.cached is None
                and cur.consumers <= 1
                and keys_stable
                # Adaptive runs consult the predicted shuffle cost; an
                # elision strictly removes a routing pass, so the model
                # always approves — the consult keeps every rewrite
                # flowing through one policy point.
                and (
                    self.planner is None
                    or self.planner.should_elide(self.plan_records)
                )
            ):
                elided.append(cur)
                cur = cur.deps[0]
                continue
            break
        base_live = cur.consumers
        chain.reverse()
        return chain, cur, base_live, elided

    def _fuses_post_shuffle(self, base: _Node, base_live: int) -> bool:
        """Would an element-wise chain ending at ``base`` fuse into its
        shuffle-read stage?  The single predicate behind both execution
        (:meth:`_exec_elementwise`) and :meth:`explain` — keep them from
        drifting."""
        return (
            self.optimize
            and base.cached is None
            and base_live <= 1
            and base.kind in _POST_SHUFFLE_FUSABLE
        )

    # -- execution ---------------------------------------------------------

    def _materialize(self, node: _Node) -> List[Any]:
        """Sink entry point: optimize the plan below ``node``, then run it."""
        if self.optimize and node.cached is None:
            self._lift_combiners(node)
        return self._materialize_node(node)

    def _materialize_node(self, node: _Node) -> List[Any]:
        """Execute the DAG below ``node`` (cached subgraphs run once)."""
        if node.cached is not None:
            return node.cached
        if self._state.closed:
            raise RuntimeError("pipeline closed")
        kind = node.kind
        if kind == "source":
            # Sources are cached at creation; losing the cache means close()
            # dropped it.
            raise RuntimeError("pipeline closed")
        digest: Optional[str] = None
        if self.checkpoint_dir is not None:
            # Digest before execution: deps still carry their lineage, and
            # a hit skips the whole subtree below this boundary.
            digest = self._node_digest(node)
            if digest is not None:
                self.touched_checkpoint_digests.add(digest)
                loaded = self._checkpoint_load(digest)
                if loaded is not None:
                    self.metrics.observe_checkpoint_hit()
                    return self._finish_node(node, loaded, stored=True)
        if kind == "stream_source":
            # Always checkpointed when a digest exists: the source iterator
            # is spent after one consumption, so its recompute cost is
            # effectively infinite — no placement decision to make.
            return self._exec_stream_source(node, checkpoint_digest=digest)
        prev_digest = self._current_digest
        if digest is not None:
            self._current_digest = digest
        started = time.perf_counter()
        try:
            if kind in _ELEMENTWISE:
                raw = self._exec_elementwise(node)
            elif kind == "reshard":
                raw = self._shuffle_by_key(
                    node.deps[0], label=f"shuffle {self._describe(node)}"
                )
            elif kind == "group":
                raw = self._exec_group(node)
            elif kind == "combine_per_key":
                raw = self._exec_combine_per_key(node)
            elif kind == "reshuffle":
                raw = self._exec_reshuffle(node)
            elif kind == "flatten":
                raw = self._exec_flatten(node)
            elif kind == "cogroup":
                raw = self._exec_cogroup(node)
            else:  # pragma: no cover - construction bug
                raise AssertionError(f"unknown node kind {kind!r}")
        finally:
            self._current_digest = prev_digest
        if digest is not None and self.planner is not None:
            # Adaptive checkpoint placement: store the boundary only when
            # its (measured, subtree-inclusive — conservative on the side
            # of durability) recompute cost beats the modeled store+load.
            try:
                n_records = sum(len(shard) for shard in raw)
            except TypeError:
                n_records = 0
            if not self.planner.should_checkpoint(
                recompute_sec=time.perf_counter() - started,
                n_records=n_records,
            ):
                digest = None
        return self._finish_node(node, raw, checkpoint_digest=digest)

    def _run_stage(
        self,
        fn,
        shards,
        *,
        fused: int = 0,
        vectorized: bool = False,
        label: str = "",
    ) -> List[Any]:
        payload_before = self.executor.stats().get("stage_payload_bytes", 0)
        self.executor.stages_run += 1
        start = time.perf_counter()
        out = self.executor.run_stage(fn, shards)
        wall_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.observe_stage_execution(fused=fused)
        if vectorized:
            self.metrics.observe_vectorized_stage()
        try:
            rows_in = sum(len(shard) for shard in shards)
        except TypeError:
            rows_in = 0
        payload_after = self.executor.stats().get("stage_payload_bytes", 0)
        profile = StageProfile(
            label=label,
            wall_ms=wall_ms,
            rows_in=rows_in,
            fused=fused,
            vectorized=vectorized,
            payload_bytes=max(0, payload_after - payload_before),
            digest=self._current_digest,
        )
        self.metrics.observe_stage_profile(profile)
        if self.planner is not None:
            self.planner.record_profile(profile)
        return out

    def _vector_prefix(self, ops) -> int:
        """How many leading ops of a fused chain run vectorized (0 when
        the columnar runtime is off)."""
        if not self.columnar:
            return 0
        return batch_prefix_len(tuple(ops))

    def _upstream_chain(self, dep: _Node, *, for_shuffle: bool = False):
        """Collect (and consume) the fusable chain above ``dep``.

        Returns ``(ops, base, base_live)`` where ``ops`` are ``(kind, fn)``
        pairs in execution order, ``base`` is the first non-fusable (or
        already materialized) ancestor, and ``base_live`` is ``base``'s
        consumer count before the chain's claims were released (``== 1``
        means our chain is its sole live consumer — the post-shuffle
        fusion precondition).  With ``fuse=False`` the chain is always
        empty, so every node materializes individually.

        The chain is about to be consumed by the executing stage, so each
        fused-through node's claim on its dep is released here (after the
        walk — the stop decisions use the pre-release counts).  Without
        this, a chain of length >= 2 leaves stale claims on its interior
        nodes and anything derived from them after the sink can never
        fuse.  Elided reshards release the same way and are counted in
        ``metrics.elided_shuffles``.
        """
        chain, base, base_live, elided = self._peek_chain(
            dep, for_shuffle=for_shuffle
        )
        for fused_node in chain:
            fused_node.release_claims()
        for elided_node in elided:
            elided_node.release_claims()
        if elided:
            self.metrics.observe_elided_shuffles(len(elided))
        return [(n.kind, n.fn) for n in chain], base, base_live

    def _exec_stream_source(
        self, node: _Node, *, checkpoint_digest: Optional[str] = None
    ) -> List[Any]:
        """Consume a lazy source chunk by chunk: route each bounded chunk,
        store its per-shard buckets (spilled immediately when enabled),
        and assemble each shard as a :class:`_ShardGroup` of chunk parts —
        the driver never holds more than one chunk of raw input."""
        elements, keyed = node.extra
        if elements is None:
            raise RuntimeError(
                f"streaming source '{node.name}' failed mid-consumption "
                "earlier; its iterator is spent — rebuild the pipeline"
            )
        num = self.num_shards
        parts: List[List[Any]] = [[] for _ in range(num)]
        position = 0
        try:
            while True:
                chunk = list(itertools.islice(elements, self.stream_chunk_size))
                if not chunk:
                    break
                buckets: List[list] = [[] for _ in range(num)]
                if keyed:
                    for key, value in chunk:
                        buckets[_stable_shard(key, num)].append((key, value))
                else:
                    for element in chunk:
                        buckets[position % num].append(element)
                        position += 1
                del chunk
                for shard_idx, bucket in enumerate(buckets):
                    if bucket:
                        parts[shard_idx].append(self._store_shard(bucket))
                # Drop every bucket reference (including the loop variable)
                # before reading the next chunk — otherwise two chunks are
                # alive at once (spilled parts hold no records; in-memory
                # parts intentionally do).
                del buckets, bucket
        except BaseException:
            # Poison the node: the iterator is partially consumed, so a
            # retry would silently cache truncated (or empty) data.
            node.extra = (None, keyed)
            raise
        shards: List[Any] = []
        for shard_parts in parts:
            if not shard_parts:
                shards.append([])
            elif len(shard_parts) == 1:
                shards.append(shard_parts[0])
            else:
                shards.append(_ShardGroup(shard_parts))
        return self._finish_node(
            node, shards, stored=True, checkpoint_digest=checkpoint_digest
        )

    def _exec_elementwise(self, node: _Node) -> List[list]:
        ops, base, base_live = self._upstream_chain(node.deps[0])
        ops.append((node.kind, node.fn))
        if self._fuses_post_shuffle(base, base_live):
            # Post-shuffle fusion: the whole element-wise chain runs inside
            # the shuffle-read stage; ``base`` is fused through and never
            # materialized (late consumers recompute, as with any fused
            # intermediate).
            raw = self._exec_shuffle_read(base, post_ops=ops)
            base.release_claims()
            return raw
        base_shards = self._materialize_node(base)
        return self._run_stage(
            _make_chain_fn(ops, columnar=self.columnar),
            base_shards,
            fused=len(ops) - 1,
            vectorized=self._vector_prefix(ops) > 0,
            label=self._describe(node),
        )

    def _exec_shuffle_read(self, base: _Node, post_ops) -> List[list]:
        if base.kind == "group":
            return self._exec_group(base, post_ops=post_ops)
        if base.kind == "combine_per_key":
            return self._exec_combine_per_key(base, post_ops=post_ops)
        if base.kind == "cogroup":
            return self._exec_cogroup(base, post_ops=post_ops)
        if base.kind == "flatten":
            return self._exec_flatten(base, post_ops=post_ops)
        raise AssertionError(  # pragma: no cover - guarded by caller
            f"not a post-shuffle-fusable kind: {base.kind!r}"
        )

    def _exchange_enabled(self) -> bool:
        """Is the worker-to-worker shuffle data plane in play?"""
        return (
            self.shuffle == "worker"
            and getattr(self.executor, "run_exchange", None) is not None
        )

    def _shuffle_parallelism(self) -> int:
        """Concurrent links bucket volume crosses (1 = driver funnel)."""
        if not self._exchange_enabled():
            return 1
        try:
            return max(int(self.executor.stats().get("n_workers", 1)), 1)
        except Exception:  # pragma: no cover - defensive
            return 1

    def _run_exchange(
        self,
        write_fn,
        base_shards,
        read_fn,
        *,
        combine: bool = False,
        meter_shards: bool = False,
        write_fused: int = 0,
        write_vectorized: bool = False,
        write_label: str = "",
        read_fused: int = 0,
        read_label: str = "",
    ) -> Optional[List[Any]]:
        """Try one shuffle as a worker-to-worker exchange.

        Returns the read-stage results, or ``None`` when the exchange is
        off or the executor declined it (too few shards, nothing
        serializes, no live workers) — the caller then runs the
        driver-merge path with the *same* stage functions, so the two
        paths cannot diverge.  Metering mirrors the driver path: two
        stage executions, two profiles (shuffle volume credited to the
        write), plus the exchange byte counters.
        """
        if not self._exchange_enabled():
            return None
        out = self.executor.run_exchange(
            write_fn, base_shards, read_fn, self.num_shards, combine=combine
        )
        if out is None:
            return None
        results, info = out
        try:
            rows_in = sum(len(shard) for shard in base_shards)
        except TypeError:
            rows_in = 0
        self.executor.stages_run += 1
        self.metrics.observe_stage_execution(fused=write_fused)
        if write_vectorized:
            self.metrics.observe_vectorized_stage()
        write_profile = StageProfile(
            label=write_label,
            wall_ms=info["write_seconds"] * 1000.0,
            rows_in=rows_in,
            fused=write_fused,
            vectorized=write_vectorized,
            payload_bytes=info["write_payload_bytes"],
            digest=self._current_digest,
        )
        self.metrics.observe_stage_profile(write_profile)
        self.metrics.observe_shuffle(
            info["moved"],
            pre_records=info["pre_records"] if combine else None,
        )
        self.metrics.attribute_shuffle_to_last_stage(info["moved"])
        if meter_shards:
            for count, is_col in zip(
                info["dest_counts"], info["dest_columnar"]
            ):
                self.metrics.observe_shard(count, columnar=is_col)
        self.executor.stages_run += 1
        self.metrics.observe_stage_execution(fused=read_fused)
        read_profile = StageProfile(
            label=read_label,
            wall_ms=info["read_seconds"] * 1000.0,
            rows_in=sum(info["dest_counts"]),
            fused=read_fused,
            payload_bytes=info["read_payload_bytes"],
            digest=self._current_digest,
        )
        self.metrics.observe_stage_profile(read_profile)
        self.metrics.observe_exchange(
            p2p_bytes=info["p2p_bytes"],
            driver_bytes=info["driver_bytes"],
            refetches=info["refetches"],
            fetch_chunks=info.get("fetch_chunks", 0),
        )
        if self.planner is not None:
            self.planner.record_profile(write_profile)
            self.planner.record_profile(read_profile)
        return results

    def _driver_shuffle(
        self, write_fn, base_shards, *, fused: int, vectorized: bool,
        label: str,
    ) -> List[Any]:
        """Shuffle write stage + driver-side bucket merge."""
        num = self.num_shards
        bucket_lists = self._run_stage(
            write_fn,
            base_shards,
            fused=fused,
            vectorized=vectorized,
            label=label,
        )
        # Merge per input-shard part order (identical to the old
        # ``extend`` sequence); columnar buckets concatenate column-wise,
        # mixed destinations degrade to rows.
        parts: List[List[Any]] = [[] for _ in range(num)]
        moved = 0
        for buckets in bucket_lists:
            for i, bucket in enumerate(buckets):
                if len(bucket):
                    parts[i].append(bucket)
                    moved += len(bucket)
        shards: List[Any] = [merge_bucket_parts(p) for p in parts]
        self.metrics.observe_shuffle(moved)
        # The write stage above produced the routed buckets; credit the
        # moved volume to it so the cost model sees the shuffle.
        self.metrics.attribute_shuffle_to_last_stage(moved)
        return shards

    def _shuffle_by_key(self, dep: _Node, *, label: str = "") -> List[list]:
        """Shuffle write + driver-side merge; fuses the producing chain.

        Always the driver data plane: callers that materialize the
        routed shards (the ``reshard`` node) need them on the driver
        anyway, so a worker exchange would move every byte twice.
        """
        ops, base, _ = self._upstream_chain(dep, for_shuffle=True)
        base_shards = self._materialize_node(base)
        return self._driver_shuffle(
            _make_keyed_bucketer(ops, self.num_shards, columnar=self.columnar),
            base_shards,
            fused=len(ops),
            vectorized=self._vector_prefix(ops) > 0,
            label=label or f"shuffle {self._describe(dep)}",
        )

    def _exec_group(self, node: _Node, post_ops=()) -> List[list]:
        # One chain walk serves both data planes (the walk consumes
        # fusion claims, so it must not run twice).
        ops, base, _ = self._upstream_chain(node.deps[0], for_shuffle=True)
        base_shards = self._materialize_node(base)
        write_fn = _make_keyed_bucketer(
            ops, self.num_shards, columnar=self.columnar
        )
        read_fn = _compose_post_ops(_group_shard, post_ops)
        exchanged = self._run_exchange(
            write_fn,
            base_shards,
            read_fn,
            meter_shards=True,
            write_fused=len(ops),
            write_vectorized=self._vector_prefix(ops) > 0,
            write_label=f"shuffle-write {self._describe(node)}",
            read_fused=len(post_ops),
            read_label=f"group-read {self._describe(node)}",
        )
        if exchanged is not None:
            return exchanged
        resharded = self._driver_shuffle(
            write_fn,
            base_shards,
            fused=len(ops),
            vectorized=self._vector_prefix(ops) > 0,
            label=f"shuffle-write {self._describe(node)}",
        )
        # The key-routed intermediate is a real per-worker footprint (the
        # eager engine materialized it); meter it even though it is never
        # stored.
        for shard in resharded:
            self.metrics.observe_shard(
                len(shard), columnar=isinstance(shard, ColumnarShard)
            )
        return self._run_stage(
            read_fn,
            resharded,
            fused=len(post_ops),
            label=f"group-read {self._describe(node)}",
        )

    def _exec_combine_per_key(self, node: _Node, post_ops=()) -> List[list]:
        # ``extra`` is a 3-tuple from ``combine_per_key`` calls predating
        # vectorized folds, a 4-tuple (with the fold's batch impl) since.
        zero, add, merge = node.extra[:3]
        fold_batch = node.extra[3] if len(node.extra) > 3 else None
        if node.lifted_from is not None:
            self.metrics.observe_lifted_combiner()
        ops, base, _ = self._upstream_chain(node.deps[0], for_shuffle=True)
        base_shards = self._materialize_node(base)
        num = self.num_shards
        write_fn = _make_precombiner(
            ops, zero, add, num,
            columnar=self.columnar,
            batch=fold_batch,
        )
        read_fn = _compose_post_ops(_make_combiner_merger(merge), post_ops)
        write_vectorized = self.columnar and (
            fold_batch is not None or self._vector_prefix(ops) > 0
        )
        exchanged = self._run_exchange(
            write_fn,
            base_shards,
            read_fn,
            combine=True,
            write_fused=len(ops),
            write_vectorized=write_vectorized,
            write_label=f"combine-write {self._describe(node)}",
            read_fused=len(post_ops),
            read_label=f"combine-read {self._describe(node)}",
        )
        if exchanged is not None:
            return exchanged
        stage_out = self._run_stage(
            write_fn,
            base_shards,
            fused=len(ops),
            vectorized=write_vectorized,
            label=f"combine-write {self._describe(node)}",
        )
        partials: List[list] = [[] for _ in range(num)]
        moved = 0
        offered = 0
        for n_pre, buckets in stage_out:
            offered += n_pre
            for i, bucket in enumerate(buckets):
                partials[i].extend(bucket)
                moved += len(bucket)
        self.metrics.observe_shuffle(moved, pre_records=offered)
        self.metrics.attribute_shuffle_to_last_stage(moved)
        return self._run_stage(
            read_fn,
            partials,
            fused=len(post_ops),
            label=f"combine-read {self._describe(node)}",
        )

    def _exec_reshuffle(self, node: _Node) -> List[list]:
        ops, base, _ = self._upstream_chain(node.deps[0])
        base_shards = self._materialize_node(base)
        transformed = self._run_stage(
            _make_chain_fn(ops, columnar=self.columnar),
            base_shards,
            fused=len(ops),
            vectorized=self._vector_prefix(ops) > 0,
            label=f"rebalance {self._describe(node)}",
        )
        num = self.num_shards
        shards: List[list] = [[] for _ in range(num)]
        moved = 0
        for records in transformed:
            for element in records:
                shards[moved % num].append(element)
                moved += 1
        self.metrics.observe_shuffle(moved)
        self.metrics.attribute_shuffle_to_last_stage(moved)
        return shards

    def _exec_flatten(self, node: _Node, post_ops=()) -> List[list]:
        dep_shards = [self._materialize_node(dep) for dep in node.deps]
        groups = [
            _ShardGroup([stored[i] for stored in dep_shards])
            for i in range(self.num_shards)
        ]
        return self._run_stage(
            _compose_post_ops(_flatten_shard, post_ops),
            groups,
            fused=len(post_ops),
            label=f"flatten {self._describe(node)}",
        )

    def _exec_cogroup(self, node: _Node, post_ops=()) -> List[list]:
        n_inputs = node.extra
        num = self.num_shards
        routed: List[list] = [[] for _ in range(num)]
        moved = 0
        for tag, dep in enumerate(node.deps):
            if self.optimize:
                # Write-side fusion for cogroup inputs: each input's
                # element-wise producing chain (and any redundant reshard)
                # folds into its tagged routing pass.
                ops, base, _ = self._upstream_chain(dep, for_shuffle=True)
            else:
                ops, base = [], dep
            stored = self._materialize_node(base)
            bucket_lists = self._run_stage(
                _make_cogroup_bucketer(tag, num, ops, columnar=self.columnar),
                stored,
                fused=len(ops),
                vectorized=self._vector_prefix(ops) > 0,
                label=f"cogroup-write #{tag} {self._describe(node)}",
            )
            for buckets in bucket_lists:
                for i, bucket in enumerate(buckets):
                    routed[i].extend(bucket)
                    moved += len(bucket)
        self.metrics.observe_shuffle(moved)
        self.metrics.attribute_shuffle_to_last_stage(moved)
        return self._run_stage(
            _compose_post_ops(_make_cogroup_grouper(n_inputs), post_ops),
            routed,
            fused=len(post_ops),
            label=f"cogroup-read {self._describe(node)}",
        )

    # -- plan rendering ----------------------------------------------------

    #: Transient flag set by :meth:`_explain`: when on, stage lines whose
    #: boundary digest already has a checkpoint entry on disk render a
    #: ``[checkpoint: reuse]`` note (opt-in, so golden plans are unmoved).
    _explain_reuse = False

    def _explain(
        self,
        node: _Node,
        *,
        costs: Optional[bool] = None,
        reuse: bool = False,
    ) -> str:
        """Render the physical plan that a sink on ``node`` would execute.

        Stages built by a named composite (:meth:`PCollection.apply`)
        render indented under a ``[composite '<name>']`` header — one
        group per application, nesting with nested composites.  Plans
        without composites render exactly as before.

        With ``costs`` (defaulting to on exactly when the pipeline has an
        adaptive planner), every stage line is annotated with the cost
        model's predicted wall time — the same prediction the planner
        bases its decisions on.

        With ``reuse`` (off by default), stages whose plan digest already
        has a checkpoint entry in ``checkpoint_dir`` are annotated
        ``[checkpoint: reuse]`` — what a drive would load instead of
        executing.  The incremental driver renders the reused cone this
        way.
        """
        if costs is None:
            costs = self.planner is not None
        if self.optimize and node.cached is None:
            self._lift_combiners(node)
        lines: List[Tuple[tuple, str]] = []
        memo: dict = {}
        self._explain_reuse = bool(reuse) and self.checkpoint_dir is not None
        try:
            ref = self._render_plan(node, lines, memo)
        finally:
            self._explain_reuse = False
        header = (
            f"plan (optimize={'on' if self.optimize else 'off'}, "
            f"fuse={'on' if self.fuse else 'off'}, "
            f"shards={self.num_shards})"
        )
        rendered: List[str] = [header]
        open_scope: tuple = ()
        opened: set = set()
        for scope, text in lines:
            common = 0
            for ours, theirs in zip(open_scope, scope):
                if ours != theirs:
                    break
                common += 1
            for depth in range(common, len(scope)):
                token = scope[depth]
                # An out-of-scope line (e.g. another input's source) can
                # interleave with a composite's stages; re-entering the
                # same application is marked, not shown as a new one.
                marker = " (resumed)" if token in opened else ""
                opened.add(token)
                rendered.append(
                    "  " * depth + f"[composite '{token[0]}'{marker}]"
                )
            open_scope = scope
            rendered.append("  " * len(scope) + text)
        rendered.append(f"result <- {ref}")
        if costs:
            rendered = self._annotate_costs(rendered, node)
        return "\n".join(rendered)

    def _estimate_plan_rows(self, node: _Node) -> int:
        """Plan-wide input-row estimate for pre-run cost prediction.

        Sums the sizes of every materialized/eager source reachable from
        ``node``; stream sources contribute the pipeline's declared
        ``plan_records`` hint (or one chunk when no hint was given).
        Deliberately coarse — predictions before any run exists only need
        the right order of magnitude to rank plans.
        """
        seen: set = set()
        total = 0
        stack = [node]
        while stack:
            cur = stack.pop()
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            if cur.cached is not None:
                total += sum(len(shard) for shard in cur.cached)
                continue
            if cur.kind == "stream_source":
                total += self.plan_records or self.stream_chunk_size
                continue
            stack.extend(cur.deps)
        return total

    def _annotate_costs(self, rendered: List[str], node: _Node) -> List[str]:
        """Append the model's predicted wall time to every stage line.

        Works on the rendered text so the base rendering (pinned by
        golden-plan tests when costs are off) stays byte-identical.
        """
        from repro.cluster.costmodel import CostModel

        model = (
            self.planner.cost_model if self.planner is not None else CostModel()
        )
        rows = self._estimate_plan_rows(node)
        out: List[str] = []
        stage_re = re.compile(r"S\d+: ")
        for line in rendered:
            body = line.lstrip()
            if not stage_re.match(body):
                out.append(line)
                continue
            vectorized = "[vectorized" in body
            shuffled = 0
            if any(tok in body for tok in ("-write", "shuffle ", "rebalance")):
                shuffled = rows
            predicted_ms = 1000.0 * model.predict_stage_seconds(
                rows,
                vectorized=vectorized,
                shuffled_records=shuffled,
                shuffle_parallelism=self._shuffle_parallelism(),
            )
            out.append(f"{line} [cost ~{predicted_ms:.2f}ms]")
        return out

    def _emit(
        self, lines: List[Tuple[tuple, str]], text: str, scope: tuple = ()
    ) -> str:
        ref = f"S{len(lines) + 1}"
        lines.append((scope, f"{ref}: {text}"))
        return ref

    @staticmethod
    def _describe(node: _Node) -> str:
        return f"{node.kind} '{node.name}'" if node.name else node.kind

    def _reuse_note(self, node: _Node) -> str:
        """``[checkpoint: reuse]`` when ``node``'s boundary would load.

        Only active during an ``_explain(reuse=True)`` render; checks the
        same digest → file mapping :meth:`_materialize_node` consults, so
        the annotation and the actual load agree.
        """
        if not self._explain_reuse:
            return ""
        digest = self._node_digest(node)
        if digest is None or not os.path.exists(self._checkpoint_path(digest)):
            return ""
        return " [checkpoint: reuse]"

    def _vector_note(self, nodes) -> str:
        """Annotation for a fused chain's vectorized prefix.

        Empty when the columnar runtime is off or no op in the chain is
        batch-capable — plans built from plain callables render exactly
        as before.  A partial prefix names the first row-fallback op so a
        silently-degraded plan is visible in :meth:`PCollection.explain`.
        """
        nodes = list(nodes)
        if not self.columnar or not nodes:
            return ""
        prefix = batch_prefix_len(tuple((n.kind, n.fn) for n in nodes))
        if prefix == 0:
            return ""
        if prefix == len(nodes):
            return " [vectorized]"
        return (
            f" [vectorized x{prefix}, "
            f"row fallback at {self._describe(nodes[prefix])}]"
        )

    def _render_plan(
        self, node: _Node, lines: List[Tuple[tuple, str]], memo: dict
    ) -> str:
        key = id(node)
        if key in memo:
            return memo[key]
        if node.cached is not None:
            ref = f"[materialized {self._describe(node)}]"
            memo[key] = ref
            return ref
        kind = node.kind
        if kind == "stream_source":
            ref = self._emit(
                lines,
                f"stream source '{node.name}' "
                f"(chunks of {self.stream_chunk_size})",
                node.scope,
            )
        elif kind in _ELEMENTWISE:
            chain, base, base_live, _ = self._peek_chain(node.deps[0])
            ops = chain + [node]
            desc = " + ".join(self._describe(n) for n in ops)
            desc += self._vector_note(ops)
            desc += self._reuse_note(node)
            if self._fuses_post_shuffle(base, base_live):
                ref = self._render_shuffle(base, lines, memo, post=desc)
            else:
                base_ref = self._render_plan(base, lines, memo)
                ref = self._emit(lines, f"{desc} <- {base_ref}", node.scope)
        else:
            ref = self._render_shuffle(node, lines, memo, post="")
        memo[key] = ref
        return ref

    def _render_write(
        self,
        dep: _Node,
        lines: List[Tuple[tuple, str]],
        memo: dict,
        *,
        label: str,
        scope: tuple = (),
    ) -> str:
        """Render one shuffle write (with fused producers / elided reshards)."""
        chain, base, _, elided = self._peek_chain(dep, for_shuffle=True)
        base_ref = self._render_plan(base, lines, memo)
        text = label
        if chain:
            text += " [fused: " + " + ".join(
                self._describe(n) for n in chain
            ) + "]" + self._vector_note(chain)
        for elided_node in elided:
            text += f" (elided {self._describe(elided_node)})"
        return self._emit(lines, f"{text} <- {base_ref}", scope)

    def _render_shuffle(
        self, node: _Node, lines: List[Tuple[tuple, str]], memo: dict,
        *, post: str
    ) -> str:
        kind = node.kind
        scope = node.scope
        fused_note = f" + {post} [post-shuffle fused]" if post else ""
        if kind == "reshard":
            return self._render_write(
                node.deps[0], lines, memo,
                label=f"shuffle {self._describe(node)}", scope=scope,
            )
        if kind == "reshuffle":
            chain, base, _, _ = self._peek_chain(node.deps[0])
            base_ref = self._render_plan(base, lines, memo)
            text = f"rebalance {self._describe(node)}"
            if chain:
                text += " [fused: " + " + ".join(
                    self._describe(n) for n in chain
                ) + "]" + self._vector_note(chain)
            return self._emit(lines, f"{text} <- {base_ref}", scope)
        if kind == "group":
            write = self._render_write(
                node.deps[0], lines, memo,
                label=f"shuffle-write {self._describe(node)}", scope=scope,
            )
            return self._emit(
                lines,
                f"group-read {self._describe(node)}{fused_note}"
                f"{self._reuse_note(node)} <- {write}",
                scope,
            )
        if kind == "combine_per_key":
            label = f"combine-write {self._describe(node)}"
            if node.lifted_from is not None:
                label += f" (lifted from group '{node.lifted_from}')"
            if (
                self.columnar
                and node.extra is not None
                and len(node.extra) > 3
                and node.extra[3] is not None
            ):
                label += " [vectorized fold]"
            write = self._render_write(
                node.deps[0], lines, memo, label=label, scope=scope
            )
            return self._emit(
                lines,
                f"combine-read {self._describe(node)}{fused_note}"
                f"{self._reuse_note(node)} <- {write}",
                scope,
            )
        if kind == "cogroup":
            writes = []
            for tag, dep in enumerate(node.deps):
                if self.optimize:
                    writes.append(
                        self._render_write(
                            dep, lines, memo,
                            label=f"cogroup-write #{tag} {self._describe(node)}",
                            scope=scope,
                        )
                    )
                else:
                    dep_ref = self._render_plan(dep, lines, memo)
                    writes.append(
                        self._emit(
                            lines,
                            f"cogroup-write #{tag} {self._describe(node)} "
                            f"<- {dep_ref}",
                            scope,
                        )
                    )
            return self._emit(
                lines,
                f"cogroup-read {self._describe(node)}{fused_note} <- "
                + ", ".join(writes),
                scope,
            )
        if kind == "flatten":
            dep_refs = [
                self._render_plan(dep, lines, memo) for dep in node.deps
            ]
            return self._emit(
                lines,
                f"flatten {self._describe(node)}{fused_note}"
                f"{self._reuse_note(node)} <- " + ", ".join(dep_refs),
                scope,
            )
        if kind == "source":  # uncached source: pipeline was closed
            return self._emit(lines, f"read source '{node.name}'", scope)
        raise AssertionError(  # pragma: no cover - construction bug
            f"unknown node kind {kind!r}"
        )


class PCollection:
    """Immutable sharded bag; transforms build DAG nodes, sinks execute."""

    def __init__(self, pipeline: Pipeline, node: _Node, *, keyed: bool) -> None:
        self.pipeline = pipeline
        self._node = node
        self.keyed = keyed

    # -- inspection ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.pipeline.num_shards

    @property
    def is_materialized(self) -> bool:
        """True once this collection's shards have been computed."""
        return self._node.cached is not None

    @property
    def _shards(self) -> List[Any]:
        """The stored shards, materializing on first access."""
        return self.pipeline._materialize(self._node)

    def explain(
        self, *, costs: Optional[bool] = None, reuse: bool = False
    ) -> str:
        """Render the optimized physical plan for this collection.

        Does not execute anything, but does apply the same logical
        rewrites (combiner lifting) a sink would, so the rendered plan is
        exactly what :meth:`run` will execute.  Intended for golden-plan
        tests and debugging.

        ``costs`` appends the cost model's predicted wall time to every
        stage line; it defaults to on exactly when the pipeline runs with
        an adaptive planner, so existing golden plans are unaffected.
        ``reuse`` (off by default) annotates stages whose checkpointed
        boundary already exists on disk — see ``Pipeline._explain``.
        """
        return self.pipeline._explain(self._node, costs=costs, reuse=reuse)

    def count(self) -> int:
        """Total element count (a distributed aggregate, O(1) driver state)."""
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def to_list(self) -> List[Any]:
        """Materialize everything on the driver — test/debug escape hatch.

        Metered via ``materialized_records`` so benches can assert the
        production path never calls it on large collections.
        """
        out = list(itertools.chain.from_iterable(self.iter_shards()))
        self.pipeline.metrics.observe_materialize(len(out))
        return out

    def iter_shards(self) -> Iterator[List[Any]]:
        """Yield each shard's records (loading spilled shards one at a time).

        Columnar shards convert to rows here — the driver-facing contract
        is always a list of records, whatever layout the stage produced.
        """
        for shard in self._shards:
            yield as_records(_resolve(shard))

    def run(self) -> "PCollection":
        """Force execution of this collection's DAG; returns self."""
        self.pipeline._materialize(self._node)
        return self

    def cache(self) -> "PCollection":
        """Materialize and pin this collection's shards (alias of run())."""
        return self.run()

    # -- composite transforms ----------------------------------------------

    def apply(self, transform: "PTransform", *, name: Optional[str] = None) -> "PCollection":
        """Apply a named composite transform (see :class:`PTransform`).

        Expands the transform inside a composite scope, so
        :meth:`explain` renders its stages as a named group.  ``name``
        overrides the transform's own label for this application.
        ``pcoll | transform`` is sugar for ``pcoll.apply(transform)``.
        """
        expand = getattr(transform, "expand", None)
        if not callable(expand):
            raise TypeError(
                "apply() takes a PTransform (an object with "
                f"expand(pcoll)), got {type(transform).__name__}"
            )
        label = name if name is not None else (
            getattr(transform, "name", None) or type(transform).__name__
        )
        with self.pipeline.composite_scope(label):
            result = expand(self)
        if not isinstance(result, PCollection):
            raise TypeError(
                f"composite '{label}' must expand to a PCollection, "
                f"got {type(result).__name__}"
            )
        return result

    def __or__(self, transform: "PTransform") -> "PCollection":
        return self.apply(transform)

    # -- element-wise transforms (no shuffle) --------------------------------

    def _derive(
        self, kind: str, fn, *, keyed: bool, extra=None, name: str = ""
    ) -> "PCollection":
        node = self.pipeline._new_node(
            kind, (self._node,), fn, extra, name=name
        )
        return PCollection(self.pipeline, node, keyed=keyed)

    def map(self, fn: Callable[[Any], Any], *, name: str = "map") -> "PCollection":
        """Apply ``fn`` per element."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("map", fn, keyed=False, name=name)

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], *, name: str = "flat_map"
    ) -> "PCollection":
        """Apply ``fn`` per element, flattening the returned iterables."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("flat_map", fn, keyed=False, name=name)

    def filter(
        self, predicate: Callable[[Any], bool], *, name: str = "filter"
    ) -> "PCollection":
        """Keep elements where ``predicate`` holds; keyed-ness is preserved."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("filter", predicate, keyed=self.keyed, name=name)

    def key_by(self, fn: Callable[[Any], Any], *, name: str = "key_by") -> "PCollection":
        """Emit ``(fn(x), x)`` and shuffle by the new key."""
        self.pipeline.metrics.count_stage(name)
        keyed = self._derive(
            "map", lambda x, _fn=fn: (_fn(x), x), keyed=False, name=name
        )
        return keyed._derive("reshard", None, keyed=True, name=name)

    def map_values(
        self, fn: Callable[[Any], Any], *, name: str = "map_values"
    ) -> "PCollection":
        """Apply ``fn`` to values of a keyed collection (keys untouched).

        When ``fn`` is a :class:`Fold` and this collection is the output
        of ``group_by_key``, the optimizer lifts the pair into
        ``combine_per_key`` (pre-shuffle partial aggregation).
        """
        self._require_keyed("map_values")
        self.pipeline.metrics.count_stage(name)
        return self._derive("map_values", fn, keyed=True, name=name)

    def as_keyed(self, *, name: str = "as_keyed") -> "PCollection":
        """Interpret ``(key, value)`` elements as keyed and shuffle by key."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("reshard", None, keyed=True, name=name)

    # -- shuffling transforms --------------------------------------------

    def group_by_key(self, *, name: str = "group_by_key") -> "PCollection":
        """Beam's GroupByKey: ``(key, value)*`` → ``(key, [values])``.

        Requires keyed input.  Output is keyed (one element per key).
        """
        self._require_keyed("group_by_key")
        self.pipeline.metrics.count_stage(name)
        return self._derive("group", None, keyed=True, name=name)

    def combine_per_key(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        batch: Optional[Callable[[list], Any]] = None,
        name: str = "combine_per_key",
    ) -> "PCollection":
        """Beam CombinePerKey with combiner lifting.

        Each input shard pre-combines locally (``zero``/``add``), then only
        per-key accumulators shuffle (``merge``) — the same record-volume
        optimization Beam's combiner lifting performs.  ``batch``, when
        given and the columnar runtime is on, replaces the per-record
        ``add`` loop with one whole-value-list call per key (must be
        bit-identical to folding ``add`` from ``zero()``).
        """
        self._require_keyed("combine_per_key")
        self.pipeline.metrics.count_stage(name)
        return self._derive(
            "combine_per_key", None, keyed=True,
            extra=(zero, add, merge, batch),
            name=name,
        )

    def combine_globally(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        name: str = "combine_globally",
    ) -> Any:
        """Global combine: per-shard accumulate, then merge on the driver.

        A sink: materializes this collection, then folds each shard
        (executor-parallel) and merges the per-shard accumulators —
        O(num_shards) driver state, matching Beam's CombineGlobally contract.
        """
        self.pipeline.metrics.count_stage(name)
        shards = self._shards
        accumulators = self.pipeline._run_stage(_make_folder(zero, add), shards)
        result = zero()
        for (acc,) in accumulators:
            result = merge(result, acc)
        return result

    def reshuffle(self, *, name: str = "reshuffle") -> "PCollection":
        """Round-robin rebalance (breaks fusion / fixes skew)."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("reshuffle", None, keyed=False, name=name)

    # -- helpers ----------------------------------------------------------

    def _require_keyed(self, op: str) -> None:
        if not self.keyed:
            raise TypeError(
                f"{op} requires a keyed PCollection of (key, value) pairs; "
                "call as_keyed()/key_by() first"
            )
