"""PCollection and Pipeline: the core of the Beam-like engine.

A :class:`PCollection` is an immutable, sharded bag of elements.  Keyed
elements are ``(key, value)`` tuples; shuffles route by a stable hash of the
key so all engine semantics match Beam's (per-key grouping is total,
cross-key ordering is unspecified).

Execution model
---------------
Transforms are **lazy**: ``map``/``flat_map``/``filter``/``key_by``/
``group_by_key``/``combine_per_key``/``reshuffle`` build nodes in an operator
DAG instead of executing.  Work happens only at *sinks* — :meth:`PCollection.
count`, :meth:`~PCollection.to_list`, :meth:`~PCollection.iter_shards`,
:meth:`~PCollection.combine_globally`, and the explicit :meth:`~PCollection.
run`/:meth:`~PCollection.cache`.  At a sink the engine:

1. walks the DAG up to materialized ancestors,
2. *fuses* adjacent element-wise stages (and element-wise producers of a
   shuffle write) into a single generator pass over each shard
   (``metrics.fused_stages`` counts the stages eliminated),
3. hands each physical stage's per-shard work to the pipeline's
   :class:`~repro.dataflow.executor.Executor` (sequential, shard-parallel
   threads, or a persistent pool of worker processes),
4. caches the materialized shards on the node and truncates its lineage, so
   dropped intermediates are freed exactly like the old eager engine.

Sharing: materialized nodes execute once, and fusion stops at any
element-wise node that already has multiple consumers, materializing it
instead.  The one lazy-engine caveat (same as Spark's uncached-RDD
semantics): an element-wise intermediate that was fused through — because
it had a single consumer at the time — is not cached, so a *new* consumer
derived after that sink re-runs its chain.  DoFns are pure throughout this
codebase, so results never change; call :meth:`PCollection.cache` on an
intermediate you will fan out from later to pin it.

Spilling (``spill_to_disk=True``) happens only at materialization
boundaries: fused intermediates never touch storage, and one shard is
resident at a time under the sequential backend (one per worker under the
multiprocess backend).

Metrics semantics: ``stage_counts`` are recorded when transforms are
*built* (identical to the eager engine), ``shuffled_records`` /
``materialized_records`` when they execute.  With ``fuse=False`` and the
sequential executor, all counters — including ``peak_shard_records`` —
are byte-identical to the historical eager engine; fusion can only lower
``peak_shard_records`` because fused intermediates never exist as shards.

There is intentionally no operation that hands a whole PCollection to user
code; :meth:`PCollection.to_list` is the explicit test-only escape hatch and
records itself in the metrics.
"""

from __future__ import annotations

import itertools
import numbers
import os
import pickle
import shutil
import tempfile
import uuid
import weakref
from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.dataflow.executor import Executor, _resolve, resolve_executor
from repro.dataflow.metrics import PipelineMetrics


class _PipelineState:
    """Shared liveness flag, visible to spilled shards (even across fork)."""

    __slots__ = ("closed",)

    def __init__(self) -> None:
        self.closed = False


class _DiskShard:
    """A shard spilled to disk; loaded lazily, one shard in memory at a time.

    Supports ``len`` without loading (count cached at write time).
    """

    __slots__ = ("path", "_count", "_state")

    def __init__(self, path: str, records: list, state: _PipelineState) -> None:
        self.path = path
        self._count = len(records)
        self._state = state
        with open(path, "wb") as fh:
            pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self) -> list:
        if self._state.closed:
            raise RuntimeError("pipeline closed")
        with open(self.path, "rb") as fh:
            return pickle.load(fh)

    def __len__(self) -> int:
        return self._count


class _ShardGroup:
    """Aligned shards of a Flatten's inputs, presented as one virtual shard.

    Implements the shard protocol (``len`` without loading; ``load``
    resolves each part), so Flatten runs through the executor like every
    other stage and spilled parts are loaded inside the worker, never on
    the driver.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: List[Any]) -> None:
        self.parts = parts

    def __len__(self) -> int:
        return sum(len(part) for part in self.parts)

    def load(self) -> list:
        out: list = []
        for part in self.parts:
            out.extend(_resolve(part))
        return out


def _stable_shard(key: Any, num_shards: int) -> int:
    """Deterministic shard assignment (Python hash is salted for str only).

    Integral keys — Python ``int`` and NumPy integer scalars alike — shard
    by value, so ``5`` and ``np.int64(5)`` always land on the same shard.
    """
    if isinstance(key, numbers.Integral):
        return int(key) % num_shards
    if isinstance(key, tuple):
        acc = 0
        for part in key:
            acc = (acc * 1_000_003 + _stable_shard(part, 2**61 - 1)) % (2**61 - 1)
        return acc % num_shards
    # Fall back to a stable string hash (FNV-1a).
    data = str(key).encode()
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) % (1 << 64)
    return h % num_shards


# -- operator DAG ----------------------------------------------------------

#: Node kinds that are element-wise (shard-local, fusable).
_ELEMENTWISE = frozenset({"map", "flat_map", "filter", "map_values"})


class _Node:
    """One operator in the lazy DAG.

    ``cached`` holds the materialized (possibly spilled) shards once the
    node has executed; materialization also truncates ``deps`` so upstream
    intermediates become collectable, mirroring the eager engine's memory
    profile.  ``consumers`` counts downstream nodes built on this one:
    fusion never reaches through a node that has more than one consumer at
    materialization time — it materializes instead, so subgraphs shared by
    the already-built consumers execute once.  A consumer releases its
    claim when it materializes (lineage truncation decrements its deps'
    counts), so only *live* consumers block fusion.  (A consumer derived
    *after* the node was fused through recomputes the chain; ``cache()``
    pins.)
    """

    __slots__ = (
        "kind", "deps", "fn", "extra", "cached", "consumers",
        "claims_released", "__weakref__"
    )

    def __init__(self, kind: str, deps: tuple = (), fn=None, extra=None) -> None:
        self.kind = kind
        self.deps = deps
        self.fn = fn
        self.extra = extra
        self.cached: Optional[list] = None
        self.consumers = 0
        self.claims_released = False

    def release_claims(self) -> None:
        """Drop this node's claim on its deps' ``consumers`` counts.

        Called once — when the node materializes (lineage truncation) or
        when it is fused through into an executing stage.  The flag guards
        against double release: a fused-through node may still materialize
        directly later (late-consumer recompute), and decrementing twice
        would let fusion reach through deps with live consumers.
        """
        if not self.claims_released:
            self.claims_released = True
            for dep in self.deps:
                dep.consumers -= 1


def _iter_map(it, fn):
    return map(fn, it)


def _iter_flat_map(it, fn):
    return itertools.chain.from_iterable(map(fn, it))


def _iter_filter(it, fn):
    return filter(fn, it)


def _iter_map_values(it, fn):
    return ((k, fn(v)) for k, v in it)


_OP_ITER = {
    "map": _iter_map,
    "flat_map": _iter_flat_map,
    "filter": _iter_filter,
    "map_values": _iter_map_values,
}


def _chain_iter(records: list, ops: tuple):
    """Lazily thread one shard through a fused element-wise chain."""
    it: Iterable[Any] = records
    for kind, fn in ops:
        it = _OP_ITER[kind](it, fn)
    return it


def _make_chain_fn(ops):
    """Stage: fused element-wise chain, one pass per shard."""
    ops = tuple(ops)

    def run_chain(records, _ops=ops):
        return list(_chain_iter(records, _ops))

    return run_chain


def _make_keyed_bucketer(ops, num_shards):
    """Stage: shuffle write — fuse the producing chain into key routing."""
    ops = tuple(ops)

    def route(records, _ops=ops, _num=num_shards):
        buckets: List[list] = [[] for _ in range(_num)]
        for element in _chain_iter(records, _ops):
            buckets[_stable_shard(element[0], _num)].append(element)
        return buckets

    return route


def _make_precombiner(ops, zero, add, num_shards):
    """Stage: combiner lifting — local pre-combine, then bucket partials."""
    ops = tuple(ops)

    def precombine(records, _ops=ops, _zero=zero, _add=add, _num=num_shards):
        local: dict = {}
        for key, value in _chain_iter(records, _ops):
            acc = local.get(key)
            local[key] = _add(_zero() if acc is None else acc, value)
        buckets: List[list] = [[] for _ in range(_num)]
        for key, acc in local.items():
            buckets[_stable_shard(key, _num)].append((key, acc))
        return buckets

    return precombine


def _make_combiner_merger(merge):
    """Stage: merge routed per-key accumulators on the destination shard."""

    def merge_shard(records, _merge=merge):
        merged: dict = {}
        for key, acc in records:
            prev = merged.get(key)
            merged[key] = acc if prev is None else _merge(prev, acc)
        return list(merged.items())

    return merge_shard


def _flatten_shard(records):
    """Stage: Flatten — the concatenation happened in ``_ShardGroup.load``
    (inside the executor); the stage itself is the identity."""
    return records


def _group_shard(records):
    """Stage: GroupByKey's per-shard grouping (input already key-routed)."""
    groups: dict = {}
    for key, value in records:
        groups.setdefault(key, []).append(value)
    return list(groups.items())


def _make_cogroup_bucketer(tag, num_shards):
    """Stage: tagged shuffle write for CoGroupByKey."""

    def route(records, _tag=tag, _num=num_shards):
        buckets: List[list] = [[] for _ in range(_num)]
        for key, value in records:
            buckets[_stable_shard(key, _num)].append((key, _tag, value))
        return buckets

    return route


def _make_cogroup_grouper(n_inputs):
    """Stage: build the per-key tuple-of-value-lists for CoGroupByKey."""

    def group(records, _n=n_inputs):
        groups: dict = {}
        for key, tag, value in records:
            entry = groups.get(key)
            if entry is None:
                entry = tuple([] for _ in range(_n))
                groups[key] = entry
            entry[tag].append(value)
        return list(groups.items())

    return group


def _make_folder(zero, add):
    """Stage: CombineGlobally's per-shard accumulation."""

    def fold(records, _zero=zero, _add=add):
        acc = _zero()
        for element in records:
            acc = _add(acc, element)
        return [acc]

    return fold


class Pipeline:
    """Factory, scheduler, and metrics scope for PCollections.

    Parameters
    ----------
    num_shards:
        Logical worker count.  Memory metering reports the max records any
        one shard held, so more shards = smaller per-worker footprint.
    spill_to_disk:
        Store materialized shards on disk (one resident at a time under the
        sequential executor) — the literal larger-than-memory mode.
    executor:
        ``"sequential"`` (default), ``"thread"``, ``"multiprocess"``, or an
        :class:`~repro.dataflow.executor.Executor` instance.  Backends are
        result- and metrics-equivalent; thread runs shards of a stage on a
        persistent thread pool, multiprocess on a persistent pool of forked
        worker processes.  An executor created here (from a string) is
        closed by :meth:`close`; a passed-in instance is not — it can be
        shared across pipelines and outlives each of them.
    fuse:
        Collapse adjacent element-wise stages (and element-wise producers
        of shuffle writes) into one pass per shard.  ``False`` reproduces
        the eager engine's stage-by-stage execution byte-for-byte,
        including ``peak_shard_records``.
    """

    def __init__(
        self,
        num_shards: int = 8,
        *,
        spill_to_disk: bool = False,
        executor: "str | Executor" = "sequential",
        fuse: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.metrics = PipelineMetrics()
        self.spill_to_disk = bool(spill_to_disk)
        self.fuse = bool(fuse)
        self.executor = resolve_executor(executor)
        self._owns_executor = not isinstance(executor, Executor)
        self._state = _PipelineState()
        self._nodes: "weakref.WeakSet[_Node]" = weakref.WeakSet()
        self._spill_dir: Optional[str] = None
        if spill_to_disk:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-dataflow-")

    def _store_shard(self, records: list):
        """Keep a shard in memory, or spill it to disk when enabled."""
        if not self.spill_to_disk:
            return records
        path = os.path.join(self._spill_dir, f"{uuid.uuid4().hex}.pkl")
        return _DiskShard(path, records, self._state)

    def close(self) -> None:
        """Tear the pipeline down: drop every node's shards, delete spills.

        Any later materialization — or load of an already-handed-out spilled
        shard — raises ``RuntimeError("pipeline closed")``.
        """
        self._state.closed = True
        for node in list(self._nodes):
            node.cached = None
            node.deps = ()
            node.fn = None
            node.extra = None
        if self._spill_dir and os.path.isdir(self._spill_dir):
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sources -----------------------------------------------------------

    def create(self, elements: Iterable[Any], *, name: str = "create") -> "PCollection":
        """Materialize an iterable as a round-robin-sharded PCollection."""
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for i, element in enumerate(elements):
            shards[i % self.num_shards].append(element)
        self.metrics.count_stage(name)
        return self._from_materialized(shards, keyed=False)

    def create_keyed(
        self, pairs: Iterable[Tuple[Any, Any]], *, name: str = "create_keyed"
    ) -> "PCollection":
        """Materialize ``(key, value)`` pairs, sharded by key."""
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for key, value in pairs:
            shards[_stable_shard(key, self.num_shards)].append((key, value))
        self.metrics.count_stage(name)
        return self._from_materialized(shards, keyed=True)

    # -- DAG construction --------------------------------------------------

    def _new_node(self, kind: str, deps: tuple = (), fn=None, extra=None) -> _Node:
        node = _Node(kind, deps, fn, extra)
        for dep in deps:
            dep.consumers += 1
        self._nodes.add(node)
        return node

    def _from_materialized(self, shards: List[list], *, keyed: bool) -> "PCollection":
        node = self._new_node("source")
        self._finish_node(node, shards)
        return PCollection(self, node, keyed=keyed)

    def _finish_node(self, node: _Node, raw_shards: List[list]) -> List[Any]:
        """Store + meter a node's output shards, then truncate its lineage.

        Truncation releases the node's claim on its deps: their
        ``consumers`` counts drop so a chain derived from a dep *after*
        this sink still fuses (``_upstream_chain`` stops at nodes with
        multiple live consumers; a stale count would block fusion forever).
        """
        stored = [self._store_shard(shard) for shard in raw_shards]
        for shard in stored:
            self.metrics.observe_shard(len(shard))
        node.cached = stored
        node.release_claims()
        node.deps = ()
        node.fn = None
        node.extra = None
        return stored

    # -- execution ---------------------------------------------------------

    def _materialize_node(self, node: _Node) -> List[Any]:
        """Execute the DAG below ``node`` (cached subgraphs run once)."""
        if node.cached is not None:
            return node.cached
        if self._state.closed:
            raise RuntimeError("pipeline closed")
        kind = node.kind
        if kind == "source":
            # Sources are cached at creation; losing the cache means close()
            # dropped it.
            raise RuntimeError("pipeline closed")
        if kind in _ELEMENTWISE:
            raw = self._exec_elementwise(node)
        elif kind == "reshard":
            raw = self._shuffle_by_key(node.deps[0])
        elif kind == "group":
            raw = self._exec_group(node)
        elif kind == "combine_per_key":
            raw = self._exec_combine_per_key(node)
        elif kind == "reshuffle":
            raw = self._exec_reshuffle(node)
        elif kind == "flatten":
            raw = self._exec_flatten(node)
        elif kind == "cogroup":
            raw = self._exec_cogroup(node)
        else:  # pragma: no cover - construction bug
            raise AssertionError(f"unknown node kind {kind!r}")
        return self._finish_node(node, raw)

    def _run_stage(self, fn, shards, *, fused: int = 0) -> List[Any]:
        out = self.executor.run_stage(fn, shards)
        self.metrics.observe_stage_execution(fused=fused)
        return out

    def _upstream_chain(self, dep: _Node):
        """Collect the fusable element-wise chain above (and including) ``dep``.

        Returns ``(ops, base)`` where ``ops`` are ``(kind, fn)`` pairs in
        execution order and ``base`` is the first non-fusable (or already
        materialized) ancestor.  Fusion stops at nodes with multiple
        consumers — they materialize so the shared work runs once.  With
        ``fuse=False`` the chain is always empty, so every node
        materializes individually.
        """
        chain: List[_Node] = []
        cur = dep
        while (
            self.fuse
            and cur.kind in _ELEMENTWISE
            and cur.cached is None
            and cur.consumers <= 1
        ):
            chain.append(cur)
            cur = cur.deps[0]
        chain.reverse()
        # The chain is about to be consumed by the executing stage: release
        # each fused-through node's claim on its dep (after the walk, so the
        # stop decisions above used the pre-release counts).  Without this,
        # a chain of length >= 2 leaves stale claims on its interior nodes
        # and anything derived from them after the sink can never fuse.
        for fused_node in chain:
            fused_node.release_claims()
        return [(n.kind, n.fn) for n in chain], cur

    def _exec_elementwise(self, node: _Node) -> List[list]:
        ops, base = self._upstream_chain(node.deps[0])
        ops.append((node.kind, node.fn))
        base_shards = self._materialize_node(base)
        return self._run_stage(
            _make_chain_fn(ops), base_shards, fused=len(ops) - 1
        )

    def _shuffle_by_key(self, dep: _Node) -> List[list]:
        """Shuffle write + driver-side merge; fuses the producing chain."""
        ops, base = self._upstream_chain(dep)
        base_shards = self._materialize_node(base)
        num = self.num_shards
        bucket_lists = self._run_stage(
            _make_keyed_bucketer(ops, num), base_shards, fused=len(ops)
        )
        shards: List[list] = [[] for _ in range(num)]
        moved = 0
        for buckets in bucket_lists:
            for i, bucket in enumerate(buckets):
                shards[i].extend(bucket)
                moved += len(bucket)
        self.metrics.observe_shuffle(moved)
        return shards

    def _exec_group(self, node: _Node) -> List[list]:
        resharded = self._shuffle_by_key(node.deps[0])
        # The key-routed intermediate is a real per-worker footprint (the
        # eager engine materialized it); meter it even though it is never
        # stored.
        for shard in resharded:
            self.metrics.observe_shard(len(shard))
        return self._run_stage(_group_shard, resharded)

    def _exec_combine_per_key(self, node: _Node) -> List[list]:
        zero, add, merge = node.extra
        ops, base = self._upstream_chain(node.deps[0])
        base_shards = self._materialize_node(base)
        num = self.num_shards
        bucket_lists = self._run_stage(
            _make_precombiner(ops, zero, add, num), base_shards, fused=len(ops)
        )
        partials: List[list] = [[] for _ in range(num)]
        moved = 0
        for buckets in bucket_lists:
            for i, bucket in enumerate(buckets):
                partials[i].extend(bucket)
                moved += len(bucket)
        self.metrics.observe_shuffle(moved)
        return self._run_stage(_make_combiner_merger(merge), partials)

    def _exec_reshuffle(self, node: _Node) -> List[list]:
        ops, base = self._upstream_chain(node.deps[0])
        base_shards = self._materialize_node(base)
        transformed = self._run_stage(
            _make_chain_fn(ops), base_shards, fused=len(ops)
        )
        num = self.num_shards
        shards: List[list] = [[] for _ in range(num)]
        moved = 0
        for records in transformed:
            for element in records:
                shards[moved % num].append(element)
                moved += 1
        self.metrics.observe_shuffle(moved)
        return shards

    def _exec_flatten(self, node: _Node) -> List[list]:
        dep_shards = [self._materialize_node(dep) for dep in node.deps]
        groups = [
            _ShardGroup([stored[i] for stored in dep_shards])
            for i in range(self.num_shards)
        ]
        return self._run_stage(_flatten_shard, groups)

    def _exec_cogroup(self, node: _Node) -> List[list]:
        n_inputs = node.extra
        num = self.num_shards
        routed: List[list] = [[] for _ in range(num)]
        moved = 0
        for tag, dep in enumerate(node.deps):
            stored = self._materialize_node(dep)
            bucket_lists = self._run_stage(
                _make_cogroup_bucketer(tag, num), stored
            )
            for buckets in bucket_lists:
                for i, bucket in enumerate(buckets):
                    routed[i].extend(bucket)
                    moved += len(bucket)
        self.metrics.observe_shuffle(moved)
        return self._run_stage(_make_cogroup_grouper(n_inputs), routed)


class PCollection:
    """Immutable sharded bag; transforms build DAG nodes, sinks execute."""

    def __init__(self, pipeline: Pipeline, node: _Node, *, keyed: bool) -> None:
        self.pipeline = pipeline
        self._node = node
        self.keyed = keyed

    # -- inspection ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.pipeline.num_shards

    @property
    def is_materialized(self) -> bool:
        """True once this collection's shards have been computed."""
        return self._node.cached is not None

    @property
    def _shards(self) -> List[Any]:
        """The stored shards, materializing on first access."""
        return self.pipeline._materialize_node(self._node)

    def count(self) -> int:
        """Total element count (a distributed aggregate, O(1) driver state)."""
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def to_list(self) -> List[Any]:
        """Materialize everything on the driver — test/debug escape hatch.

        Metered via ``materialized_records`` so benches can assert the
        production path never calls it on large collections.
        """
        out = list(itertools.chain.from_iterable(self.iter_shards()))
        self.pipeline.metrics.observe_materialize(len(out))
        return out

    def iter_shards(self) -> Iterator[List[Any]]:
        """Yield each shard's records (loading spilled shards one at a time)."""
        for shard in self._shards:
            yield _resolve(shard)

    def run(self) -> "PCollection":
        """Force execution of this collection's DAG; returns self."""
        self.pipeline._materialize_node(self._node)
        return self

    def cache(self) -> "PCollection":
        """Materialize and pin this collection's shards (alias of run())."""
        return self.run()

    # -- element-wise transforms (no shuffle) --------------------------------

    def _derive(self, kind: str, fn, *, keyed: bool, extra=None) -> "PCollection":
        node = self.pipeline._new_node(kind, (self._node,), fn, extra)
        return PCollection(self.pipeline, node, keyed=keyed)

    def map(self, fn: Callable[[Any], Any], *, name: str = "map") -> "PCollection":
        """Apply ``fn`` per element."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("map", fn, keyed=False)

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], *, name: str = "flat_map"
    ) -> "PCollection":
        """Apply ``fn`` per element, flattening the returned iterables."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("flat_map", fn, keyed=False)

    def filter(
        self, predicate: Callable[[Any], bool], *, name: str = "filter"
    ) -> "PCollection":
        """Keep elements where ``predicate`` holds; keyed-ness is preserved."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("filter", predicate, keyed=self.keyed)

    def key_by(self, fn: Callable[[Any], Any], *, name: str = "key_by") -> "PCollection":
        """Emit ``(fn(x), x)`` and shuffle by the new key."""
        self.pipeline.metrics.count_stage(name)
        keyed = self._derive("map", lambda x, _fn=fn: (_fn(x), x), keyed=False)
        return keyed._derive("reshard", None, keyed=True)

    def map_values(
        self, fn: Callable[[Any], Any], *, name: str = "map_values"
    ) -> "PCollection":
        """Apply ``fn`` to values of a keyed collection (keys untouched)."""
        self._require_keyed("map_values")
        self.pipeline.metrics.count_stage(name)
        return self._derive("map_values", fn, keyed=True)

    def as_keyed(self, *, name: str = "as_keyed") -> "PCollection":
        """Interpret ``(key, value)`` elements as keyed and shuffle by key."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("reshard", None, keyed=True)

    # -- shuffling transforms --------------------------------------------

    def group_by_key(self, *, name: str = "group_by_key") -> "PCollection":
        """Beam's GroupByKey: ``(key, value)*`` → ``(key, [values])``.

        Requires keyed input.  Output is keyed (one element per key).
        """
        self._require_keyed("group_by_key")
        self.pipeline.metrics.count_stage(name)
        return self._derive("group", None, keyed=True)

    def combine_per_key(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        name: str = "combine_per_key",
    ) -> "PCollection":
        """Beam CombinePerKey with combiner lifting.

        Each input shard pre-combines locally (``zero``/``add``), then only
        per-key accumulators shuffle (``merge``) — the same record-volume
        optimization Beam's combiner lifting performs.
        """
        self._require_keyed("combine_per_key")
        self.pipeline.metrics.count_stage(name)
        return self._derive(
            "combine_per_key", None, keyed=True, extra=(zero, add, merge)
        )

    def combine_globally(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        name: str = "combine_globally",
    ) -> Any:
        """Global combine: per-shard accumulate, then merge on the driver.

        A sink: materializes this collection, then folds each shard
        (executor-parallel) and merges the per-shard accumulators —
        O(num_shards) driver state, matching Beam's CombineGlobally contract.
        """
        self.pipeline.metrics.count_stage(name)
        shards = self._shards
        accumulators = self.pipeline._run_stage(_make_folder(zero, add), shards)
        result = zero()
        for (acc,) in accumulators:
            result = merge(result, acc)
        return result

    def reshuffle(self, *, name: str = "reshuffle") -> "PCollection":
        """Round-robin rebalance (breaks fusion / fixes skew)."""
        self.pipeline.metrics.count_stage(name)
        return self._derive("reshuffle", None, keyed=False)

    # -- helpers ----------------------------------------------------------

    def _require_keyed(self, op: str) -> None:
        if not self.keyed:
            raise TypeError(
                f"{op} requires a keyed PCollection of (key, value) pairs; "
                "call as_keyed()/key_by() first"
            )
