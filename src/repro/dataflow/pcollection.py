"""PCollection and Pipeline: the core of the Beam-like engine.

A :class:`PCollection` is an immutable, sharded bag of elements.  Keyed
elements are ``(key, value)`` tuples; shuffles route by ``hash(key) %
num_shards`` so all engine semantics match Beam's (per-key grouping is total,
cross-key ordering is unspecified).

The executor is deliberately simple — shards are plain lists processed one
at a time — but every operation is written shard-locally, so the
``peak_shard_records`` metric faithfully reports what a real distributed
runner would have to hold per worker.  There is intentionally no operation
that hands a whole PCollection to user code; :meth:`PCollection.to_list` is
the explicit test-only escape hatch and records itself in the metrics.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
import uuid
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.dataflow.metrics import PipelineMetrics


class _DiskShard:
    """A shard spilled to disk; loaded lazily, one shard in memory at a time.

    Supports ``len`` without loading (count cached at write time).
    """

    __slots__ = ("path", "_count")

    def __init__(self, path: str, records: list) -> None:
        self.path = path
        self._count = len(records)
        with open(path, "wb") as fh:
            pickle.dump(records, fh, protocol=pickle.HIGHEST_PROTOCOL)

    def load(self) -> list:
        with open(self.path, "rb") as fh:
            return pickle.load(fh)

    def __len__(self) -> int:
        return self._count


def _stable_shard(key: Any, num_shards: int) -> int:
    """Deterministic shard assignment (Python hash is salted for str only)."""
    if isinstance(key, (int,)):
        return int(key) % num_shards
    if isinstance(key, tuple):
        acc = 0
        for part in key:
            acc = (acc * 1_000_003 + _stable_shard(part, 2**61 - 1)) % (2**61 - 1)
        return acc % num_shards
    # Fall back to a stable string hash (FNV-1a).
    data = str(key).encode()
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) % (1 << 64)
    return h % num_shards


class Pipeline:
    """Factory and metrics scope for PCollections.

    Parameters
    ----------
    num_shards:
        Logical worker count.  Memory metering reports the max records any
        one shard held, so more shards = smaller per-worker footprint.
    """

    def __init__(
        self, num_shards: int = 8, *, spill_to_disk: bool = False
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.metrics = PipelineMetrics()
        self.spill_to_disk = bool(spill_to_disk)
        self._spill_dir: Optional[str] = None
        if spill_to_disk:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-dataflow-")

    def _store_shard(self, records: list):
        """Keep a shard in memory, or spill it to disk when enabled."""
        if not self.spill_to_disk:
            return records
        path = os.path.join(self._spill_dir, f"{uuid.uuid4().hex}.pkl")
        return _DiskShard(path, records)

    def close(self) -> None:
        """Delete any spilled shard files."""
        if self._spill_dir and os.path.isdir(self._spill_dir):
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sources -----------------------------------------------------------

    def create(self, elements: Iterable[Any], *, name: str = "create") -> "PCollection":
        """Materialize an iterable as a round-robin-sharded PCollection."""
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for i, element in enumerate(elements):
            shards[i % self.num_shards].append(element)
        self.metrics.count_stage(name)
        return PCollection(self, shards, keyed=False)

    def create_keyed(
        self, pairs: Iterable[Tuple[Any, Any]], *, name: str = "create_keyed"
    ) -> "PCollection":
        """Materialize ``(key, value)`` pairs, sharded by key."""
        shards: List[List[Any]] = [[] for _ in range(self.num_shards)]
        for key, value in pairs:
            shards[_stable_shard(key, self.num_shards)].append((key, value))
        self.metrics.count_stage(name)
        return PCollection(self, shards, keyed=True)


class PCollection:
    """Immutable sharded bag; all transforms return new PCollections."""

    def __init__(
        self, pipeline: Pipeline, shards: List[List[Any]], *, keyed: bool
    ) -> None:
        self.pipeline = pipeline
        self._shards = [pipeline._store_shard(shard) for shard in shards]
        self.keyed = keyed
        for shard in self._shards:
            pipeline.metrics.observe_shard(len(shard))

    # -- inspection ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def count(self) -> int:
        """Total element count (a distributed aggregate, O(1) driver state)."""
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def to_list(self) -> List[Any]:
        """Materialize everything on the driver — test/debug escape hatch.

        Metered via ``materialized_records`` so benches can assert the
        production path never calls it on large collections.
        """
        out = list(itertools.chain.from_iterable(self.iter_shards()))
        self.pipeline.metrics.observe_materialize(len(out))
        return out

    def iter_shards(self) -> Iterator[List[Any]]:
        """Yield each shard's records (loading spilled shards one at a time)."""
        for shard in self._shards:
            yield shard.load() if isinstance(shard, _DiskShard) else shard

    # -- element-wise transforms (no shuffle) --------------------------------

    def map(self, fn: Callable[[Any], Any], *, name: str = "map") -> "PCollection":
        """Apply ``fn`` per element."""
        self.pipeline.metrics.count_stage(name)
        return PCollection(
            self.pipeline,
            [[fn(x) for x in shard] for shard in self.iter_shards()],
            keyed=False,
        )

    def flat_map(
        self, fn: Callable[[Any], Iterable[Any]], *, name: str = "flat_map"
    ) -> "PCollection":
        """Apply ``fn`` per element, flattening the returned iterables."""
        self.pipeline.metrics.count_stage(name)
        return PCollection(
            self.pipeline,
            [
                [y for x in shard for y in fn(x)]
                for shard in self.iter_shards()
            ],
            keyed=False,
        )

    def filter(
        self, predicate: Callable[[Any], bool], *, name: str = "filter"
    ) -> "PCollection":
        """Keep elements where ``predicate`` holds; keyed-ness is preserved."""
        self.pipeline.metrics.count_stage(name)
        return PCollection(
            self.pipeline,
            [[x for x in shard if predicate(x)] for shard in self.iter_shards()],
            keyed=self.keyed,
        )

    def key_by(self, fn: Callable[[Any], Any], *, name: str = "key_by") -> "PCollection":
        """Emit ``(fn(x), x)`` and shuffle by the new key."""
        return self.map(lambda x: (fn(x), x), name=name)._reshard_by_key(name)

    def map_values(
        self, fn: Callable[[Any], Any], *, name: str = "map_values"
    ) -> "PCollection":
        """Apply ``fn`` to values of a keyed collection (keys untouched)."""
        self._require_keyed("map_values")
        self.pipeline.metrics.count_stage(name)
        return PCollection(
            self.pipeline,
            [[(k, fn(v)) for k, v in shard] for shard in self.iter_shards()],
            keyed=True,
        )

    def as_keyed(self, *, name: str = "as_keyed") -> "PCollection":
        """Interpret ``(key, value)`` elements as keyed and shuffle by key."""
        self.pipeline.metrics.count_stage(name)
        return self._reshard_by_key(name)

    # -- shuffling transforms --------------------------------------------

    def _reshard_by_key(self, name: str) -> "PCollection":
        num = self.pipeline.num_shards
        shards: List[List[Any]] = [[] for _ in range(num)]
        moved = 0
        for shard in self.iter_shards():
            for element in shard:
                key = element[0]
                shards[_stable_shard(key, num)].append(element)
                moved += 1
        self.pipeline.metrics.observe_shuffle(moved)
        return PCollection(self.pipeline, shards, keyed=True)

    def group_by_key(self, *, name: str = "group_by_key") -> "PCollection":
        """Beam's GroupByKey: ``(key, value)*`` → ``(key, [values])``.

        Requires keyed input.  Output is keyed (one element per key).
        """
        self._require_keyed("group_by_key")
        self.pipeline.metrics.count_stage(name)
        resharded = self._reshard_by_key(name)
        out_shards: List[List[Any]] = []
        for shard in resharded.iter_shards():
            groups: dict = {}
            for key, value in shard:
                groups.setdefault(key, []).append(value)
            out_shards.append(list(groups.items()))
        return PCollection(self.pipeline, out_shards, keyed=True)

    def combine_per_key(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        name: str = "combine_per_key",
    ) -> "PCollection":
        """Beam CombinePerKey with combiner lifting.

        Each input shard pre-combines locally (``zero``/``add``), then only
        per-key accumulators shuffle (``merge``) — the same record-volume
        optimization Beam's combiner lifting performs.
        """
        self._require_keyed("combine_per_key")
        self.pipeline.metrics.count_stage(name)
        num = self.pipeline.num_shards
        partials: List[List[Any]] = [[] for _ in range(num)]
        moved = 0
        for shard in self.iter_shards():
            local: dict = {}
            for key, value in shard:
                acc = local.get(key)
                local[key] = add(zero() if acc is None else acc, value)
            for key, acc in local.items():
                partials[_stable_shard(key, num)].append((key, acc))
                moved += 1
        self.pipeline.metrics.observe_shuffle(moved)
        out_shards: List[List[Any]] = []
        for shard in partials:
            merged: dict = {}
            for key, acc in shard:
                prev = merged.get(key)
                merged[key] = acc if prev is None else merge(prev, acc)
            out_shards.append(list(merged.items()))
        return PCollection(self.pipeline, out_shards, keyed=True)

    def combine_globally(
        self,
        zero: Callable[[], Any],
        add: Callable[[Any, Any], Any],
        merge: Callable[[Any, Any], Any],
        *,
        name: str = "combine_globally",
    ) -> Any:
        """Global combine: per-shard accumulate, then merge on the driver.

        Driver state is one accumulator per shard — O(num_shards), never
        O(n) — matching Beam's CombineGlobally contract.
        """
        self.pipeline.metrics.count_stage(name)
        accumulators = []
        for shard in self.iter_shards():
            acc = zero()
            for element in shard:
                acc = add(acc, element)
            accumulators.append(acc)
        result = zero()
        for acc in accumulators:
            result = merge(result, acc)
        return result

    def reshuffle(self, *, name: str = "reshuffle") -> "PCollection":
        """Round-robin rebalance (breaks fusion / fixes skew)."""
        self.pipeline.metrics.count_stage(name)
        num = self.pipeline.num_shards
        shards: List[List[Any]] = [[] for _ in range(num)]
        moved = 0
        for shard in self.iter_shards():
            for element in shard:
                shards[moved % num].append(element)
                moved += 1
        self.pipeline.metrics.observe_shuffle(moved)
        return PCollection(self.pipeline, shards, keyed=False)

    # -- helpers ----------------------------------------------------------

    def _require_keyed(self, op: str) -> None:
        if not self.keyed:
            raise TypeError(
                f"{op} requires a keyed PCollection of (key, value) pairs; "
                "call as_keyed()/key_by() first"
            )
