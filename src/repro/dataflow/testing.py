"""Beam-style assertion helpers for pipeline tests.

Apache Beam ships ``apache_beam.testing.util`` (``assert_that`` /
``equal_to``) so tests state *what* a PCollection must contain without
caring how the runner produced it.  This module provides the same idiom
for this engine, plus :func:`plan_matches` for the golden-plan tests that
pin the optimizer's physical plans::

    assert_that(pcoll, equal_to([(0, 3), (1, 4)]))
    assert_that(pcoll, plan_matches("plan (optimize=on, ...)\\n..."))

Matchers are plain callables raising ``AssertionError`` on mismatch;
:func:`assert_that` feeds content matchers the materialized elements and
plan matchers (marked with ``wants_plan``) the rendered ``explain()``
text — rendering a plan never executes a stage, so plan assertions stay
side-effect free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, Union

__all__ = ["assert_that", "equal_to", "is_empty", "plan_matches"]


def assert_that(
    pcoll, matcher: Callable[[Any], None], label: str = "assert_that"
) -> None:
    """Apply ``matcher`` to ``pcoll`` (Beam's ``assert_that`` idiom).

    Content matchers (:func:`equal_to`, :func:`is_empty`) receive the
    collection's materialized elements; matchers flagged ``wants_plan``
    (:func:`plan_matches`) receive ``pcoll.explain(costs=False)`` instead
    and execute nothing.  ``label`` prefixes the failure message.
    """
    if getattr(matcher, "wants_plan", False):
        actual: Any = pcoll.explain(costs=False)
    else:
        actual = pcoll.to_list()
    try:
        matcher(actual)
    except AssertionError as exc:
        raise AssertionError(f"{label}: {exc}") from None


def equal_to(expected: Iterable[Any]) -> Callable[[List[Any]], None]:
    """Matcher: same elements as ``expected``, in any order.

    Order across shards is an execution detail (it changes with shard
    count and executor), so the comparison is order-insensitive — sorted
    when the elements are orderable, multiset-by-repr otherwise.
    """
    expected_list = list(expected)

    def _match(actual: List[Any]) -> None:
        try:
            same = sorted(actual) == sorted(expected_list)
        except TypeError:  # unorderable / mixed types: compare as multisets
            same = sorted(map(repr, actual)) == sorted(map(repr, expected_list))
        assert same, f"expected {expected_list!r}, got {actual!r}"

    return _match


def is_empty() -> Callable[[List[Any]], None]:
    """Matcher: the collection materializes to no elements."""

    def _match(actual: List[Any]) -> None:
        assert actual == [], f"expected no elements, got {actual!r}"

    return _match


def plan_matches(
    expected: Union[str, Sequence[str]]
) -> Callable[[str], None]:
    """Matcher: the rendered physical plan is exactly ``expected``.

    ``expected`` is the full ``explain()`` text (or its lines, joined
    with newlines).  Rendered without cost annotations so the golden
    text is stable whether or not the pipeline carries a planner.  On
    mismatch the message shows a line-by-line diff, which reads far
    better than a single-string comparison for multi-stage plans.
    """
    expected_text = (
        expected if isinstance(expected, str) else "\n".join(expected)
    )

    def _match(actual: str) -> None:
        if actual == expected_text:
            return
        import difflib

        diff = "\n".join(
            difflib.unified_diff(
                expected_text.splitlines(),
                actual.splitlines(),
                fromfile="expected plan",
                tofile="actual plan",
                lineterm="",
            )
        )
        raise AssertionError(f"plan mismatch:\n{diff}")

    _match.wants_plan = True  # type: ignore[attr-defined]
    return _match
