"""Cost-model-driven adaptive planning for the dataflow engine.

Every performance knob the engine exposes (``num_shards``, executor
backend, ``broadcast_min_bytes``, optimizer lift/elide decisions,
checkpoint placement) was historically hand-tuned per beam.  This module
closes the loop described in the paper's Sec. 4.4 complexity analysis:
the cluster :class:`~repro.cluster.costmodel.CostModel` predicts what
each decision costs, and the engine's own per-stage observations
(:class:`~repro.dataflow.metrics.StageProfile`) calibrate the model so
the predictions track the machine actually running the drive.

Three layers cooperate:

*Observation* — every physical stage the engine runs appends a
:class:`StageProfile` (wall time, rows, payload bytes, shuffle volume,
vectorized flag) to ``PipelineMetrics.stage_profiles``, keyed by the same
plan digests that key checkpoints.  The planner accumulates them into a
history persisted next to the checkpoints (``stage_profiles.json``), and
``CostModel.calibrate`` refits the engine-scale throughput constants from
that history; the calibrated constants persist too (``cost_model.json``),
so repeated drives sharpen the model instead of restarting it.

*Planning* — :class:`AdaptivePlanner` answers the engine's questions:
how many shards amortize per-stage dispatch for this input size, which
executor backend is predicted fastest, what broadcast threshold, whether
a combiner lift's shuffle saving repays its pre-aggregation pass, and
whether a boundary's predicted recompute cost exceeds its checkpoint
store+load cost.  It is wired up by ``EngineOptions(adaptive=True)`` /
``--adaptive-plan``; any knob the caller sets explicitly always overrides the
planner (the engine's results are bit-identical across every decision
the planner may take, so adaptivity is purely a wall-clock matter).

*Feedback* — ``explain()`` renders the model's predicted cost per stage,
and :func:`predicted_vs_actual` turns a drive's profiles into the
``report.extra["plan_costs"]`` table comparing prediction to observed
wall time — the number the bench gates on.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, List, Optional

from repro.cluster.costmodel import CostModel
from repro.cluster.machine import MachineSpec
from repro.dataflow.metrics import PipelineMetrics, StageProfile

__all__ = [
    "AdaptivePlanner",
    "predicted_vs_actual",
    "PROFILE_HISTORY_FILE",
    "COST_MODEL_FILE",
]

PROFILE_HISTORY_FILE = "stage_profiles.json"
COST_MODEL_FILE = "cost_model.json"

# Profiles kept per plan digest; old observations age out so the model
# tracks the machine's current behavior.
_MAX_HISTORY_PER_KEY = 32
# Hard ceiling on planner-chosen shard counts.
_MAX_SHARDS = 64
# Checkpoint placement only overrides durability when the modeled saving
# is material; below this, storing is cheap insurance for crash-resume.
_MIN_CHECKPOINT_SAVING_SEC = 0.05
# Median observed stage wall above which a GIL-releasing thread pool is
# predicted to beat in-process dispatch.
_EXECUTOR_SWITCH_STAGE_SEC = 0.25


def predicted_vs_actual(
    profiles: Iterable[StageProfile], model: CostModel,
    *, shuffle_parallelism: int = 1,
) -> List[Dict[str, object]]:
    """Per-stage predicted vs observed wall time for a finished drive.

    Returns one row per profile: ``label``, ``rows``, ``vectorized``,
    ``predicted_ms``, ``actual_ms``, and ``rel_err`` (relative to the
    larger of the two, so it is symmetric and bounded by 1).
    ``shuffle_parallelism`` > 1 reflects a worker-to-worker shuffle data
    plane, where bucket volume crosses that many links concurrently.
    """
    rows: List[Dict[str, object]] = []
    for p in profiles:
        predicted_ms = 1000.0 * model.predict_stage_seconds(
            p.rows_in,
            vectorized=p.vectorized,
            shuffled_records=p.shuffled_records,
            payload_bytes=p.payload_bytes,
            shuffle_parallelism=shuffle_parallelism,
        )
        denom = max(predicted_ms, p.wall_ms, 1e-9)
        rows.append(
            {
                "label": p.label,
                "rows": p.rows_in,
                "vectorized": p.vectorized,
                "predicted_ms": predicted_ms,
                "actual_ms": p.wall_ms,
                "rel_err": abs(predicted_ms - p.wall_ms) / denom,
            }
        )
    return rows


class AdaptivePlanner:
    """Chooses engine knobs by querying the (calibrated) cost model.

    One planner serves one :class:`~repro.dataflow.options.DataflowContext`
    — it loads any persisted history/constants from ``history_dir`` (the
    context's checkpoint directory) at construction, calibrates, collects
    this drive's profiles via :meth:`record_profile`, and persists the
    merged history plus recalibrated constants on :meth:`flush`.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        *,
        machine: Optional[MachineSpec] = None,
        history_dir: Optional[str] = None,
    ) -> None:
        base = cost_model or CostModel(machine=machine or MachineSpec())
        self.history_dir = history_dir
        self.history: Dict[str, List[StageProfile]] = {}
        if history_dir is not None:
            loaded_model = self._load_model(history_dir)
            if loaded_model is not None and cost_model is None:
                base = loaded_model
            self.history = self._load_history(history_dir)
        if self.history:
            base = base.calibrate(
                p for history in self.history.values() for p in history
            )
        self.cost_model = base

    # -- observation -------------------------------------------------------

    @property
    def calibrated(self) -> bool:
        """True once at least one profile history backs the constants."""
        return bool(self.history)

    def record_profile(self, profile: StageProfile) -> None:
        key = profile.digest or f"label:{profile.label}"
        bucket = self.history.setdefault(key, [])
        bucket.append(profile)
        if len(bucket) > _MAX_HISTORY_PER_KEY:
            del bucket[: len(bucket) - _MAX_HISTORY_PER_KEY]

    def recalibrate(self) -> CostModel:
        """Refit the engine-scale constants from the accumulated history."""
        self.cost_model = self.cost_model.calibrate(
            p for history in self.history.values() for p in history
        )
        return self.cost_model

    def flush(self) -> None:
        """Recalibrate and persist history + constants next to checkpoints."""
        if self.history_dir is None:
            return
        self.recalibrate()
        os.makedirs(self.history_dir, exist_ok=True)
        payload = {
            "version": 1,
            "profiles": {
                key: [p.to_dict() for p in history]
                for key, history in sorted(self.history.items())
            },
        }
        self._write_atomic(
            os.path.join(self.history_dir, PROFILE_HISTORY_FILE),
            json.dumps(payload, sort_keys=True),
        )
        self._write_atomic(
            os.path.join(self.history_dir, COST_MODEL_FILE),
            self.cost_model.to_json(),
        )

    # -- planning decisions ------------------------------------------------

    def choose_num_shards(
        self, plan_records: Optional[int], *, base: int = 8
    ) -> int:
        """Shard count whose per-shard batch amortizes stage dispatch.

        The break-even shard size is where per-shard compute matches the
        modeled dispatch overhead; the planner targets twice that much
        parallel slack but never drops below ``base`` (more shards only
        shrink per-shard peaks — the memory-safe direction) and never
        exceeds ``_MAX_SHARDS``.
        """
        if not plan_records or plan_records <= 0:
            return base
        per_shard = max(
            64,
            int(
                0.5
                * self.cost_model.stage_overhead_sec
                * self.cost_model.records_per_sec
            ),
        )
        need = math.ceil(plan_records / per_shard)
        return max(base, min(_MAX_SHARDS, need))

    def choose_executor(self, base: str = "sequential") -> str:
        """Backend predicted fastest; results are identical either way.

        The in-process backend pays zero payload shipping, so it wins
        until the observed history shows per-stage compute heavy enough
        (numpy kernels that release the GIL) to amortize pool dispatch.
        """
        walls_ms = [
            p.wall_ms for history in self.history.values() for p in history
        ]
        if not walls_ms or (os.cpu_count() or 1) < 2:
            return base
        median_sec = sorted(walls_ms)[len(walls_ms) // 2] / 1000.0
        if base == "sequential" and median_sec > _EXECUTOR_SWITCH_STAGE_SEC:
            return "thread"
        return base

    def choose_broadcast_min_bytes(self, base: int) -> int:
        """Broadcast threshold sized to the observed stage payloads.

        When history shows stages repeatedly shipping payloads below the
        current threshold, halving down to the median payload turns the
        per-stage inline cost into a one-time content-addressed ship.
        """
        payloads = [
            p.payload_bytes
            for history in self.history.values()
            for p in history
            if p.payload_bytes > 0
        ]
        if not payloads:
            return base
        median = sorted(payloads)[len(payloads) // 2]
        if 0 < median < base:
            return max(4096, median // 2)
        return base

    def should_lift(self, plan_records: Optional[int]) -> bool:
        """Is a combiner lift's shuffle saving worth its pre-aggregation?

        Lifting fuses into the shuffle write (no extra stage), so its
        marginal cost is a small fraction of a stage dispatch; the lift
        is skipped only when the modeled volume saving cannot repay even
        that.  Unknown input sizes lift, matching the seed behavior.
        """
        if plan_records is None or plan_records <= 0:
            return True
        saving_sec = (
            plan_records
            * self.cost_model.bytes_per_record
            / self.cost_model.disk_bytes_per_sec
        )
        return saving_sec >= 0.01 * self.cost_model.stage_overhead_sec

    def should_elide(self, plan_records: Optional[int]) -> bool:
        """Is eliding a redundant reshard predicted profitable?

        Elision strictly removes a routing pass, so the modeled saving is
        never negative — the consult exists so the optimizer's rewrites
        all flow through one policy point.
        """
        n = plan_records or 0
        return self.cost_model.shuffle_seconds(n, 1) >= 0.0

    def should_checkpoint(
        self, *, recompute_sec: float, n_records: int
    ) -> bool:
        """Store this boundary, or prefer recomputing it on resume?

        Skips the store only when the modeled store+load cost exceeds the
        observed recompute cost by a material margin
        (``_MIN_CHECKPOINT_SAVING_SEC``); below that, durability wins.
        """
        store_load = self.cost_model.checkpoint_store_load_seconds(
            n_records * self.cost_model.bytes_per_record
        )
        return store_load - recompute_sec <= _MIN_CHECKPOINT_SAVING_SEC

    # -- feedback ----------------------------------------------------------

    def plan_costs(
        self, metrics: PipelineMetrics
    ) -> List[Dict[str, object]]:
        """``report.extra["plan_costs"]`` rows for a finished drive."""
        return predicted_vs_actual(metrics.stage_profiles, self.cost_model)

    # -- persistence helpers -----------------------------------------------

    @staticmethod
    def _write_atomic(path: str, text: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)

    @staticmethod
    def _load_model(history_dir: str) -> Optional[CostModel]:
        path = os.path.join(history_dir, COST_MODEL_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return CostModel.from_json(fh.read())
        except (OSError, ValueError, TypeError, KeyError):
            return None

    @staticmethod
    def _load_history(history_dir: str) -> Dict[str, List[StageProfile]]:
        path = os.path.join(history_dir, PROFILE_HISTORY_FILE)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            return {
                key: [StageProfile.from_dict(d) for d in entries]
                for key, entries in payload.get("profiles", {}).items()
            }
        except (OSError, ValueError, TypeError, KeyError):
            return {}
