"""Pluggable shard executors for the dataflow engine.

The engine compiles a lazy operator DAG into *stages*: per-shard functions
that take one shard's records and return either transformed records or
routing buckets.  An :class:`Executor` decides how those per-shard calls
run.  Two backends ship:

:class:`SequentialExecutor`
    One shard at a time on the driver — the reference backend.  Metrics and
    results are byte-identical to the historical eager engine.

:class:`MultiprocessExecutor`
    Shard-parallel execution via :mod:`concurrent.futures`.  On platforms
    with ``fork`` (Linux), DoFns do **not** need to be picklable: the stage
    payload is published in a module global before the worker pool forks, so
    children inherit it and only the shard index travels over the pipe.
    Shard *results* must still pickle (they are plain lists of Python /
    NumPy scalars everywhere in this codebase).  Without ``fork`` support
    the backend degrades to in-process execution, so results never change
    across platforms.

Both backends process each shard with the same per-shard function in the
same order, so outputs — and therefore every engine metric — are identical
regardless of the backend.  Spilled shards (:class:`~repro.dataflow.
pcollection._DiskShard`) are loaded inside the worker, never on the driver.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from typing import Any, Callable, List, Sequence

#: A stage function: one shard's records in, transformed records (or routing
#: buckets) out.
StageFn = Callable[[list], Any]


def _resolve(shard: Any) -> list:
    """Load a spilled shard; pass plain in-memory shards through."""
    return shard if isinstance(shard, list) else shard.load()


# Payload for fork-based dispatch.  Set immediately before the worker pool is
# created and cleared right after the stage completes; forked children inherit
# the value as of pool creation, so only the shard index needs pickling.
_FORK_PAYLOAD: Any = None


def _run_forked_shard(index: int):
    fn, shards = _FORK_PAYLOAD
    return fn(_resolve(shards[index]))


class Executor:
    """Strategy for running one stage's per-shard work."""

    name = "base"

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every shard, returning results in shard order."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        """Release any worker resources (pools, processes)."""


class SequentialExecutor(Executor):
    """One shard at a time on the driver (the default backend)."""

    name = "sequential"

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        return [fn(_resolve(shard)) for shard in shards]


class MultiprocessExecutor(Executor):
    """Shard-parallel stage execution over a process pool.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``min(8, cpu_count)``, floored at
        2 so the backend still runs real worker processes on single-core
        machines (results are identical either way; only wall-time differs).
    min_parallel_records:
        Stages whose total input is smaller than this run in-process — the
        fork/IPC overhead would dominate.  Set to 0 to force the pool on
        (useful in tests asserting backend equivalence on tiny data).
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        min_parallel_records: int = 2048,
    ) -> None:
        cpu = os.cpu_count() or 1
        self.max_workers = (
            int(max_workers) if max_workers else max(2, min(8, cpu))
        )
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.min_parallel_records = int(min_parallel_records)
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        global _FORK_PAYLOAD
        shards = list(shards)
        nonempty = sum(1 for s in shards if len(s))
        total = sum(len(s) for s in shards)
        workers = min(self.max_workers, max(nonempty, 1))
        if (
            not self._can_fork
            or workers < 2
            or total < self.min_parallel_records
        ):
            return [fn(_resolve(shard)) for shard in shards]
        _FORK_PAYLOAD = (fn, shards)
        try:
            ctx = multiprocessing.get_context("fork")
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx
            ) as pool:
                return list(pool.map(_run_forked_shard, range(len(shards))))
        finally:
            _FORK_PAYLOAD = None


_EXECUTORS = {
    "sequential": SequentialExecutor,
    "multiprocess": MultiprocessExecutor,
}


def resolve_executor(executor: "str | Executor | None") -> Executor:
    """Turn an executor name (or instance, or None) into an Executor."""
    if executor is None:
        return SequentialExecutor()
    if isinstance(executor, Executor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{sorted(_EXECUTORS)} or an Executor instance"
        ) from None
