"""Pluggable shard executors for the dataflow engine.

The engine compiles a lazy operator DAG into *stages*: per-shard functions
that take one shard's records and return either transformed records or
routing buckets.  An :class:`Executor` decides how those per-shard calls
run.  Three backends ship:

:class:`SequentialExecutor`
    One shard at a time on the driver — the reference backend.  Metrics and
    results are byte-identical to the historical eager engine.

:class:`ThreadExecutor`
    Shard-parallel execution on a persistent thread pool.  No fork, no
    pickling: best for DoFns dominated by GIL-releasing NumPy kernels, and
    the parallel backend of choice on platforms without ``fork``.

:class:`MultiprocessExecutor`
    Shard-parallel execution over a **persistent** pool of forked worker
    processes (fork-server style).  The pool is created once, lazily, on the
    first stage big enough to parallelize, and reused for every later stage
    until :meth:`~Executor.close` — fork-per-stage pool startup no longer
    dominates pipelines with many small stages.  Each stage's payload (the
    stage function plus the shards assigned to a worker) travels over a
    per-worker pipe, serialized with :mod:`cloudpickle` when available
    (closures and lambdas — every DoFn in this codebase — are not
    serializable with the stdlib pickler).  Without ``fork`` support or a
    working payload serializer the backend degrades to in-process
    execution, so results never change across platforms.

All backends process each shard with the same per-shard function and return
results in shard order, so outputs — and therefore every engine metric —
are identical regardless of the backend.  Spilled shards (:class:`~repro.
dataflow.pcollection._DiskShard`) are loaded inside the worker, never on
the driver.

Stage payload shapes: a stage function may return transformed records, a
list of routing buckets (shuffle writes), or — for the optimizer's
partial-aggregate DoFns — a ``(n_pre, buckets)`` tuple, where ``n_pre``
meters the records the worker-local pre-combine absorbed before the
shuffle.  Post-shuffle-fused read stages are plain composed closures
(shuffle read + element-wise consumer chain in one pass).  Executors treat
every shape opaquely: whatever the stage function returns is shipped back
per shard (the multiprocess backend pickles it), so new payload shapes
need no executor changes.

Executors are reusable across pipelines: a :class:`~repro.dataflow.
pcollection.Pipeline` only closes an executor it created itself (from a
string name), so one instance can serve several pipelines back to back —
e.g. the bounding and greedy stages of a selection run share one worker
pool.  ``run_stage`` is not re-entrant from multiple driver threads.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import multiprocessing.connection
import os
import pickle
import traceback
from typing import Any, Callable, List, Sequence, Tuple

try:  # Closure-capable serializer for the per-stage payload channel.
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised on minimal installs
    _cloudpickle = None

#: A stage function: one shard's records in, transformed records (or routing
#: buckets) out.
StageFn = Callable[[list], Any]


def _resolve(shard: Any) -> list:
    """Load a spilled shard; pass plain in-memory shards through."""
    return shard if isinstance(shard, list) else shard.load()


def _run_resolved(fn: StageFn, shard: Any) -> Any:
    return fn(_resolve(shard))


def _default_max_workers() -> int:
    """``min(8, cpu_count)``, floored at 2 so parallel backends still run
    real workers on single-core machines (results are identical either way;
    only wall-time differs)."""
    cpu = os.cpu_count() or 1
    return max(2, min(8, cpu))


def _validate_max_workers(max_workers: "int | None") -> int:
    """Validate *before* defaulting: ``0`` must raise, not silently fall
    back to the default pool size (the old truthiness check made the
    ``< 1`` error unreachable for 0)."""
    if max_workers is None:
        return _default_max_workers()
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _dumps_payload(obj: Any) -> bytes:
    """Serialize a stage payload for the worker channel.

    cloudpickle when available (stage functions are closures over DoFns and
    shard state, which the stdlib pickler rejects); otherwise the stdlib
    pickler — callers treat a raised error as "run this stage in-process".
    """
    if _cloudpickle is not None:
        return _cloudpickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# Worker-channel message tags.
_MSG_FN = 0
_MSG_TASK = 1
_MSG_EXIT = 2
_MSG_OK = 3
_MSG_ERR = 4


def _persistent_worker_main(conn) -> None:
    """Long-lived worker loop: cache the stage fn, compute tasks one by one.

    Per stage the driver sends one ``_MSG_FN`` (the stage function) and
    then feeds ``_MSG_TASK`` messages — one shard each, exactly one reply
    per task, so tasks can be dispatched dynamically to whichever worker
    frees up first (skewed shards don't serialize behind one worker).  The
    worker stays alive across stages (and across pipelines sharing the
    executor) until an exit message or a closed channel; task exceptions
    are caught and shipped back so the worker survives failed stages.
    """
    fn = None
    fn_error: "str | None" = None
    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == _MSG_EXIT:
            return
        if tag == _MSG_FN:
            try:
                fn = pickle.loads(msg[1])
                fn_error = None
            except BaseException:
                fn, fn_error = None, traceback.format_exc()
            continue
        index, shard = msg[1], msg[2]
        try:
            if fn_error is not None:
                raise RuntimeError(f"stage fn failed to deserialize:\n{fn_error}")
            reply = (_MSG_OK, index, fn(_resolve(shard)))
            reply_bytes = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:
            tb = traceback.format_exc()
            try:
                reply_bytes = pickle.dumps(
                    (_MSG_ERR, index, exc, tb),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception:  # exception itself unpicklable
                reply_bytes = pickle.dumps(
                    (_MSG_ERR, index, None, tb),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        try:
            conn.send_bytes(reply_bytes)
        except (BrokenPipeError, OSError):
            return


class Executor:
    """Strategy for running one stage's per-shard work."""

    name = "base"

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every shard, returning results in shard order."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        """Release any worker resources (pools, processes).  Idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialExecutor(Executor):
    """One shard at a time on the driver (the default backend)."""

    name = "sequential"

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        return [fn(_resolve(shard)) for shard in shards]


class ThreadExecutor(Executor):
    """Shard-parallel stages on a persistent thread pool.

    No fork and no payload serialization, so it works on every platform and
    with every DoFn.  Real speedups require per-shard work that releases
    the GIL (NumPy kernels, I/O — e.g. loading spilled shards); pure-Python
    DoFns serialize on the GIL but still produce identical results.

    Parameters
    ----------
    max_workers:
        Thread count; defaults to ``min(8, cpu_count)``, floored at 2.
    min_parallel_records:
        Stages whose total input is smaller than this run inline on the
        driver.  Threads are cheap, so the default is 0 (always pool).
    """

    name = "thread"

    def __init__(
        self,
        max_workers: "int | None" = None,
        *,
        min_parallel_records: int = 0,
    ) -> None:
        self.max_workers = _validate_max_workers(max_workers)
        self.min_parallel_records = int(min_parallel_records)
        self.pools_created = 0
        self._pool: "concurrent.futures.ThreadPoolExecutor | None" = None
        self._closed = False

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-dataflow",
            )
            self.pools_created += 1
        return self._pool

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("executor closed")
        shards = list(shards)
        total = sum(len(shard) for shard in shards)
        if len(shards) < 2 or total < self.min_parallel_records:
            return [fn(_resolve(shard)) for shard in shards]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_resolved, fn, shard) for shard in shards]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class MultiprocessExecutor(Executor):
    """Shard-parallel stage execution over a persistent process pool.

    Fork-server style: up to ``max_workers`` processes (capped at the first
    parallel stage's shard count, the pipeline's declared parallelism) are
    forked once — lazily, on the first stage large enough to parallelize —
    and reused for every later stage until :meth:`close`.  Per stage, each worker receives the stage
    function once (cloudpickle over a per-worker pipe — DoFns may be
    closures or lambdas); shards are then dispatched dynamically, one task
    at a time, to whichever worker frees up first, so skewed shards load-
    balance like the old ``ProcessPoolExecutor.map`` did.  Shard *results*
    must pickle (they are plain lists of Python / NumPy scalars everywhere
    in this codebase); spilled shards are loaded inside the worker, never
    on the driver.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``min(8, cpu_count)``, floored at
        2 so the backend still runs real worker processes on single-core
        machines (results are identical either way; only wall-time differs).
        Must be >= 1 when given explicitly.
    min_parallel_records:
        Stages whose total input is smaller than this run in-process — the
        IPC overhead would dominate.  Set to 0 to force the pool on
        (useful in tests asserting backend equivalence on tiny data).
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: "int | None" = None,
        *,
        min_parallel_records: int = 2048,
    ) -> None:
        self.max_workers = _validate_max_workers(max_workers)
        self.min_parallel_records = int(min_parallel_records)
        self.pools_created = 0
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        self._workers: List[Tuple[Any, Any]] = []  # (process, conn) pairs
        self._closed = False

    def _ensure_pool(self, want: int) -> List[Tuple[Any, Any]]:
        """Fork the worker pool on first use (at most once per lifetime).

        Sized ``min(max_workers, want)`` where ``want`` is the triggering
        stage's total shard count (the pipeline's declared parallelism,
        stable across stages even when keys are skewed) — matching demand
        without holding permanently idle forked processes.
        """
        if not self._workers:
            ctx = multiprocessing.get_context("fork")
            for _ in range(max(2, min(self.max_workers, want))):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_persistent_worker_main,
                    args=(child_conn,),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers.append((process, parent_conn))
            self.pools_created += 1
        return self._workers

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("executor closed")
        shards = list(shards)
        nonempty = sum(1 for shard in shards if len(shard))
        total = sum(len(shard) for shard in shards)
        if (
            not self._can_fork
            or min(self.max_workers, max(nonempty, 1)) < 2
            or total < self.min_parallel_records
        ):
            return [fn(_resolve(shard)) for shard in shards]
        try:
            fn_bytes = _dumps_payload(fn)
        except Exception:
            # No closure-capable serializer available for this stage
            # function: degrade to in-process execution (identical results).
            return [fn(_resolve(shard)) for shard in shards]
        workers = self._ensure_pool(len(shards))
        try:
            fn_blob = pickle.dumps(
                (_MSG_FN, fn_bytes), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:  # pragma: no cover - fn_bytes is already bytes
            return [fn(_resolve(shard)) for shard in shards]
        results: List[Any] = [None] * len(shards)
        failure: "tuple | None" = None
        indices = iter(range(len(shards)))

        def next_task_blob() -> "bytes | None":
            """Serialize the next pending task at dispatch time (one blob
            in flight per worker, never the whole stage input at once).  A
            shard whose records don't stdlib-pickle runs in-process right
            here — nothing is sent for it, so the channels stay clean."""
            for index in indices:
                try:
                    return pickle.dumps(
                        (_MSG_TASK, index, shards[index]),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                except Exception:
                    results[index] = fn(_resolve(shards[index]))
            return None

        try:
            # Dynamic dispatch: prime every worker with the stage fn and
            # one task, then feed the next pending task to whichever worker
            # replies first — skewed shards spread instead of serializing
            # behind a static assignment.  Exactly one reply per dispatched
            # task keeps the channels in lockstep even through failed tasks.
            conns = {conn: process for process, conn in workers}
            outstanding = {conn: 0 for conn in conns}
            for conn in conns:
                blob = next_task_blob()
                if blob is None:
                    break
                conn.send_bytes(fn_blob)
                conn.send_bytes(blob)
                outstanding[conn] += 1
            while any(outstanding.values()):
                ready = multiprocessing.connection.wait(
                    [conn for conn, n in outstanding.items() if n]
                )
                for conn in ready:
                    try:
                        reply = pickle.loads(conn.recv_bytes())
                    except (EOFError, OSError):
                        raise RuntimeError(
                            "multiprocess worker died mid-stage; "
                            "executor closed"
                        ) from None
                    outstanding[conn] -= 1
                    if reply[0] == _MSG_ERR:
                        # Drain outstanding replies (lockstep) but stop
                        # dispatching new work — the stage is failing; the
                        # pool survives for the next one.
                        failure = reply
                    else:
                        results[reply[1]] = reply[2]
                    if failure is None:
                        blob = next_task_blob()
                        if blob is not None:
                            conn.send_bytes(blob)
                            outstanding[conn] += 1
        except BaseException:
            # Any driver-side failure mid-protocol (worker death, a reply
            # that fails to deserialize, an interrupt) leaves the
            # per-worker channels desynced; close the pool rather than let
            # stale replies corrupt a later stage.
            self.close()
            raise
        if failure is not None:
            _tag, _index, exc, tb = failure
            if exc is not None:
                raise exc from RuntimeError(f"worker traceback:\n{tb}")
            raise RuntimeError(f"stage failed in worker:\n{tb}")
        return results

    def close(self) -> None:
        self._closed = True
        exit_bytes = pickle.dumps((_MSG_EXIT,), protocol=pickle.HIGHEST_PROTOCOL)
        for _process, conn in self._workers:
            try:
                conn.send_bytes(exit_bytes)
            except (BrokenPipeError, OSError):
                pass
        for process, conn in self._workers:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
        self._workers = []


_EXECUTORS = {
    "sequential": SequentialExecutor,
    "thread": ThreadExecutor,
    "multiprocess": MultiprocessExecutor,
}


def resolve_executor(executor: "str | Executor | None") -> Executor:
    """Turn an executor name (or instance, or None) into an Executor."""
    if executor is None:
        return SequentialExecutor()
    if isinstance(executor, Executor):
        return executor
    try:
        return _EXECUTORS[executor]()
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{sorted(_EXECUTORS)} or an Executor instance"
        ) from None
