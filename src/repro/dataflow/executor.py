"""Pluggable shard executors for the dataflow engine.

The engine compiles a lazy operator DAG into *stages*: per-shard functions
that take one shard's records and return either transformed records or
routing buckets.  An :class:`Executor` decides how those per-shard calls
run.  Four backends ship:

:class:`SequentialExecutor`
    One shard at a time on the driver — the reference backend.  Metrics and
    results are byte-identical to the historical eager engine.

:class:`ThreadExecutor`
    Shard-parallel execution on a persistent thread pool.  No fork, no
    pickling: best for DoFns dominated by GIL-releasing NumPy kernels, and
    the parallel backend of choice on platforms without ``fork``.

:class:`MultiprocessExecutor`
    Shard-parallel execution over a **persistent** pool of forked worker
    processes (fork-server style).  The pool is created once, lazily, on the
    first stage big enough to parallelize, and reused for every later stage
    until :meth:`~Executor.close` — fork-per-stage pool startup no longer
    dominates pipelines with many small stages.  Each stage's payload (the
    stage function plus the shards assigned to a worker) travels over a
    per-worker pipe, serialized with :mod:`cloudpickle` when available
    (closures and lambdas — every DoFn in this codebase — are not
    serializable with the stdlib pickler).  Without ``fork`` support or a
    working payload serializer the backend degrades to in-process
    execution, so results never change across platforms.

:class:`~repro.dataflow.remote.RemoteExecutor`
    Shard-parallel execution over a cluster of worker *daemons* reached by
    TCP (``python -m repro.dataflow.remote.worker``), with heartbeat-based
    fault detection and shard retry on surviving workers.  Registered here
    under the name ``"remote"`` (imported lazily so the engine has no hard
    dependency on the networking layer).

Closure broadcast
-----------------
The payload-carrying backends (multiprocess, remote) share one
*broadcast* layer: when a stage function is serialized, every large
captured object (NumPy arrays and ``bytes`` over
``broadcast_min_bytes``) is swapped for a content-addressed reference
and registered in a driver-side :class:`BroadcastRegistry`.  The blob
itself ships to each worker **once** — the first stage that references
it — and later stages send only the small per-stage delta (the closure
code plus references).  This is how a DoFn capturing the embedding
matrix stops re-shipping it for every stage.  The same channel carries
*columnar task shards*: a :class:`~repro.dataflow.columnar
.ColumnarShard` whose ndarray columns clear the broadcast threshold is
dispatched as blob references (``_MSG_TASK_B`` / ``MSG_TASK_COL``), so
a large column a worker has already seen — e.g. a cached shard
re-dispatched by a later stage — never crosses the pipe twice.  Workers
cache blobs for the lifetime of their channel; the correctness contract
is the same purity assumption the engine already makes everywhere:
DoFns never mutate their captures (and never mutate shard columns).

All backends process each shard with the same per-shard function and return
results in shard order, so outputs — and therefore every engine metric —
are identical regardless of the backend.  Spilled shards (:class:`~repro.
dataflow.pcollection._DiskShard`) are loaded inside the worker, never on
the driver.

Stage payload shapes: a stage function may return transformed records, a
list of routing buckets (shuffle writes), or — for the optimizer's
partial-aggregate DoFns — a ``(n_pre, buckets)`` tuple, where ``n_pre``
meters the records the worker-local pre-combine absorbed before the
shuffle.  Post-shuffle-fused read stages are plain composed closures
(shuffle read + element-wise consumer chain in one pass).  Executors treat
every shape opaquely: whatever the stage function returns is shipped back
per shard (the multiprocess backend pickles it), so new payload shapes
need no executor changes.

Executors are reusable across pipelines: a :class:`~repro.dataflow.
pcollection.Pipeline` only closes an executor it created itself (from a
string name), so one instance can serve several pipelines back to back —
e.g. the bounding and greedy stages of a selection run share one worker
pool.  ``run_stage`` is not re-entrant from multiple driver threads.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import io
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
import traceback
import weakref
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.dataflow.columnar import ColumnarShard

try:  # Closure-capable serializer for the per-stage payload channel.
    import cloudpickle as _cloudpickle
except ImportError:  # pragma: no cover - exercised on minimal installs
    _cloudpickle = None

#: A stage function: one shard's records in, transformed records (or routing
#: buckets) out.
StageFn = Callable[[list], Any]


def _resolve(shard: Any) -> list:
    """Load a spilled shard; pass plain in-memory shards through."""
    return shard if isinstance(shard, list) else shard.load()


def _run_resolved(fn: StageFn, shard: Any) -> Any:
    return fn(_resolve(shard))


def _default_max_workers() -> int:
    """``min(8, cpu_count)``, floored at 2 so parallel backends still run
    real workers on single-core machines (results are identical either way;
    only wall-time differs)."""
    cpu = os.cpu_count() or 1
    return max(2, min(8, cpu))


def _validate_max_workers(max_workers: "int | None") -> int:
    """Validate *before* defaulting: ``0`` must raise, not silently fall
    back to the default pool size (the old truthiness check made the
    ``< 1`` error unreachable for 0)."""
    if max_workers is None:
        return _default_max_workers()
    max_workers = int(max_workers)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    return max_workers


def _dumps_payload(obj: Any) -> bytes:
    """Serialize a stage payload for the worker channel.

    cloudpickle when available (stage functions are closures over DoFns and
    shard state, which the stdlib pickler rejects); otherwise the stdlib
    pickler — callers treat a raised error as "run this stage in-process".
    """
    if _cloudpickle is not None:
        return _cloudpickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


# -- closure broadcast ------------------------------------------------------

#: Captured objects at least this large are broadcast (shipped once per
#: worker, content-addressed) instead of inlined into every stage payload.
DEFAULT_BROADCAST_MIN_BYTES = 64 * 1024


class BroadcastRegistry:
    """Driver-side content-addressed store of large DoFn captures.

    ``maybe_register`` hashes an eligible object (NumPy array or ``bytes``
    of at least ``min_bytes``) once — repeat captures of the *same object*
    are recognized by identity without re-serializing, so a stage that
    closes over the embedding matrix costs one hash for the whole run.
    ``blobs`` maps digest → serialized bytes; executors :meth:`evict` a
    blob's bytes once every *current* worker holds it — long multi-round
    drives don't accumulate their whole large-capture history on the
    driver.  The digest ledger survives eviction, and the identity fast
    path only short-circuits while the bytes exist, so a capture whose
    blob was evicted is re-serialized on demand — which is what lets a
    late-joining worker (elastic membership) or an LRU-evicted worker
    cache receive the blob again.
    """

    def __init__(self, min_bytes: int = DEFAULT_BROADCAST_MIN_BYTES) -> None:
        self.min_bytes = int(min_bytes)
        self.blobs: Dict[str, bytes] = {}
        self.unique_bytes = 0
        self._by_id: Dict[int, Tuple[str, Callable[[], Any]]] = {}
        self._seen_digests: "set[str]" = set()

    def _eligible(self, obj: Any) -> bool:
        if isinstance(obj, np.ndarray):
            return obj.nbytes >= self.min_bytes
        # bytes only: immutable, so worker-side caching can never observe
        # a driver-side mutation (bytearray is deliberately excluded).
        if type(obj) is bytes:
            return len(obj) >= self.min_bytes
        return False

    def maybe_register(self, obj: Any) -> "str | None":
        """Digest for ``obj`` if it should broadcast, else ``None``."""
        if not self._eligible(obj):
            return None
        entry = self._by_id.get(id(obj))
        if entry is not None:
            digest, ref = entry
            # The identity fast path must also prove the serialized
            # bytes still exist: after a stage-end eviction, a ledger
            # that says "seen" with no bytes behind it would hand
            # ``_ship_blobs`` a digest it cannot ship — a KeyError the
            # moment a late-joining worker (or an LRU-evicted one)
            # needs the blob again.  Falling through re-serializes to
            # the same digest on demand.
            if ref() is obj and digest in self.blobs:
                return digest
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(blob).hexdigest()
        if digest not in self._seen_digests:
            self._seen_digests.add(digest)
            self.unique_bytes += len(blob)
        if digest not in self.blobs:
            self.blobs[digest] = blob
        try:
            ref: Callable[[], Any] = weakref.ref(obj)
        except TypeError:  # bytes are not weakref-able; hold strongly
            ref = (lambda _obj=obj: _obj)
        self._by_id[id(obj)] = (digest, ref)
        return digest

    def evict(self, digest: str) -> None:
        """Drop a blob's serialized bytes (every worker has it by now)."""
        self.blobs.pop(digest, None)


class _BroadcastPickler(
    _cloudpickle.Pickler if _cloudpickle is not None else pickle.Pickler
):
    """cloudpickle with large captures swapped for persistent blob refs."""

    def __init__(self, file, registry: BroadcastRegistry) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._registry = registry
        self.digests: "set[str]" = set()

    def persistent_id(self, obj: Any) -> "str | None":
        digest = self._registry.maybe_register(obj)
        if digest is not None:
            self.digests.add(digest)
        return digest


class _BroadcastUnpickler(pickle.Unpickler):
    """Worker-side unpickler resolving blob refs from a local cache."""

    def __init__(self, file, cache: Dict[str, Any]) -> None:
        super().__init__(file)
        self._cache = cache

    def persistent_load(self, digest: str) -> Any:
        try:
            return self._cache[digest]
        except KeyError:
            raise pickle.UnpicklingError(
                f"missing broadcast blob {digest[:12]}… — the driver must "
                "ship every referenced blob before the stage payload"
            ) from None


def dumps_with_broadcast(
    obj: Any, registry: BroadcastRegistry
) -> Tuple[bytes, "frozenset[str]"]:
    """Serialize a stage payload, extracting large captures into blobs.

    Returns ``(payload, digests)`` — the payload references each blob by
    digest; the caller must ship ``registry.blobs[digest]`` to any worker
    that has not seen it yet, *before* the payload.
    """
    buffer = io.BytesIO()
    pickler = _BroadcastPickler(buffer, registry)
    pickler.dump(obj)
    return buffer.getvalue(), frozenset(pickler.digests)


def loads_with_broadcast(data: bytes, cache: Dict[str, Any]) -> Any:
    """Deserialize a stage payload against a worker's blob cache."""
    return _BroadcastUnpickler(io.BytesIO(data), cache).load()


def load_blob(blob: bytes) -> Any:
    """Deserialize one broadcast blob (worker side)."""
    return pickle.loads(blob)


def columnar_task_eligible(shard: Any, registry: BroadcastRegistry) -> bool:
    """Should this task shard ship through the broadcast channel?

    True for an in-memory :class:`~repro.dataflow.columnar.ColumnarShard`
    whose key column or any value column is at least
    ``registry.min_bytes`` — exactly the arrays ``dumps_with_broadcast``
    would extract into content-addressed blobs.  A shard below the
    threshold (or any row shard, or a spilled shard) ships as a plain
    task frame: the broadcast bookkeeping would cost more than the
    pickle-copy it avoids.
    """
    if not isinstance(shard, ColumnarShard):
        return False
    if shard.keys is not None and shard.keys.nbytes >= registry.min_bytes:
        return True
    return any(col.nbytes >= registry.min_bytes for col in shard.columns)


# Worker-channel message tags.
_MSG_FN = 0
_MSG_TASK = 1
_MSG_EXIT = 2
_MSG_OK = 3
_MSG_ERR = 4
_MSG_BLOB = 5
#: A task whose shard was serialized with the broadcast-aware pickler —
#: its large ndarray columns travel as content-addressed blob references
#: (shipped to each worker at most once) instead of inline bytes.
_MSG_TASK_B = 6


def _persistent_worker_main(conn) -> None:
    """Long-lived worker loop: cache the stage fn, compute tasks one by one.

    Per stage the driver sends ``_MSG_BLOB`` frames for any broadcast
    captures this worker has not seen yet, one ``_MSG_FN`` (the stage
    function, referencing blobs by digest), and then feeds ``_MSG_TASK``
    messages — one shard each, exactly one reply per task, so tasks can be
    dispatched dynamically to whichever worker frees up first (skewed
    shards don't serialize behind one worker).  Blobs are cached for the
    worker's lifetime (the whole point of closure broadcast).  The worker
    stays alive across stages (and across pipelines sharing the executor)
    until an exit message or a closed channel; task exceptions are caught
    and shipped back so the worker survives failed stages.
    """
    fn = None
    fn_error: "str | None" = None
    blob_cache: Dict[str, Any] = {}
    while True:
        try:
            msg = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            return
        tag = msg[0]
        if tag == _MSG_EXIT:
            return
        if tag == _MSG_BLOB:
            try:
                blob_cache[msg[1]] = load_blob(msg[2])
            except BaseException:
                # Surface the problem at fn-load time (blob refs missing).
                blob_cache.pop(msg[1], None)
            continue
        if tag == _MSG_FN:
            try:
                fn = loads_with_broadcast(msg[1], blob_cache)
                fn_error = None
            except BaseException:
                fn, fn_error = None, traceback.format_exc()
            continue
        index = msg[1]
        try:
            if fn_error is not None:
                raise RuntimeError(f"stage fn failed to deserialize:\n{fn_error}")
            # _MSG_TASK_B shards reference broadcast blobs by digest (the
            # driver ships any unseen blob first); a missing blob raises
            # here and ships back as this task's error reply.
            shard = (
                loads_with_broadcast(msg[2], blob_cache)
                if tag == _MSG_TASK_B
                else msg[2]
            )
            reply = (_MSG_OK, index, fn(_resolve(shard)))
            reply_bytes = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as exc:
            tb = traceback.format_exc()
            try:
                reply_bytes = pickle.dumps(
                    (_MSG_ERR, index, exc, tb),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            except Exception:  # exception itself unpicklable
                reply_bytes = pickle.dumps(
                    (_MSG_ERR, index, None, tb),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
        try:
            conn.send_bytes(reply_bytes)
        except (BrokenPipeError, OSError):
            return


class Executor:
    """Strategy for running one stage's per-shard work."""

    name = "base"

    #: Stages dispatched through this executor; the engine increments it
    #: at its dispatch choke point so every backend (including custom
    #: subclasses) gets the count for free.
    stages_run = 0

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every shard, returning results in shard order."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        """Release any worker resources (pools, processes).

        Idempotent, and safe to call from another thread while a stage is
        in flight: the in-flight :meth:`run_stage` raises a clean
        ``RuntimeError`` instead of deadlocking on worker channels.
        """

    def stats(self) -> Dict[str, Any]:
        """Executor-specific counters (broadcast volume, failures, …).

        Empty for backends that have run nothing and have nothing else to
        report; keys are backend-specific and end up in
        ``SelectionReport.extra["executor_stats"]``.
        """
        return {"stages_run": self.stages_run} if self.stages_run else {}

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequentialExecutor(Executor):
    """One shard at a time on the driver (the default backend)."""

    name = "sequential"

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        return [fn(_resolve(shard)) for shard in shards]


class ThreadExecutor(Executor):
    """Shard-parallel stages on a persistent thread pool.

    No fork and no payload serialization, so it works on every platform and
    with every DoFn.  Real speedups require per-shard work that releases
    the GIL (NumPy kernels, I/O — e.g. loading spilled shards); pure-Python
    DoFns serialize on the GIL but still produce identical results.

    Parameters
    ----------
    max_workers:
        Thread count; defaults to ``min(8, cpu_count)``, floored at 2.
    min_parallel_records:
        Stages whose total input is smaller than this run inline on the
        driver.  Threads are cheap, so the default is 0 (always pool).
    """

    name = "thread"

    def __init__(
        self,
        max_workers: "int | None" = None,
        *,
        min_parallel_records: int = 0,
    ) -> None:
        self.max_workers = _validate_max_workers(max_workers)
        self.min_parallel_records = int(min_parallel_records)
        self.pools_created = 0
        self._pool: "concurrent.futures.ThreadPoolExecutor | None" = None
        self._closed = False
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor closed")
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-dataflow",
                )
                self.pools_created += 1
            return self._pool

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("executor closed")
        shards = list(shards)
        total = sum(len(shard) for shard in shards)
        if len(shards) < 2 or total < self.min_parallel_records:
            return [fn(_resolve(shard)) for shard in shards]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_resolved, fn, shard) for shard in shards]
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class _PoolWorker:
    """One forked worker: its process, channel, and shipped-blob ledger."""

    __slots__ = ("process", "conn", "shipped")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.shipped: "set[str]" = set()


class MultiprocessExecutor(Executor):
    """Shard-parallel stage execution over a persistent process pool.

    Fork-server style: up to ``max_workers`` processes (capped at the first
    parallel stage's shard count, the pipeline's declared parallelism) are
    forked once — lazily, on the first stage large enough to parallelize —
    and reused for every later stage until :meth:`close`.  Per stage, each worker receives the stage
    function once (cloudpickle over a per-worker pipe — DoFns may be
    closures or lambdas); large captures broadcast through the shared blob
    cache (see the module docstring) so e.g. an embedding matrix ships to
    each worker once, not once per stage; shards are then dispatched
    dynamically, one task
    at a time, to whichever worker frees up first, so skewed shards load-
    balance like the old ``ProcessPoolExecutor.map`` did.  Shard *results*
    must pickle (they are plain lists of Python / NumPy scalars everywhere
    in this codebase); spilled shards are loaded inside the worker, never
    on the driver.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``min(8, cpu_count)``, floored at
        2 so the backend still runs real worker processes on single-core
        machines (results are identical either way; only wall-time differs).
        Must be >= 1 when given explicitly.
    min_parallel_records:
        Stages whose total input is smaller than this run in-process — the
        IPC overhead would dominate.  Set to 0 to force the pool on
        (useful in tests asserting backend equivalence on tiny data).
    broadcast_min_bytes:
        Captured objects at least this large are content-addressed and
        shipped to each worker once instead of inlined per stage.
    """

    name = "multiprocess"

    def __init__(
        self,
        max_workers: "int | None" = None,
        *,
        min_parallel_records: int = 2048,
        broadcast_min_bytes: int = DEFAULT_BROADCAST_MIN_BYTES,
    ) -> None:
        self.max_workers = _validate_max_workers(max_workers)
        self.min_parallel_records = int(min_parallel_records)
        self.pools_created = 0
        self.broadcast_bytes = 0
        self.broadcast_blobs = 0
        self.stage_payload_bytes = 0
        self._registry = BroadcastRegistry(broadcast_min_bytes)
        self._can_fork = "fork" in multiprocessing.get_all_start_methods()
        self._workers: List[_PoolWorker] = []
        self._closed = False
        self._stage_active = False
        self._lock = threading.Lock()

    def stats(self) -> Dict[str, Any]:
        return {
            "stages_run": self.stages_run,
            "broadcast_bytes": self.broadcast_bytes,
            "broadcast_blobs": self.broadcast_blobs,
            "unique_broadcast_bytes": self._registry.unique_bytes,
            "stage_payload_bytes": self.stage_payload_bytes,
        }

    def _ensure_pool(self, want: int) -> List[_PoolWorker]:
        """Fork the worker pool on first use (at most once per lifetime).

        Sized ``min(max_workers, want)`` where ``want`` is the triggering
        stage's total shard count (the pipeline's declared parallelism,
        stable across stages even when keys are skewed) — matching demand
        without holding permanently idle forked processes.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("executor closed")
            if not self._workers:
                ctx = multiprocessing.get_context("fork")
                for _ in range(max(2, min(self.max_workers, want))):
                    parent_conn, child_conn = ctx.Pipe(duplex=True)
                    process = ctx.Process(
                        target=_persistent_worker_main,
                        args=(child_conn,),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    self._workers.append(_PoolWorker(process, parent_conn))
                self.pools_created += 1
            return self._workers

    def _ship_blobs(
        self, worker: _PoolWorker, digests: "frozenset[str]"
    ) -> None:
        """Ship the blobs this worker has not seen yet (once each, ever)."""
        for digest in sorted(digests - worker.shipped):
            blob = self._registry.blobs[digest]
            worker.conn.send_bytes(
                pickle.dumps(
                    (_MSG_BLOB, digest, blob),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
            worker.shipped.add(digest)
            self.broadcast_bytes += len(blob)
            self.broadcast_blobs += 1

    def _send_stage_payload(
        self, worker: _PoolWorker, fn_blob: bytes, digests: "frozenset[str]"
    ) -> None:
        """Ship not-yet-seen broadcast blobs, then the stage function."""
        self._ship_blobs(worker, digests)
        worker.conn.send_bytes(fn_blob)
        self.stage_payload_bytes += len(fn_blob)

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("executor closed")
        shards = list(shards)
        nonempty = sum(1 for shard in shards if len(shard))
        total = sum(len(shard) for shard in shards)
        if (
            not self._can_fork
            or min(self.max_workers, max(nonempty, 1)) < 2
            or total < self.min_parallel_records
        ):
            return [fn(_resolve(shard)) for shard in shards]
        try:
            fn_bytes, digests = dumps_with_broadcast(fn, self._registry)
        except Exception:
            # No closure-capable serializer available for this stage
            # function: degrade to in-process execution (identical results).
            return [fn(_resolve(shard)) for shard in shards]
        workers = self._ensure_pool(len(shards))
        try:
            fn_blob = pickle.dumps(
                (_MSG_FN, fn_bytes), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:  # pragma: no cover - fn_bytes is already bytes
            return [fn(_resolve(shard)) for shard in shards]
        results: List[Any] = [None] * len(shards)
        failure: "tuple | None" = None
        indices = iter(range(len(shards)))
        evictable = set(digests)

        def next_task_blob() -> "Tuple[bytes, frozenset] | None":
            """Serialize the next pending task at dispatch time (one blob
            in flight per worker, never the whole stage input at once),
            returning ``(frame, task_digests)``.  Columnar shards with
            broadcast-sized ndarray columns go through the broadcast
            pickler — the caller ships any blob the target worker lacks
            before the frame, so a column a worker has already seen never
            crosses the pipe again.  A shard whose records don't
            stdlib-pickle runs in-process right here — nothing is sent
            for it, so the channels stay clean."""
            for index in indices:
                shard = shards[index]
                if columnar_task_eligible(shard, self._registry):
                    try:
                        payload, task_digests = dumps_with_broadcast(
                            shard, self._registry
                        )
                        return (
                            pickle.dumps(
                                (_MSG_TASK_B, index, payload),
                                protocol=pickle.HIGHEST_PROTOCOL,
                            ),
                            task_digests,
                        )
                    except Exception:
                        pass  # degrade to the plain inline task frame
                try:
                    return (
                        pickle.dumps(
                            (_MSG_TASK, index, shard),
                            protocol=pickle.HIGHEST_PROTOCOL,
                        ),
                        frozenset(),
                    )
                except Exception:
                    results[index] = fn(_resolve(shards[index]))
            return None

        self._stage_active = True
        try:
            # Dynamic dispatch: prime every worker with the stage fn and
            # one task, then feed the next pending task to whichever worker
            # replies first — skewed shards spread instead of serializing
            # behind a static assignment.  Exactly one reply per dispatched
            # task keeps the channels in lockstep even through failed tasks.
            conns = {worker.conn: worker for worker in workers}
            outstanding = {conn: 0 for conn in conns}
            for conn, worker in conns.items():
                task = next_task_blob()
                if task is None:
                    break
                blob, task_digests = task
                self._send_stage_payload(worker, fn_blob, digests)
                if task_digests:
                    self._ship_blobs(worker, task_digests)
                    evictable.update(task_digests)
                conn.send_bytes(blob)
                outstanding[conn] += 1
            while any(outstanding.values()):
                ready = multiprocessing.connection.wait(
                    [conn for conn, n in outstanding.items() if n],
                    timeout=0.2,
                )
                if not ready:
                    if self._closed:
                        raise RuntimeError("executor closed during stage")
                    continue
                for conn in ready:
                    try:
                        reply = pickle.loads(conn.recv_bytes())
                    except (EOFError, OSError):
                        raise RuntimeError(
                            "executor closed during stage"
                            if self._closed
                            else "multiprocess worker died mid-stage; "
                            "executor closed"
                        ) from None
                    outstanding[conn] -= 1
                    if reply[0] == _MSG_ERR:
                        # Drain outstanding replies (lockstep) but stop
                        # dispatching new work — the stage is failing; the
                        # pool survives for the next one.
                        failure = reply
                    else:
                        results[reply[1]] = reply[2]
                    if failure is None:
                        task = next_task_blob()
                        if task is not None:
                            blob, task_digests = task
                            if task_digests:
                                self._ship_blobs(conns[conn], task_digests)
                                evictable.update(task_digests)
                            conn.send_bytes(blob)
                            outstanding[conn] += 1
        except BaseException as exc:
            # Any driver-side failure mid-protocol (worker death, a reply
            # that fails to deserialize, an interrupt) leaves the
            # per-worker channels desynced; close the pool rather than let
            # stale replies corrupt a later stage.
            self._stage_active = False
            closed_concurrently = self._closed
            self.close()
            if closed_concurrently and not isinstance(exc, RuntimeError):
                # close() from another thread tore the channels down under
                # us — surface that as the closure it is, not as a raw
                # OSError from a dead pipe.
                raise RuntimeError("executor closed during stage") from exc
            raise
        finally:
            self._stage_active = False
        # Blob bytes whose every reader now holds them are dead weight on
        # the driver; the worker set is fixed after the one fork.  Eviction
        # must stay this conservative: ``maybe_register``'s identity fast
        # path returns a digest without repopulating ``blobs``, so a blob
        # some worker has never seen must keep its bytes for a later ship.
        for digest in evictable:
            if all(digest in worker.shipped for worker in workers):
                self._registry.evict(digest)
        if failure is not None:
            _tag, _index, exc, tb = failure
            if exc is not None:
                raise exc from RuntimeError(f"worker traceback:\n{tb}")
            raise RuntimeError(f"stage failed in worker:\n{tb}")
        return results

    def close(self) -> None:
        with self._lock:
            self._closed = True
            workers, self._workers = self._workers, []
            in_flight = self._stage_active
        if not workers:
            return
        if in_flight:
            # A stage is running on another thread: a graceful exit message
            # would interleave with its frames, so force-close the channels
            # (the in-flight ``run_stage`` raises a clean RuntimeError) and
            # terminate the daemons.
            for worker in workers:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
                worker.process.terminate()
        else:
            exit_bytes = pickle.dumps(
                (_MSG_EXIT,), protocol=pickle.HIGHEST_PROTOCOL
            )
            for worker in workers:
                try:
                    worker.conn.send_bytes(exit_bytes)
                except (BrokenPipeError, OSError):
                    pass
            for worker in workers:
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
        for worker in workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5)


class JobScopedExecutor(Executor):
    """A per-job view of a shared executor: serialized dispatch, delta stats.

    ``run_stage`` is not re-entrant from multiple driver threads (see the
    module docstring), yet a long-lived service wants several concurrent
    drives multiplexed onto one warm executor — its pool, broadcast blob
    cache, and worker channels are exactly what makes the service warm.
    Each drive therefore runs through its own ``JobScopedExecutor``: all
    views of one base share a dispatch lock, so stages from concurrent
    jobs interleave at stage granularity instead of corrupting worker
    channels, and each view meters only its own work.

    Stats isolation: the base executor's counters are cumulative across
    every tenant it ever served.  Around each dispatch this proxy
    snapshots ``base.stats()`` before and after (both under the lock, so
    the delta is attributable to this job alone) and accumulates the
    per-counter deltas.  :meth:`stats` reports those accumulated deltas —
    a job's report says what *that job* shuffled, shipped, and retried —
    while genuine gauges (``n_workers``, ``unique_broadcast_bytes``) pass
    through live, since "how many workers" and "how big is the shared
    blob cache" are properties of the pool, not of any one job.

    ``run_exchange`` (the worker-shuffle entry point) is exposed only
    when the base has it, so the engine's feature probe
    ``getattr(executor, "run_exchange", None)`` keeps answering honestly
    for bases without one.  :meth:`close` never closes the base — its
    lifetime belongs to whoever created it.
    """

    #: Base-stats keys that describe the shared pool rather than work
    #: performed, reported live instead of as per-job deltas.
    _GAUGES = frozenset({"n_workers", "unique_broadcast_bytes"})

    def __init__(self, base: Executor, lock: "threading.RLock") -> None:
        self._base = base
        self._lock = lock
        self._stages_run = 0
        self._counters: Dict[str, Any] = {}
        self.name = base.name

    # The engine increments ``executor.stages_run`` at its dispatch choke
    # points; route the increment to the shared base (total throughput)
    # while keeping this view's own count for per-job reports.
    @property
    def stages_run(self) -> int:
        return self._stages_run

    @stages_run.setter
    def stages_run(self, value: int) -> None:
        delta = value - self._stages_run
        self._stages_run = value
        with self._lock:
            self._base.stages_run += delta

    def _accumulate(
        self, after: Dict[str, Any], before: Dict[str, Any]
    ) -> None:
        for key, value in after.items():
            if key in self._GAUGES or key == "stages_run":
                continue
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            delta = value - before.get(key, 0)
            self._counters[key] = self._counters.get(key, 0) + delta

    def run_stage(self, fn: StageFn, shards: Sequence[Any]) -> List[Any]:
        with self._lock:
            before = self._base.stats()
            try:
                return self._base.run_stage(fn, shards)
            finally:
                self._accumulate(self._base.stats(), before)

    def stats(self) -> Dict[str, Any]:
        out = dict(self._counters)
        base_stats = self._base.stats()
        for key in self._GAUGES:
            if key in base_stats:
                out[key] = base_stats[key]
        if self._stages_run:
            out["stages_run"] = self._stages_run
        return out

    def close(self) -> None:
        """No-op: the shared base outlives every per-job view."""

    def __getattr__(self, attr: str) -> Any:
        if attr.startswith("_"):
            raise AttributeError(attr)
        if attr == "run_exchange":
            base_fn = getattr(self._base, "run_exchange", None)
            if base_fn is None:
                raise AttributeError(attr)

            def run_exchange(*args: Any, **kwargs: Any) -> Any:
                with self._lock:
                    before = self._base.stats()
                    try:
                        return base_fn(*args, **kwargs)
                    finally:
                        self._accumulate(self._base.stats(), before)

            return run_exchange
        return getattr(self._base, attr)


# -- executor registry ------------------------------------------------------
#
# The single string→factory mapping behind every ``executor=`` knob in the
# codebase: ``Pipeline``, ``SelectorConfig``, the CLI, and the beams all
# resolve through here, so adding a backend is one ``register_executor``
# call.  Factories take the backend's own keyword options (e.g. ``workers``
# for the remote backend).


def _remote_factory(**opts) -> "Executor":
    # Imported lazily: the remote subsystem pulls in the networking layer
    # and may spawn localhost worker daemons, which pipelines that never
    # ask for it should not pay for.
    from repro.dataflow.remote import RemoteExecutor

    return RemoteExecutor(**opts)


_EXECUTORS: Dict[str, Callable[..., Executor]] = {
    "sequential": SequentialExecutor,
    "thread": ThreadExecutor,
    "multiprocess": MultiprocessExecutor,
    "remote": _remote_factory,
}


def register_executor(name: str, factory: Callable[..., Executor]) -> None:
    """Register (or override) an executor backend under ``name``."""
    _EXECUTORS[str(name)] = factory


def executor_names() -> List[str]:
    """Registered backend names (the legal ``--executor`` values)."""
    return sorted(_EXECUTORS)


def resolve_executor(
    executor: "str | Executor | None" = None, **opts: Any
) -> Executor:
    """Turn an executor name (or instance, or None) into an Executor.

    ``opts`` are passed to the backend's factory and therefore require a
    *name* (``resolve_executor("remote", workers=[...])``); passing opts
    with an already-built instance is an error, since they could not be
    applied.
    """
    if isinstance(executor, Executor):
        if opts:
            raise ValueError(
                "executor options require a backend name, not an instance: "
                f"got {sorted(opts)} with {type(executor).__name__}"
            )
        return executor
    if executor is None:
        executor = "sequential"
    try:
        factory = _EXECUTORS[executor]
    except KeyError:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of "
            f"{executor_names()} or an Executor instance"
        ) from None
    return factory(**opts)
