"""Reusable composite transforms (the engine's standard library).

Each class here is a :class:`~repro.dataflow.pcollection.PTransform`
extracted from a beam entry point: the multi-probe sharded kNN build
(:class:`ShardedKnn`), the bounding pre-pass's join-based bound
computation (:class:`BoundingFilter`), one round of the partition-based
distributed greedy (:class:`PartitionedGreedy`), and the generic
distributed per-key top-k (:class:`TopKPerKey`).  The beams are now thin
compositions of these over a
:class:`~repro.dataflow.options.DataflowContext`; anything else built on
the engine can reuse them the same way::

    merged = points.apply(ShardedKnn(x, centroids, k=10, nprobe=3))
    best   = scored | TopKPerKey(5)

Applying a composite tags its stages with the transform's name, so
``explain()`` renders each application as a named, indented group —
the pipeline-level structure stays legible as plans grow.

Composites are organization, not semantics: each expands to exactly the
primitive transforms the beams used to build by hand, so results,
metrics, and optimizer rewrites (combiner lifting, reshard elision,
post-shuffle fusion) are unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

import numpy as np

from repro.dataflow.pcollection import Fold, PCollection, PTransform
from repro.dataflow.transforms import cogroup

__all__ = [
    "ShardedKnn",
    "TopKPerKey",
    "BoundingFilter",
    "PartitionedGreedy",
]

_MASK64 = (1 << 64) - 1


def edge_hash01(b: int, a: int, round_salt: int, seed_salt: int) -> float:
    """Deterministic float in [0, 1) per (edge, round) — distributed-safe.

    SplitMix64-style mixing over plain Python ints (wrap-around masked).
    A distributed runner has no global RNG stream; counter-based hashing
    is how reproducible per-edge sampling works in Beam.
    """
    x = (b * 0x9E3779B97F4A7C15) & _MASK64
    x = (x + a * 0xBF58476D1CE4E5B9) & _MASK64
    x = (x + round_salt * 2654435761 + seed_salt) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


class ShardedKnn(PTransform):
    """IVF-sharded kNN candidate construction + per-point merge.

    Input: an unkeyed collection of point ids.  Output: keyed
    ``(point, {host: similarity})`` — each point's best-seen similarity
    per candidate neighbor across every probed cell (the caller takes the
    global top-k).  Three stages:

    1. *assign*: each point maps to its home cell plus the ``nprobe - 1``
       next-closest cells (multi-probe, so near-boundary neighbors are
       found) — only the home cell *hosts* the point as a candidate;
    2. *per-cell kNN*: group by cell and brute-force each cell locally —
       a worker only ever holds one cell;
    3. *merge*: combine candidate lists per point.  Written as the naive
       ``group_by_key().map_values(Fold)`` so the plan optimizer lifts it
       to ``combine_per_key`` (partial per-shard dicts shuffle instead of
       full candidate lists).

    ``x`` must be L2-normalized; ``centroids`` is the fitted coarse
    quantizer.  The stage DoFns capture both arrays, so the payload
    backends broadcast them once per worker.
    """

    def __init__(
        self,
        x: np.ndarray,
        centroids: np.ndarray,
        *,
        k: int,
        nprobe: int,
        name: str = "ShardedKnn",
    ) -> None:
        super().__init__(name)
        self.x = x
        self.centroids = centroids
        self.k = int(k)
        self.nprobe = min(max(1, int(nprobe)), centroids.shape[0])

    def expand(self, points: PCollection) -> PCollection:
        x, centroids, k, nprobe = self.x, self.centroids, self.k, self.nprobe

        # (1) multi-probe assignment: (cell, (point, is_home)).  Only the
        # home cell hosts the point (appears as a potential neighbor);
        # probe cells treat it as a query so boundary neighbors are found.
        def assign(v: int):
            sims = centroids @ x[v]
            order = np.argsort(-sims)[:nprobe]
            return [
                (int(cell), (v, probe_rank == 0))
                for probe_rank, cell in enumerate(order)
            ]

        assigned = points.flat_map(assign, name="knn/assign").as_keyed(
            name="knn/assign_key"
        )

        # (2) per-cell brute force: hosts are candidate neighbors, everyone
        # in the group (host or probe) is a query.
        def cell_knn(kv) -> List[Tuple[int, List[Tuple[int, float]]]]:
            _cell, members = kv
            hosts = np.array(
                sorted(v for v, is_home in members if is_home), dtype=np.int64
            )
            queries = np.array(sorted({v for v, _ in members}), dtype=np.int64)
            if hosts.size == 0:
                return []
            sims = x[queries] @ x[hosts].T
            out = []
            for qi, q in enumerate(queries.tolist()):
                row = sims[qi]
                mask = hosts != q
                cand_hosts = hosts[mask]
                cand_sims = row[mask]
                take = min(k, cand_hosts.size)
                if take == 0:
                    continue
                top = np.argpartition(cand_sims, -take)[-take:]
                out.append(
                    (q, list(zip(cand_hosts[top].tolist(),
                                 cand_sims[top].tolist())))
                )
            return out

        candidates = assigned.group_by_key(name="knn/group").flat_map(
            cell_knn, name="knn/cell_knn"
        ).as_keyed(name="knn/cand_key")

        # (3) merge per point, deduplicating hosts that appeared in several
        # probed cells.  Max-merge is order-insensitive, so optimized and
        # naive plans agree bit-for-bit.
        def merge_zero():
            return {}

        def merge_add(acc, pairs):
            for host, sim in pairs:
                prev = acc.get(host)
                if prev is None or sim > prev:
                    acc[host] = sim
            return acc

        def merge_merge(a, b):
            for host, sim in b.items():
                prev = a.get(host)
                if prev is None or sim > prev:
                    a[host] = sim
            return a

        return candidates.group_by_key(name="knn/merge_group").map_values(
            Fold(merge_zero, merge_add, merge_merge, label="knn/topk"),
            name="knn/merge",
        )


class TopKPerKey(PTransform):
    """Distributed per-key top-k: ``(key, (item, score))`` pairs in,
    ``(key, [(item, score), ...])`` out — the k best-scoring distinct
    items per key, sorted by ``(-score, item)``.

    Duplicate items keep their maximum score.  Written as the naive
    ``group_by_key().map_values(Fold)`` so the optimizer lifts it to
    ``combine_per_key``: each shard ships at most ``k`` accumulator
    entries per key instead of every pair.  The fold is associative —
    trimming partials to ``k`` is safe because an entry dropped from a
    partial was beaten by ``k`` better entries that also reach the merge.
    """

    def __init__(self, k: int, *, name: str = "TopKPerKey") -> None:
        super().__init__(name)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def expand(self, pairs: PCollection) -> PCollection:
        k = self.k

        # The accumulator is the output itself: at most ``k`` ``(item,
        # score)`` pairs kept sorted by ``(-score, item)``.  ``add``
        # mutates it in place (the engine's Folds may — accumulators are
        # stage-local, the same contract ShardedKnn's merge relies on),
        # so per-record work is O(k) with no dict/list churn.
        def add(acc, pair):
            item, score = pair
            for i, (existing, prev) in enumerate(acc):
                if existing == item:
                    if score <= prev:
                        return acc
                    del acc[i]
                    break
            rank = (-score, item)
            lo, hi = 0, len(acc)
            while lo < hi:
                mid = (lo + hi) // 2
                if (-acc[mid][1], acc[mid][0]) < rank:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < k:
                acc.insert(lo, (item, score))
                if len(acc) > k:
                    acc.pop()
            return acc

        def merge(a, b):
            for pair in b:
                a = add(a, pair)
            return a

        return pairs.group_by_key(name="topk/group").map_values(
            Fold(list, add, merge, label=f"topk/{k}"), name="topk/fold"
        )


class BoundingFilter(PTransform):
    """One round of the bounding pre-pass's bound computation (Sec. 5).

    Input: the keyed *remaining* set ``(id, True)``.  Output: keyed
    ``(id, (lower, umax))`` bounds over it.  Expands to the paper's
    join-only plan — no machine ever holds the subset:

    1. fan out the neighbor graph, keying each edge by its *neighbor*;
    2. three-way cogroup with the partial solution and the remaining set:
       dead edges (endpoint shrunk away) drop, survivors re-key by their
       source with a solution-membership tag;
    3. cogroup with the remaining set and the utilities: per point, the
       solution mass and the (optionally hash-sampled) unassigned mass
       reduce to ``lower = u - ratio*(mass_sol + mass_unassigned)`` and
       ``umax = u - ratio*mass_sol``.

    Sampling (``mode="approximate"``, ``p < 1``) is counter-based
    Bernoulli per edge per round (:func:`edge_hash01`) — a distributed
    runner has no global RNG stream.
    """

    def __init__(
        self,
        neighbors: PCollection,
        utilities: PCollection,
        solution: PCollection,
        *,
        ratio: float,
        mode: str = "exact",
        sampler: str = "uniform",
        p: float = 1.0,
        round_salt: int = 0,
        seed_salt: int = 0,
        name: str = "BoundingFilter",
    ) -> None:
        super().__init__(name)
        self.neighbors = neighbors
        self.utilities = utilities
        self.solution = solution
        self.ratio = float(ratio)
        self.mode = mode
        self.sampler = sampler
        self.p = float(p)
        self.round_salt = int(round_salt)
        self.seed_salt = int(seed_salt)

    def expand(self, remaining: PCollection) -> PCollection:
        ratio = self.ratio
        sampler = self.sampler
        p = self.p
        approximate = self.mode == "approximate" and p < 1.0
        round_salt = self.round_salt
        seed_salt = self.seed_salt

        # (1) fan out: key by the *neighbor* id a; value (b, s) keeps the
        # original source so edges can be inverted later.
        fanned = self.neighbors.flat_map(
            lambda kv: [(b, (kv[0], s)) for b, s in kv[1]],
            name="bound/fan_out",
        ).as_keyed(name="bound/fan_out_key")

        # (2) three-way join keyed by a: filter dead edges, tag solution
        # membership, invert back to key b.
        def invert(kv) -> Iterable[Tuple[int, Tuple[int, float, bool]]]:
            a, (edges, in_solution, in_remaining) = kv
            if not edges:
                return []
            if in_solution:
                flag = True
            elif in_remaining:
                flag = False
            else:
                return []  # a was discarded by a shrink step
            return [(b, (a, s, flag)) for b, s in edges]

        edges4 = cogroup(
            [fanned, self.solution, remaining], name="bound/threeway_join"
        ).flat_map(invert, name="bound/invert").as_keyed(
            name="bound/invert_key"
        )

        # (3) join with remaining + utilities keyed by b; sample and reduce.
        def reduce_bounds(kv):
            b, (partners, in_remaining, utility) = kv
            if not in_remaining or not utility:
                return []
            u = utility[0]
            mass_solution = 0.0
            unassigned: List[Tuple[int, float]] = []
            for a, s, a_in_solution in partners:
                if a_in_solution:
                    mass_solution += s
                else:
                    unassigned.append((a, s))
            if approximate and unassigned:
                if sampler == "weighted":
                    mean_s = sum(s for _, s in unassigned) / len(unassigned)
                else:
                    mean_s = 0.0
                mass_sampled = 0.0
                for a, s in unassigned:
                    if sampler == "weighted" and mean_s > 0:
                        keep_p = min(1.0, p * s / mean_s)
                    else:
                        keep_p = p
                    if edge_hash01(b, a, round_salt, seed_salt) < keep_p:
                        mass_sampled += s
            else:
                mass_sampled = sum(s for _, s in unassigned)
            umax = u - ratio * mass_solution
            lower = u - ratio * (mass_solution + mass_sampled)
            return [(b, (lower, umax))]

        return cogroup(
            [edges4, remaining, self.utilities], name="bound/bounds_join"
        ).flat_map(reduce_bounds, name="bound/reduce").as_keyed(
            name="bound/reduce_key"
        )


class PartitionedGreedy(PTransform):
    """One round of the partition-based distributed greedy (Alg. 6).

    Input: the unkeyed surviving ids.  Output: the round's survivors —
    the union of each partition's local greedy selection.  Expands to
    ``key_by(random partition) → group_by_key → flat_map(per-group
    greedy)``; with the optimizer on, the whole round executes as one
    shuffle plus one fused read stage (the reshard is elided and the
    per-group greedy runs inside the shuffle read).

    Partition assignment is seeded counter-based (iid uniform partition
    ids), so a fixed ``assignment_seed`` reproduces the round exactly on
    any backend.
    """

    def __init__(
        self,
        problem: Any,
        *,
        per_target: int,
        m_round: int,
        assignment_seed: int,
        base_penalty: Optional[np.ndarray] = None,
        name: str = "PartitionedGreedy",
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.per_target = int(per_target)
        self.m_round = int(m_round)
        self.assignment_seed = int(assignment_seed)
        self.base_penalty = base_penalty

    def expand(self, survivors: PCollection) -> PCollection:
        from repro.core.greedy import greedy_heap

        problem = self.problem
        base_penalty = self.base_penalty

        def assign(v: int, s=self.assignment_seed, mr=self.m_round) -> int:
            local = np.random.default_rng((s, v))
            return int(local.integers(mr))

        grouped = survivors.key_by(assign, name="greedy/partition").group_by_key(
            name="greedy/group"
        )

        def select_in_partition(kv, target=self.per_target):
            _pid, members = kv
            part = np.array(sorted(members), dtype=np.int64)
            sub = problem.restrict(part)
            local_penalty = (
                base_penalty[part] if base_penalty is not None else None
            )
            local = greedy_heap(
                sub, min(target, part.size), base_penalty=local_penalty
            )
            return part[local.selected].tolist()

        return grouped.flat_map(select_in_partition, name="greedy/select")
