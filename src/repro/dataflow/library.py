"""Reusable composite transforms (the engine's standard library).

Each class here is a :class:`~repro.dataflow.pcollection.PTransform`
extracted from a beam entry point: the multi-probe sharded kNN build
(:class:`ShardedKnn`), the bounding pre-pass's join-based bound
computation (:class:`BoundingFilter`), one round of the partition-based
distributed greedy (:class:`PartitionedGreedy`), and the generic
distributed per-key top-k (:class:`TopKPerKey`).  The beams are now thin
compositions of these over a
:class:`~repro.dataflow.options.DataflowContext`; anything else built on
the engine can reuse them the same way::

    merged = points.apply(ShardedKnn(x, centroids, k=10, nprobe=3))
    best   = scored | TopKPerKey(5)

Applying a composite tags its stages with the transform's name, so
``explain()`` renders each application as a named, indented group —
the pipeline-level structure stays legible as plans grow.

Composites are organization, not semantics: each expands to exactly the
primitive transforms the beams used to build by hand, so results,
metrics, and optimizer rewrites (combiner lifting, reshard elision,
post-shuffle fusion) are unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

import numpy as np

from repro.dataflow.columnar import BatchDoFn, ColumnarShard, as_records
from repro.dataflow.pcollection import Fold, PCollection, PTransform
from repro.dataflow.transforms import cogroup

__all__ = [
    "ShardedKnn",
    "TopKPerKey",
    "BoundingFilter",
    "PartitionedGreedy",
]

_MASK64 = (1 << 64) - 1


def edge_hash01(b: int, a: int, round_salt: int, seed_salt: int) -> float:
    """Deterministic float in [0, 1) per (edge, round) — distributed-safe.

    SplitMix64-style mixing over plain Python ints (wrap-around masked).
    A distributed runner has no global RNG stream; counter-based hashing
    is how reproducible per-edge sampling works in Beam.
    """
    x = (b * 0x9E3779B97F4A7C15) & _MASK64
    x = (x + a * 0xBF58476D1CE4E5B9) & _MASK64
    x = (x + round_salt * 2654435761 + seed_salt) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return (x >> 11) / float(1 << 53)


def edge_hash01_column(
    b: int, a: np.ndarray, round_salt: int, seed_salt: int
) -> np.ndarray:
    """Vectorized :func:`edge_hash01` over a source-id column.

    uint64 arithmetic wraps exactly like the masked Python ints, and the
    53-bit mantissa division is exact in float64 — bit-identical to the
    scalar hash for every edge (property-tested in ``test_columnar.py``).
    """
    x = np.asarray(a, dtype=np.uint64) * np.uint64(0xBF58476D1CE4E5B9)
    x = x + np.uint64((int(b) * 0x9E3779B97F4A7C15) & _MASK64)
    x = x + np.uint64((int(round_salt) * 2654435761 + int(seed_salt)) & _MASK64)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)) / float(1 << 53)


class ShardedKnn(PTransform):
    """IVF-sharded kNN candidate construction + per-point merge.

    Input: an unkeyed collection of point ids.  Output: keyed
    ``(point, {host: similarity})`` — each point's best-seen similarity
    per candidate neighbor across every probed cell (the caller takes the
    global top-k).  Three stages:

    1. *assign*: each point maps to its home cell plus the ``nprobe - 1``
       next-closest cells (multi-probe, so near-boundary neighbors are
       found) — only the home cell *hosts* the point as a candidate;
    2. *per-cell kNN*: group by cell and brute-force each cell locally —
       a worker only ever holds one cell;
    3. *merge*: combine candidate lists per point.  Written as the naive
       ``group_by_key().map_values(Fold)`` so the plan optimizer lifts it
       to ``combine_per_key`` (partial per-shard dicts shuffle instead of
       full candidate lists).

    ``x`` must be L2-normalized; ``centroids`` is the fitted coarse
    quantizer.  The stage DoFns capture both arrays, so the payload
    backends broadcast them once per worker.
    """

    def __init__(
        self,
        x: np.ndarray,
        centroids: np.ndarray,
        *,
        k: int,
        nprobe: int,
        name: str = "ShardedKnn",
    ) -> None:
        super().__init__(name)
        self.x = x
        self.centroids = centroids
        self.k = int(k)
        self.nprobe = min(max(1, int(nprobe)), centroids.shape[0])

    def expand(self, points: PCollection) -> PCollection:
        x, centroids, k, nprobe = self.x, self.centroids, self.k, self.nprobe

        # (1) multi-probe assignment: (cell, (point, is_home)).  Only the
        # home cell hosts the point (appears as a potential neighbor);
        # probe cells treat it as a query so boundary neighbors are found.
        def assign(v: int):
            sims = centroids @ x[v]
            order = np.argsort(-sims)[:nprobe]
            return [
                (int(cell), (v, probe_rank == 0))
                for probe_rank, cell in enumerate(order)
            ]

        def assign_batch(shard):
            # One matmul for the whole shard; emitted columnar so the
            # downstream shuffle routes the cell keys without ever
            # building row tuples.
            if isinstance(shard, ColumnarShard):
                ids = shard.columns[0].astype(np.int64, copy=False)
            else:
                ids = np.fromiter(shard, dtype=np.int64, count=len(shard))
            if ids.size == 0:
                return []
            sims = x[ids] @ centroids.T
            order = np.argsort(-sims, axis=1)[:, :nprobe]
            cells = order.astype(np.int64, copy=False).ravel()
            hosts = np.repeat(ids, nprobe)
            is_home = np.zeros(cells.size, dtype=bool)
            is_home[::nprobe] = True
            return ColumnarShard(cells, (hosts, is_home))

        assigned = points.flat_map(
            BatchDoFn(assign, assign_batch, label="knn/assign"),
            name="knn/assign",
        ).as_keyed(name="knn/assign_key")

        # (2) per-cell brute force: hosts are candidate neighbors, everyone
        # in the group (host or probe) is a query.
        def _cell_arrays(members):
            """(sorted hosts, sorted-unique queries) for one cell.

            Hosts are distinct within a cell (each point is home in
            exactly one cell), so ``np.sort`` equals the seed's
            ``sorted(...)``; ``np.unique`` equals ``sorted(set(...))``.
            """
            n_members = len(members)
            ids = np.fromiter(
                (m[0] for m in members), dtype=np.int64, count=n_members
            )
            home = np.fromiter(
                (m[1] for m in members), dtype=bool, count=n_members
            )
            return np.sort(ids[home]), np.unique(ids)

        def cell_knn(kv) -> List[Tuple[int, List[Tuple[int, float]]]]:
            # Row-path reference: one candidate mask + argpartition per
            # query.  This is the oracle the vectorized batch kernel is
            # checked against (same top-k sets; ties don't arise with
            # continuous similarities).
            _cell, members = kv
            hosts, queries = _cell_arrays(members)
            if hosts.size == 0:
                return []
            sims = x[queries] @ x[hosts].T
            out = []
            for qi, q in enumerate(queries.tolist()):
                row = sims[qi]
                mask = hosts != q
                cand_hosts = hosts[mask]
                cand_sims = row[mask]
                take = min(k, cand_hosts.size)
                if take == 0:
                    continue
                top = np.argpartition(cand_sims, -take)[-take:]
                out.append(
                    (q, list(zip(cand_hosts[top].tolist(),
                                 cand_sims[top].tolist())))
                )
            return out

        def cell_knn_batch(shard) -> List[Tuple[int, List[Tuple[int, float]]]]:
            # Columnar kernel: per cell, mask each query's self to -inf
            # and run ONE argpartition over the whole cell instead of
            # one per query.  A masked self can only enter the selection
            # when the cell has <= k real candidates — i.e. when the
            # selection is "all of them" — so dropping -inf entries
            # afterwards yields exactly the per-query top-k sets of
            # ``cell_knn`` (pair order within a list may differ; the
            # downstream max-merge is order-insensitive).
            out: List[Tuple[int, List[Tuple[int, float]]]] = []
            for kv in as_records(shard):
                _cell, members = kv
                hosts, queries = _cell_arrays(members)
                if hosts.size == 0:
                    continue
                sims = x[queries] @ x[hosts].T
                self_pos = np.searchsorted(hosts, queries)
                q_rows = np.flatnonzero(
                    (self_pos < hosts.size)
                    & (hosts[np.minimum(self_pos, hosts.size - 1)] == queries)
                )
                sims[q_rows, self_pos[q_rows]] = -np.inf
                kk = min(k, int(hosts.size))
                top = np.argpartition(sims, -kk, axis=1)[:, -kk:]
                top_sims = np.take_along_axis(sims, top, axis=1)
                top_hosts = hosts[top]
                # One whole-matrix validity count + tolist, then a plain
                # Python zip per query: the usual case (every slot real)
                # skips all per-row ndarray traffic.
                n_valid = (top_sims != -np.inf).sum(axis=1).tolist()
                host_rows = top_hosts.tolist()
                sim_rows = top_sims.tolist()
                neg_inf = float("-inf")
                for qi, q in enumerate(queries.tolist()):
                    nv = n_valid[qi]
                    if nv == kk:
                        pairs = list(zip(host_rows[qi], sim_rows[qi]))
                    elif nv:
                        pairs = [
                            (h, s)
                            for h, s in zip(host_rows[qi], sim_rows[qi])
                            if s != neg_inf
                        ]
                    else:
                        continue
                    out.append((q, pairs))
            return out

        candidates = assigned.group_by_key(name="knn/group").flat_map(
            BatchDoFn(cell_knn, cell_knn_batch, label="knn/cell_knn"),
            name="knn/cell_knn",
        ).as_keyed(name="knn/cand_key")

        # (3) merge per point, deduplicating hosts that appeared in several
        # probed cells.  Max-merge is order-insensitive, so optimized and
        # naive plans agree bit-for-bit.
        def merge_zero():
            return {}

        def merge_add(acc, pairs):
            if not acc:
                # First pairs list for this key: hosts within one cell's
                # top-k are distinct, so ``dict(pairs)`` is the loop's
                # exact result (same values, same insertion order) at C
                # speed — and almost every key sees exactly one list per
                # shard.
                return dict(pairs)
            for host, sim in pairs:
                prev = acc.get(host)
                if prev is None or sim > prev:
                    acc[host] = sim
            return acc

        def merge_merge(a, b):
            for host, sim in b.items():
                prev = a.get(host)
                if prev is None or sim > prev:
                    a[host] = sim
            return a

        # No ``batch`` on this fold: merging pair lists is dict work
        # either way, so a whole-value-list impl would only add a
        # grouping pass on top of the scalar merge.
        return candidates.group_by_key(name="knn/merge_group").map_values(
            Fold(merge_zero, merge_add, merge_merge, label="knn/topk"),
            name="knn/merge",
        )


class TopKPerKey(PTransform):
    """Distributed per-key top-k: ``(key, (item, score))`` pairs in,
    ``(key, [(item, score), ...])`` out — the k best-scoring distinct
    items per key, sorted by ``(-score, item)``.

    Duplicate items keep their maximum score.  Written as the naive
    ``group_by_key().map_values(Fold)`` so the optimizer lifts it to
    ``combine_per_key``: each shard ships at most ``k`` accumulator
    entries per key instead of every pair.  The fold is associative —
    trimming partials to ``k`` is safe because an entry dropped from a
    partial was beaten by ``k`` better entries that also reach the merge.
    """

    def __init__(self, k: int, *, name: str = "TopKPerKey") -> None:
        super().__init__(name)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)

    def expand(self, pairs: PCollection) -> PCollection:
        k = self.k

        # The accumulator is the output itself: at most ``k`` ``(item,
        # score)`` pairs kept sorted by ``(-score, item)``.  ``add``
        # mutates it in place (the engine's Folds may — accumulators are
        # stage-local, the same contract ShardedKnn's merge relies on),
        # so per-record work is O(k) with no dict/list churn.
        def add(acc, pair):
            item, score = pair
            for i, (existing, prev) in enumerate(acc):
                if existing == item:
                    if score <= prev:
                        return acc
                    del acc[i]
                    break
            rank = (-score, item)
            lo, hi = 0, len(acc)
            while lo < hi:
                mid = (lo + hi) // 2
                if (-acc[mid][1], acc[mid][0]) < rank:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < k:
                acc.insert(lo, (item, score))
                if len(acc) > k:
                    acc.pop()
            return acc

        def merge(a, b):
            for pair in b:
                a = add(a, pair)
            return a

        def batch(values):
            # Equal to folding ``add`` over ``values`` from ``[]``: the
            # incremental top-k keeps exactly the k best (item, max-score)
            # pairs — an entry of that set is never evicted (fewer than k
            # better entries exist to push it out) and always admitted
            # (when its maximal pair arrives, at most k - 1 better entries
            # occupy the accumulator) — so one dedupe-to-max + sort + trim
            # reproduces the fold's result without the per-record churn.
            best: dict = {}
            for item, score in values:
                prev = best.get(item)
                if prev is None or score > prev:
                    best[item] = score
            ranked = sorted(best.items(), key=lambda pair: (-pair[1], pair[0]))
            return ranked[:k]

        return pairs.group_by_key(name="topk/group").map_values(
            Fold(list, add, merge, label=f"topk/{k}", batch=batch),
            name="topk/fold",
        )


class BoundingFilter(PTransform):
    """One round of the bounding pre-pass's bound computation (Sec. 5).

    Input: the keyed *remaining* set ``(id, True)``.  Output: keyed
    ``(id, (lower, umax))`` bounds over it.  Expands to the paper's
    join-only plan — no machine ever holds the subset:

    1. fan out the neighbor graph, keying each edge by its *neighbor*;
    2. three-way cogroup with the partial solution and the remaining set:
       dead edges (endpoint shrunk away) drop, survivors re-key by their
       source with a solution-membership tag;
    3. cogroup with the remaining set and the utilities: per point, the
       solution mass and the (optionally hash-sampled) unassigned mass
       reduce to ``lower = u - ratio*(mass_sol + mass_unassigned)`` and
       ``umax = u - ratio*mass_sol``.

    Sampling (``mode="approximate"``, ``p < 1``) is counter-based
    Bernoulli per edge per round (:func:`edge_hash01`) — a distributed
    runner has no global RNG stream.
    """

    def __init__(
        self,
        neighbors: PCollection,
        utilities: PCollection,
        solution: PCollection,
        *,
        ratio: float,
        mode: str = "exact",
        sampler: str = "uniform",
        p: float = 1.0,
        round_salt: int = 0,
        seed_salt: int = 0,
        name: str = "BoundingFilter",
    ) -> None:
        super().__init__(name)
        self.neighbors = neighbors
        self.utilities = utilities
        self.solution = solution
        self.ratio = float(ratio)
        self.mode = mode
        self.sampler = sampler
        self.p = float(p)
        self.round_salt = int(round_salt)
        self.seed_salt = int(seed_salt)

    def expand(self, remaining: PCollection) -> PCollection:
        ratio = self.ratio
        sampler = self.sampler
        p = self.p
        approximate = self.mode == "approximate" and p < 1.0
        round_salt = self.round_salt
        seed_salt = self.seed_salt

        # (1) fan out: key by the *neighbor* id a; value (b, s) keeps the
        # original source so edges can be inverted later.
        def fan_out(kv):
            return [(b, (kv[0], s)) for b, s in kv[1]]

        def fan_out_batch(shard):
            # Emit the edge table columnar — (neighbor, source, weight)
            # arrays — so the join shuffle hashes and routes the neighbor
            # column without materializing one tuple per edge.
            records = (
                shard.to_records() if isinstance(shard, ColumnarShard)
                else shard
            )
            neighbor_ids: List[int] = []
            sources: List[int] = []
            weights: List[float] = []
            for a, edges in records:
                for b, s in edges:
                    neighbor_ids.append(b)
                    sources.append(a)
                    weights.append(s)
            if not neighbor_ids:
                return []
            return ColumnarShard(
                np.asarray(neighbor_ids, dtype=np.int64),
                (
                    np.asarray(sources, dtype=np.int64),
                    np.asarray(weights, dtype=np.float64),
                ),
            )

        fanned = self.neighbors.flat_map(
            BatchDoFn(fan_out, fan_out_batch, label="bound/fan_out"),
            name="bound/fan_out",
        ).as_keyed(name="bound/fan_out_key")

        # (2) three-way join keyed by a: filter dead edges, tag solution
        # membership, invert back to key b.
        def invert(kv) -> Iterable[Tuple[int, Tuple[int, float, bool]]]:
            a, (edges, in_solution, in_remaining) = kv
            if not edges:
                return []
            if in_solution:
                flag = True
            elif in_remaining:
                flag = False
            else:
                return []  # a was discarded by a shrink step
            return [(b, (a, s, flag)) for b, s in edges]

        edges4 = cogroup(
            [fanned, self.solution, remaining], name="bound/threeway_join"
        ).flat_map(invert, name="bound/invert").as_keyed(
            name="bound/invert_key"
        )

        # (3) join with remaining + utilities keyed by b; sample and reduce.
        def reduce_bounds(kv):
            b, (partners, in_remaining, utility) = kv
            if not in_remaining or not utility:
                return []
            u = utility[0]
            mass_solution = 0.0
            unassigned: List[Tuple[int, float]] = []
            for a, s, a_in_solution in partners:
                if a_in_solution:
                    mass_solution += s
                else:
                    unassigned.append((a, s))
            if approximate and unassigned:
                # One vectorized hash over the edge column (bit-identical
                # to per-edge edge_hash01); the kept-mass accumulation
                # stays a sequential Python-float sum in edge order so the
                # bound matches the scalar path to the last bit.
                source_col = np.fromiter(
                    (a for a, _ in unassigned),
                    dtype=np.int64,
                    count=len(unassigned),
                )
                hashes = edge_hash01_column(b, source_col, round_salt, seed_salt)
                if sampler == "weighted":
                    mean_s = sum(s for _, s in unassigned) / len(unassigned)
                else:
                    mean_s = 0.0
                if sampler == "weighted" and mean_s > 0:
                    weight_col = np.fromiter(
                        (s for _, s in unassigned),
                        dtype=np.float64,
                        count=len(unassigned),
                    )
                    keep = hashes < np.minimum(1.0, p * weight_col / mean_s)
                else:
                    keep = hashes < p
                mass_sampled = 0.0
                for (_a, s), kept in zip(unassigned, keep.tolist()):
                    if kept:
                        mass_sampled += s
            else:
                mass_sampled = sum(s for _, s in unassigned)
            umax = u - ratio * mass_solution
            lower = u - ratio * (mass_solution + mass_sampled)
            return [(b, (lower, umax))]

        return cogroup(
            [edges4, remaining, self.utilities], name="bound/bounds_join"
        ).flat_map(reduce_bounds, name="bound/reduce").as_keyed(
            name="bound/reduce_key"
        )


class PartitionedGreedy(PTransform):
    """One round of the partition-based distributed greedy (Alg. 6).

    Input: the unkeyed surviving ids.  Output: the round's survivors —
    the union of each partition's local greedy selection.  Expands to
    ``key_by(random partition) → group_by_key → flat_map(per-group
    greedy)``; with the optimizer on, the whole round executes as one
    shuffle plus one fused read stage (the reshard is elided and the
    per-group greedy runs inside the shuffle read).

    Partition assignment is seeded counter-based (iid uniform partition
    ids), so a fixed ``assignment_seed`` reproduces the round exactly on
    any backend.
    """

    def __init__(
        self,
        problem: Any,
        *,
        per_target: int,
        m_round: int,
        assignment_seed: int,
        base_penalty: Optional[np.ndarray] = None,
        name: str = "PartitionedGreedy",
    ) -> None:
        super().__init__(name)
        self.problem = problem
        self.per_target = int(per_target)
        self.m_round = int(m_round)
        self.assignment_seed = int(assignment_seed)
        self.base_penalty = base_penalty

    def expand(self, survivors: PCollection) -> PCollection:
        from repro.core.greedy import greedy_heap

        problem = self.problem
        base_penalty = self.base_penalty

        def assign(v: int, s=self.assignment_seed, mr=self.m_round) -> int:
            local = np.random.default_rng((s, v))
            return int(local.integers(mr))

        grouped = survivors.key_by(assign, name="greedy/partition").group_by_key(
            name="greedy/group"
        )

        def select_in_partition(kv, target=self.per_target):
            _pid, members = kv
            part = np.array(sorted(members), dtype=np.int64)
            sub = problem.restrict(part)
            local_penalty = (
                base_penalty[part] if base_penalty is not None else None
            )
            local = greedy_heap(
                sub, min(target, part.size), base_penalty=local_penalty
            )
            return part[local.selected].tolist()

        return grouped.flat_map(select_in_partition, name="greedy/select")
