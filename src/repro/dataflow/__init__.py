"""A Beam-like dataflow engine (the paper's Apache Beam substrate).

Section 5 implements bounding and scoring against the Beam programming
model: immutable ``PCollection`` s manipulated by ``Map`` / ``FlatMap`` /
``GroupByKey`` / ``CoGroupByKey`` transforms, "without worrying about how the
system processes the data".  This package provides that model with a **lazy
operator DAG** and a pluggable executor:

- transforms build nodes; execution happens at sinks (``count``,
  ``to_list``, ``combine_globally``, explicit ``run()``/``cache()``),
- a plan optimizer runs between DAG construction and execution: combiner
  lifting (``group_by_key().map_values(Fold)`` → ``combine_per_key`` with
  pre-shuffle partial aggregation), redundant-shuffle elision, and
  post-shuffle fusion — ``optimize=False`` keeps the naive plan reachable
  and ``PCollection.explain()`` renders the physical plan,
- adjacent element-wise stages fuse into one pass per shard (Beam's
  producer–consumer fusion; ``metrics.fused_stages`` counts the savings),
- a columnar shard runtime (:mod:`repro.dataflow.columnar`) executes
  operators that declare whole-shard NumPy implementations
  (:class:`~repro.dataflow.columnar.BatchDoFn`, ``Fold(batch=...)``)
  over struct-of-arrays :class:`~repro.dataflow.columnar.ColumnarShard`
  s, with automatic per-record fallback and bit-identical results
  (``columnar=False`` forces the pure row path),
- sources stream: ``create()``/``create_keyed()`` shard generators lazily
  in bounded chunks, so the driver never materializes the ground set,
- hash-shards every keyed operation across ``num_shards`` logical workers,
- runs per-shard stage work on a :class:`~repro.dataflow.executor.Executor`
  — :class:`~repro.dataflow.executor.SequentialExecutor` (default), the
  thread-pool :class:`~repro.dataflow.executor.ThreadExecutor`, the
  persistent-process-pool
  :class:`~repro.dataflow.executor.MultiprocessExecutor`, or the
  TCP-cluster :class:`~repro.dataflow.remote.RemoteExecutor` (one-time
  closure broadcast, heartbeat fault detection, shard retry) — with
  identical results and metrics on every backend,
- checkpoints materialization boundaries (``Pipeline(checkpoint_dir=...)``)
  keyed by deterministic plan digests, so killed drives resume from their
  last completed stage,
- meters the peak number of records any single shard ever held
  (:class:`~repro.dataflow.metrics.PipelineMetrics`), which is the
  reproduction's stand-in for per-machine DRAM, and counts shuffled
  records across stage boundaries.

The benches use those metrics to verify the paper's core claim: neither
bounding nor scoring ever requires one worker to hold the ground set or the
subset (``peak_shard_records ≪ n``).

Public configuration surface
----------------------------
Every engine knob lives on one validated, frozen
:class:`~repro.dataflow.options.EngineOptions` (constructible from
kwargs, dict/JSON, ``REPRO_ENGINE_*`` environment variables, or argparse
via :func:`~repro.dataflow.options.add_engine_arguments`), and a
:class:`~repro.dataflow.options.DataflowContext` owns the resolved
executor/cluster lifecycle for a whole multi-pipeline run::

    with DataflowContext(EngineOptions("multiprocess", num_shards=16)) as ctx:
        result, metrics = beam_bound(problem, k, context=ctx)
        graph, *_ = beam_knn_graph(x, 10, context=ctx)   # same worker pool

Reusable named composites (:class:`~repro.dataflow.pcollection.
PTransform`; apply with ``pcoll.apply(...)`` or ``pcoll | ...``) live in
:mod:`repro.dataflow.library` — ``ShardedKnn``, ``TopKPerKey``,
``BoundingFilter``, ``PartitionedGreedy`` — and render as named groups in
``PCollection.explain()``.
"""

from repro.dataflow.executor import (
    Executor,
    MultiprocessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    executor_names,
    register_executor,
    resolve_executor,
)
from repro.dataflow.options import (
    DataflowContext,
    EngineOptions,
    add_engine_arguments,
)
from repro.dataflow.remote import LocalCluster, RemoteExecutor
from repro.dataflow.columnar import BatchDoFn, ColumnarShard
from repro.dataflow.metrics import PipelineMetrics, StageProfile
from repro.dataflow.planner import AdaptivePlanner, predicted_vs_actual
from repro.dataflow.pcollection import Fold, PCollection, Pipeline, PTransform
from repro.dataflow.transforms import (
    cogroup,
    distributed_kth_largest,
    flatten,
)
from repro.dataflow.library import (
    BoundingFilter,
    PartitionedGreedy,
    ShardedKnn,
    TopKPerKey,
)
from repro.dataflow.bounding_beam import BeamBoundingDriver, beam_bound
from repro.dataflow.greedy_beam import beam_distributed_greedy
from repro.dataflow.knn_beam import beam_knn_graph
from repro.dataflow.scoring_beam import beam_score
from repro.dataflow.sieve_beam import StreamingSieve, beam_sieve_select

__all__ = [
    "Pipeline",
    "PCollection",
    "PTransform",
    "Fold",
    "BatchDoFn",
    "ColumnarShard",
    "EngineOptions",
    "DataflowContext",
    "add_engine_arguments",
    "PipelineMetrics",
    "StageProfile",
    "AdaptivePlanner",
    "predicted_vs_actual",
    "Executor",
    "SequentialExecutor",
    "ThreadExecutor",
    "MultiprocessExecutor",
    "RemoteExecutor",
    "LocalCluster",
    "resolve_executor",
    "register_executor",
    "executor_names",
    "cogroup",
    "flatten",
    "distributed_kth_largest",
    "ShardedKnn",
    "TopKPerKey",
    "BoundingFilter",
    "PartitionedGreedy",
    "beam_bound",
    "BeamBoundingDriver",
    "beam_score",
    "beam_distributed_greedy",
    "beam_knn_graph",
    "StreamingSieve",
    "beam_sieve_select",
]
