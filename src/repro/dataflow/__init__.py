"""A Beam-like dataflow engine (the paper's Apache Beam substrate).

Section 5 implements bounding and scoring against the Beam programming
model: immutable ``PCollection`` s manipulated by ``Map`` / ``FlatMap`` /
``GroupByKey`` / ``CoGroupByKey`` transforms, "without worrying about how the
system processes the data".  This package provides that model with an
executor that:

- hash-shards every keyed operation across ``num_shards`` logical workers,
- processes one shard at a time and meters the peak number of records any
  single shard ever held (:class:`~repro.dataflow.metrics.PipelineMetrics`),
  which is the reproduction's stand-in for per-machine DRAM,
- counts shuffled records across stage boundaries.

The benches use those metrics to verify the paper's core claim: neither
bounding nor scoring ever requires one worker to hold the ground set or the
subset (``peak_shard_records ≪ n``).
"""

from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import PCollection, Pipeline
from repro.dataflow.transforms import (
    cogroup,
    distributed_kth_largest,
    flatten,
)
from repro.dataflow.bounding_beam import BeamBoundingDriver, beam_bound
from repro.dataflow.greedy_beam import beam_distributed_greedy
from repro.dataflow.knn_beam import beam_knn_graph
from repro.dataflow.scoring_beam import beam_score

__all__ = [
    "Pipeline",
    "PCollection",
    "PipelineMetrics",
    "cogroup",
    "flatten",
    "distributed_kth_largest",
    "beam_bound",
    "BeamBoundingDriver",
    "beam_score",
    "beam_distributed_greedy",
    "beam_knn_graph",
]
