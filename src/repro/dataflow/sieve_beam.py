"""Sieve-streaming as a dataflow beam.

Wires :mod:`repro.baselines.sieve` through the engine so one-pass
selection quality is measured inside the same metrics and bench harness
as the batch beams.  The :class:`StreamingSieve` composite shards the
permuted stream, folds each shard's arrivals into a sequence-ordered log
with a threshold-ladder :class:`~repro.dataflow.pcollection.Fold` (the
optimizer lifts it to ``combine_per_key``, so each shard pre-folds its
slice before the shuffle), and replays the merged log through
:func:`repro.baselines.sieve.sieve_pass` — literally the reference loop —
on the reducer.

The ladder's admissions depend on *stream order*, so the fold's
accumulator is the order-recovering structure (a seq-sorted log), not the
sieves themselves: ``add``/``merge`` are associative and the replay sees
the exact permutation order whatever sharding, executor, or shuffle plane
delivered the records.  That makes :func:`beam_sieve_select` bit-identical
to :func:`repro.baselines.sieve.sieve_streaming` for the same seed — the
differential bar every engine rewrite in this repo is held to.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.greedi import BaselineResult
from repro.baselines.sieve import sieve_pass
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import Fold, PCollection, PTransform
from repro.dataflow.options import (
    DataflowContext,
    EngineOptions,
    engine_context,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


def _log_zero() -> list:
    return []


def _log_add(acc: list, arrival: Tuple[int, int]) -> list:
    """Insert one ``(seq, element)`` arrival, keeping the log seq-sorted."""
    bisect.insort(acc, arrival)
    return acc


def _log_merge(a: list, b: list) -> list:
    """Merge two shard logs (both seq-sorted; seqs are globally unique)."""
    if not a:
        return b
    if not b:
        return a
    merged = a + b
    merged.sort()
    return merged


def _log_batch(values: List[Tuple[int, int]]) -> list:
    """Whole-shard fold: one sort instead of per-record insorts."""
    return sorted(values)


def _make_replay(problem: SubsetProblem, k: int, epsilon: float):
    """Reducer DoFn: ordered log → ``(best_ids, num_sieves, memory)``."""

    def replay(log: list) -> Tuple[List[int], int, int]:
        order = [element for _seq, element in log]
        return sieve_pass(problem, k, epsilon, order)

    return replay


class StreamingSieve(PTransform):
    """Composite: permuted ``(seq, element)`` stream → sieve selection.

    Input: a collection of ``(seq, element_id)`` pairs (``seq`` is the
    element's position in the stream permutation).  Output: one record
    ``(0, (best_ids, num_sieves, memory_points))`` — the best sieve's
    admission-ordered selection plus the memory accounting
    :func:`~repro.baselines.sieve.sieve_streaming` reports.
    """

    def __init__(
        self, problem: SubsetProblem, k: int, *, epsilon: float = 0.2
    ) -> None:
        super().__init__("streaming_sieve")
        self.problem = problem
        self.k = k
        self.epsilon = epsilon

    def expand(self, pcoll: PCollection) -> PCollection:
        ladder_log = Fold(
            _log_zero,
            _log_add,
            _log_merge,
            label="sieve_ladder_log",
            batch=_log_batch,
        )
        return (
            pcoll.map(lambda arrival: (0, arrival), name="sieve/key")
            .as_keyed(name="sieve/route")
            .group_by_key(name="sieve/gather")
            .map_values(ladder_log, name="sieve/fold")
            .map_values(
                _make_replay(self.problem, self.k, self.epsilon),
                name="sieve/replay",
            )
        )


def beam_sieve_select(
    problem: SubsetProblem,
    k: int,
    *,
    epsilon: float = 0.2,
    seed: SeedLike = None,
    options: Optional[EngineOptions] = None,
    context: Optional[DataflowContext] = None,
) -> Tuple[BaselineResult, PipelineMetrics]:
    """One-pass sieve-streaming selection through the dataflow engine.

    Returns ``(result, metrics)`` where ``result`` is bit-identical to
    :func:`repro.baselines.sieve.sieve_streaming` for the same ``seed``
    (the RNG draw order — permutation, then top-up choice — is
    replicated exactly) and ``metrics`` is the engine's accounting of the
    run.
    """
    k = check_cardinality(k, problem.n)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    rng = as_generator(seed)
    if k == 0:
        return (
            BaselineResult(np.empty(0, dtype=np.int64), 0.0, 0),
            PipelineMetrics(),
        )
    stream = rng.permutation(problem.n)
    arrivals = list(enumerate(stream.tolist()))

    with engine_context(options, context) as ctx:
        pipeline = ctx.pipeline(plan_records=int(problem.n))
        try:
            folded = pipeline.create(arrivals, name="sieve/stream").apply(
                StreamingSieve(problem, k, epsilon=epsilon)
            )
            records = [
                record
                for shard in folded.run().iter_shards()
                for record in shard
            ]
            metrics = pipeline.metrics
        finally:
            pipeline.close()

    best_ids, num_sieves, memory_points = records[0][1]
    selected = np.array(sorted(best_ids), dtype=np.int64)
    if selected.size < k:
        pool = np.setdiff1d(np.arange(problem.n), selected)
        extra = rng.choice(pool, size=k - selected.size, replace=False)
        selected = np.sort(np.concatenate([selected, extra]))
    result = BaselineResult(
        selected=selected,
        objective=float(PairwiseObjective(problem).value(selected)),
        central_memory_points=int(memory_points * max(num_sieves, 1)),
    )
    return result, metrics
