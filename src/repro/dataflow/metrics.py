"""Execution metrics for the dataflow engine.

``peak_shard_records`` is the largest number of records a single logical
worker (shard) held at any stage — the engine's proxy for per-machine DRAM.
``shuffled_records`` counts records crossing a shuffle boundary
(GroupByKey / CoGroupByKey / rebalance), the dominant cost in Beam jobs.

``stage_counts`` tallies logical transforms as pipelines are *built*;
``executed_stages`` counts physical per-shard passes the executor actually
ran, and ``fused_stages`` counts logical element-wise stages that the fusion
pass folded into a downstream pass instead of running standalone — so
``executed_stages`` shrinks (and ``fused_stages`` grows) as fusion bites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PipelineMetrics:
    """Mutable counters threaded through a :class:`Pipeline`."""

    peak_shard_records: int = 0
    shuffled_records: int = 0
    materialized_records: int = 0
    executed_stages: int = 0
    fused_stages: int = 0
    stage_counts: Dict[str, int] = field(default_factory=dict)

    def observe_shard(self, n_records: int) -> None:
        if n_records > self.peak_shard_records:
            self.peak_shard_records = n_records

    def observe_shuffle(self, n_records: int) -> None:
        self.shuffled_records += n_records

    def observe_materialize(self, n_records: int) -> None:
        self.materialized_records += n_records

    def observe_stage_execution(self, *, fused: int = 0) -> None:
        """One physical stage ran; ``fused`` logical stages were folded in."""
        self.executed_stages += 1
        self.fused_stages += fused

    def count_stage(self, name: str) -> None:
        self.stage_counts[name] = self.stage_counts.get(name, 0) + 1

    def reset(self) -> None:
        self.peak_shard_records = 0
        self.shuffled_records = 0
        self.materialized_records = 0
        self.executed_stages = 0
        self.fused_stages = 0
        self.stage_counts.clear()

    def snapshot(self) -> "PipelineMetrics":
        """Copy for before/after comparisons in tests."""
        return PipelineMetrics(
            peak_shard_records=self.peak_shard_records,
            shuffled_records=self.shuffled_records,
            materialized_records=self.materialized_records,
            executed_stages=self.executed_stages,
            fused_stages=self.fused_stages,
            stage_counts=dict(self.stage_counts),
        )
