"""Execution metrics for the dataflow engine.

``peak_shard_records`` is the largest number of records a single logical
worker (shard) held at any stage — the engine's proxy for per-machine DRAM.
``shuffled_records`` counts records crossing a shuffle boundary
(GroupByKey / CoGroupByKey / rebalance), the dominant cost in Beam jobs.

``stage_counts`` tallies logical transforms as pipelines are *built*;
``executed_stages`` counts physical per-shard passes the executor actually
ran, and ``fused_stages`` counts logical element-wise stages that the fusion
pass folded into a downstream pass instead of running standalone — so
``executed_stages`` shrinks (and ``fused_stages`` grows) as fusion bites.

Optimizer counters (all recorded when the plan executes):

``lifted_combiners``
    ``group_by_key → map_values(Fold)`` chains the optimizer rewrote to
    ``combine_per_key`` with pre-shuffle partial aggregation.
``elided_shuffles``
    Redundant ``as_keyed``/``key_by`` reshards whose routing was subsumed
    by the downstream grouping shuffle (the records route once, not twice).
``pre_shuffle_records``
    Records *offered* to shuffle writes before partial aggregation;
    ``shuffled_records`` stays the post-aggregation volume that actually
    crossed the boundary, so ``pre - post`` is the optimizer's saving.

Checkpoint counters (``Pipeline(checkpoint_dir=...)`` only):

``checkpoint_hits``
    Materialization boundaries restored from a checkpoint instead of
    executed — on a resumed run, every hit is a subtree of skipped
    stages (so ``executed_stages`` shrinks accordingly).
``checkpoint_stores``
    Boundary outputs persisted to the checkpoint directory this run.

Columnar-runtime counters (``Pipeline(columnar=...)``):

``vectorized_stages``
    Physical stages whose fused chain (or lifted fold) ran at least one
    whole-shard batch implementation instead of the per-record row loop.
``columnar_rows``
    Records that reached a materialization or shuffle boundary in
    columnar (struct-of-arrays) layout rather than as Python row tuples.

Worker-to-worker shuffle counters (``EngineOptions(shuffle="worker")``
on the remote backend):

``p2p_shuffle_bytes``
    Serialized shuffle-bucket bytes fetched worker-to-worker (the data
    plane the driver never touched).
``driver_shuffle_bytes``
    Serialized shuffle-bucket bytes that crossed the driver anyway —
    inline buckets for unserializable shards plus the fault fallback.
    Zero on the fault-free path with every shard remoted.
``bucket_refetches``
    Buckets the driver had to re-derive from the original input shard
    because their producing worker was gone.
``bucket_fetch_chunks``
    Bounded ``MSG_BUCKET_CHUNK`` frames received while fetching peer
    buckets — large buckets stream in pieces instead of one frame per
    fetch, so this counts only the chunked (multi-frame) transfers;
    buckets small enough for a single frame add nothing.

Incremental-drive counters (``repro.incremental``):

``reused_shards``
    Data shards of an incremental drive whose per-shard branch restored
    from a checkpoint instead of re-executing (the delta left their
    content fingerprint unchanged).
``invalidated_shards``
    Data shards the delta's fingerprint intersection invalidated — their
    cone of stages re-executed.
``delta_records``
    Records carried by the deltas applied since the previous drive
    (appends + updates + expires).

Per-stage observations (``stage_profiles``):

Each physical stage the executor runs appends one :class:`StageProfile` —
wall time, input rows, executor payload bytes, attributed shuffle volume,
and the vectorized/fused flags.  Profiles are what the adaptive planner's
cost model calibrates against (``CostModel.calibrate``) and what the
feedback layer renders as predicted-vs-actual in
``report.extra["plan_costs"]``.  They carry wall-clock noise, so they are
deliberately excluded from the counter-style equality tests above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StageProfile:
    """One physical stage execution, as observed by the engine.

    ``digest`` is the plan digest of the materialization boundary the
    stage ran under (when the pipeline computes digests — i.e. whenever a
    checkpoint directory or an adaptive planner is attached), so repeated
    drives of the same plan accumulate a history keyed the same way
    checkpoints are.
    """

    label: str
    wall_ms: float = 0.0
    rows_in: int = 0
    fused: int = 0
    vectorized: bool = False
    payload_bytes: int = 0
    shuffled_records: int = 0
    digest: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "wall_ms": self.wall_ms,
            "rows_in": self.rows_in,
            "fused": self.fused,
            "vectorized": self.vectorized,
            "payload_bytes": self.payload_bytes,
            "shuffled_records": self.shuffled_records,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StageProfile":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        return cls(**known)  # type: ignore[arg-type]


@dataclass
class PipelineMetrics:
    """Mutable counters threaded through a :class:`Pipeline`."""

    peak_shard_records: int = 0
    shuffled_records: int = 0
    pre_shuffle_records: int = 0
    materialized_records: int = 0
    executed_stages: int = 0
    fused_stages: int = 0
    lifted_combiners: int = 0
    elided_shuffles: int = 0
    checkpoint_hits: int = 0
    checkpoint_stores: int = 0
    vectorized_stages: int = 0
    columnar_rows: int = 0
    p2p_shuffle_bytes: int = 0
    driver_shuffle_bytes: int = 0
    bucket_refetches: int = 0
    bucket_fetch_chunks: int = 0
    reused_shards: int = 0
    invalidated_shards: int = 0
    delta_records: int = 0
    stage_counts: Dict[str, int] = field(default_factory=dict)
    stage_profiles: List[StageProfile] = field(default_factory=list)

    def observe_shard(self, n_records: int, *, columnar: bool = False) -> None:
        if n_records > self.peak_shard_records:
            self.peak_shard_records = n_records
        if columnar:
            self.columnar_rows += n_records

    def observe_shuffle(
        self, n_records: int, pre_records: Optional[int] = None
    ) -> None:
        """``n_records`` crossed a shuffle; ``pre_records`` (default: the
        same) were offered before partial aggregation."""
        self.shuffled_records += n_records
        self.pre_shuffle_records += (
            n_records if pre_records is None else pre_records
        )

    def observe_materialize(self, n_records: int) -> None:
        self.materialized_records += n_records

    def observe_stage_execution(self, *, fused: int = 0) -> None:
        """One physical stage ran; ``fused`` logical stages were folded in."""
        self.executed_stages += 1
        self.fused_stages += fused

    def observe_vectorized_stage(self) -> None:
        self.vectorized_stages += 1

    def observe_stage_profile(self, profile: StageProfile) -> None:
        self.stage_profiles.append(profile)

    def attribute_shuffle_to_last_stage(self, n_records: int) -> None:
        """Credit a shuffle's moved volume to the stage that wrote it.

        Called right after the shuffle-write stage's profile was appended,
        so ``stage_profiles[-1]`` is that write stage.
        """
        if self.stage_profiles:
            self.stage_profiles[-1].shuffled_records += n_records

    def observe_exchange(
        self,
        *,
        p2p_bytes: int,
        driver_bytes: int,
        refetches: int,
        fetch_chunks: int = 0,
    ) -> None:
        """One worker-to-worker shuffle exchange's byte accounting."""
        self.p2p_shuffle_bytes += p2p_bytes
        self.driver_shuffle_bytes += driver_bytes
        self.bucket_refetches += refetches
        self.bucket_fetch_chunks += fetch_chunks

    def observe_incremental(
        self, *, reused: int = 0, invalidated: int = 0, delta_records: int = 0
    ) -> None:
        """One incremental drive's shard-reuse accounting."""
        self.reused_shards += reused
        self.invalidated_shards += invalidated
        self.delta_records += delta_records

    def observe_lifted_combiner(self) -> None:
        self.lifted_combiners += 1

    def observe_elided_shuffles(self, n: int = 1) -> None:
        self.elided_shuffles += n

    def observe_checkpoint_hit(self) -> None:
        self.checkpoint_hits += 1

    def observe_checkpoint_store(self) -> None:
        self.checkpoint_stores += 1

    def count_stage(self, name: str) -> None:
        self.stage_counts[name] = self.stage_counts.get(name, 0) + 1

    def reset(self) -> None:
        self.peak_shard_records = 0
        self.shuffled_records = 0
        self.pre_shuffle_records = 0
        self.materialized_records = 0
        self.executed_stages = 0
        self.fused_stages = 0
        self.lifted_combiners = 0
        self.elided_shuffles = 0
        self.checkpoint_hits = 0
        self.checkpoint_stores = 0
        self.vectorized_stages = 0
        self.columnar_rows = 0
        self.p2p_shuffle_bytes = 0
        self.driver_shuffle_bytes = 0
        self.bucket_refetches = 0
        self.bucket_fetch_chunks = 0
        self.reused_shards = 0
        self.invalidated_shards = 0
        self.delta_records = 0
        self.stage_counts.clear()
        self.stage_profiles.clear()

    def snapshot(self) -> "PipelineMetrics":
        """Copy for before/after comparisons in tests."""
        return PipelineMetrics(
            peak_shard_records=self.peak_shard_records,
            shuffled_records=self.shuffled_records,
            pre_shuffle_records=self.pre_shuffle_records,
            materialized_records=self.materialized_records,
            executed_stages=self.executed_stages,
            fused_stages=self.fused_stages,
            lifted_combiners=self.lifted_combiners,
            elided_shuffles=self.elided_shuffles,
            checkpoint_hits=self.checkpoint_hits,
            checkpoint_stores=self.checkpoint_stores,
            vectorized_stages=self.vectorized_stages,
            columnar_rows=self.columnar_rows,
            p2p_shuffle_bytes=self.p2p_shuffle_bytes,
            driver_shuffle_bytes=self.driver_shuffle_bytes,
            bucket_refetches=self.bucket_refetches,
            bucket_fetch_chunks=self.bucket_fetch_chunks,
            reused_shards=self.reused_shards,
            invalidated_shards=self.invalidated_shards,
            delta_records=self.delta_records,
            stage_counts=dict(self.stage_counts),
            stage_profiles=[
                StageProfile(**p.to_dict()) for p in self.stage_profiles
            ],
        )
