"""Distributed greedy (Alg. 6) expressed on the dataflow engine.

Section 4.4 notes the multi-round algorithm maps onto data processing
frameworks: the random partitioning is a shuffle, each partition's greedy
is a per-group reduction, and the union "can be implemented without
materializing all data in memory".  This module is that mapping on our
Beam-like engine: each round applies the
:class:`~repro.dataflow.library.PartitionedGreedy` composite

    survivors ─ key_by(random partition id) ─ group_by_key
              ─ per-group centralized greedy ─ flatten

with per-shard memory metered.  Behaviour matches the in-memory
implementation given the same partition assignment; partitioning here is
hash-of-rng-draw based, so the two implementations are statistically (not
bit-) identical.

Engine configuration is one :class:`~repro.dataflow.options.EngineOptions`
(``options=``) or a shared :class:`~repro.dataflow.options.DataflowContext`
(``context=`` — how the end-to-end selector shares a worker pool between
bounding and greedy).  This beam ingests its (array-backed) ground set
eagerly by default (``options.stream_source=None``); the old per-call
engine keywords are deprecated shims.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    RoundStats,
    fingerprint,
    problem_fingerprint,
    resolve_ground,
)
from repro.core.problem import SubsetProblem
from repro.dataflow.library import PartitionedGreedy
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.options import (
    UNSET,
    DataflowContext,
    EngineOptions,
    engine_context,
    legacy_engine_options,
)
from repro.utils.rng import SeedLike, as_generator


def beam_distributed_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    m: int,
    rounds: int = 1,
    adaptive: bool = False,
    gamma: float = 0.75,
    candidates: Optional[np.ndarray] = None,
    base_penalty: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    options: Optional[EngineOptions] = None,
    context: Optional[DataflowContext] = None,
    num_shards=UNSET,
    executor=UNSET,
    spill_to_disk=UNSET,
    optimize=UNSET,
    stream_source=UNSET,
    checkpoint_dir=UNSET,
) -> Tuple[DistributedResult, PipelineMetrics]:
    """Algorithm 6 as a dataflow job; returns (result, engine metrics).

    The per-group greedy runs on the problem restricted to the group — the
    same subgraph restriction (cross-partition edges dropped) as the
    in-memory implementation.  ``candidates`` restricts the ground set (the
    remaining set after bounding) and ``base_penalty`` warm-starts each
    per-partition greedy with the penalty from an existing partial solution,
    mirroring :func:`repro.core.distributed.distributed_greedy`.

    Engine knobs live on ``options`` (or a shared ``context``).  With
    ``optimize`` on (the default) each round's composite executes as one
    shuffle (the ``key_by`` reshard is elided) plus one fused read stage
    (the per-group greedy runs inside the shuffle read).
    ``options.stream_source=True`` ingests the ground set through the
    chunked streaming source path, so the driver never holds it whole.
    With a checkpoint directory, each round's boundaries key on a plan
    digest (the round DoFns capture the per-round seed draws, so a seeded
    rerun hits the same keys): a killed drive resumes from its last
    completed round.
    """
    options = legacy_engine_options(
        {
            "num_shards": num_shards, "executor": executor,
            "spill_to_disk": spill_to_disk, "optimize": optimize,
            "stream_source": stream_source, "checkpoint_dir": checkpoint_dir,
        },
        options=options, context=context, api="beam_distributed_greedy",
    )
    if m < 1 or rounds < 1:
        raise ValueError("m and rounds must be >= 1")
    rng = as_generator(seed)
    ground, k = resolve_ground(problem.n, candidates, k)
    n0 = int(ground.size)
    schedule = LinearDeltaSchedule(gamma)

    with engine_context(options, context) as ctx:
        opts = ctx.options
        # Input-size hint for the adaptive planner's cost gates.
        pipeline_overrides = {"plan_records": n0}
        if opts.checkpoint_dir is not None:
            # Pins the streamed ground set's content (the eager path hashes
            # source contents directly, so this only matters for
            # ``stream_source=True`` — but it must agree with that data).
            pipeline_overrides["checkpoint_salt"] = fingerprint(
                "greedy-source", problem_fingerprint(problem), ground
            )
        pipeline = ctx.pipeline(**pipeline_overrides)
        try:
            if k == 0:
                return (
                    DistributedResult(np.empty(0, dtype=np.int64)),
                    pipeline.metrics,
                )
            # Streaming feeds a generator so the driver never materializes
            # the ground list; int(v) matches tolist()'s Python ints
            # bit-for-bit.
            if opts.resolve_stream(False):
                source: "Iterable[int]" = (int(v) for v in ground)
            else:
                source = ground.tolist()
            survivors = pipeline.create(source, name="greedy/source")
            partition_cap = int(np.ceil(n0 / m))
            stats: List[RoundStats] = []

            for round_idx in range(1, rounds + 1):
                input_size = survivors.count()
                if input_size == 0:
                    break
                n_round = min(schedule(n0, rounds, round_idx, k), input_size)
                if adaptive:
                    m_round = int(np.ceil(input_size / partition_cap))
                else:
                    m_round = m
                m_round = max(1, min(m_round, input_size))
                per_target = int(np.ceil(n_round / m_round))

                # Random partition assignment: a per-round permutation-free
                # draw (iid uniform partition ids; expected balance is fine
                # for the shapes we reproduce and it is the natural
                # dataflow formulation).
                survivors = survivors.apply(
                    PartitionedGreedy(
                        problem,
                        per_target=per_target,
                        m_round=m_round,
                        assignment_seed=int(rng.integers(0, 2**31 - 1)),
                        base_penalty=base_penalty,
                    ),
                    name=f"PartitionedGreedy[round {round_idx}]",
                )
                stats.append(
                    RoundStats(
                        round_idx=round_idx,
                        input_size=int(input_size),
                        target_size=int(n_round),
                        m_round=m_round,
                        per_partition_target=per_target,
                        output_size=int(survivors.count()),
                    )
                )

            final = np.array(sorted(survivors.to_list()), dtype=np.int64)
            if final.size > k:
                final = np.sort(rng.choice(final, size=k, replace=False))
            return (
                DistributedResult(selected=final, rounds=stats),
                pipeline.metrics,
            )
        finally:
            pipeline.close()
