"""Distributed greedy (Alg. 6) expressed on the dataflow engine.

Section 4.4 notes the multi-round algorithm maps onto data processing
frameworks: the random partitioning is a shuffle, each partition's greedy is
a per-group reduction, and the union "can be implemented without
materializing all data in memory".  This module is that mapping on our
Beam-like engine: each round is

    survivors ─ key_by(random partition id) ─ group_by_key
              ─ per-group centralized greedy ─ flatten

with per-shard memory metered.  Behaviour matches the in-memory
implementation given the same partition assignment; partitioning here is
hash-of-rng-draw based, so the two implementations are statistically (not
bit-) identical.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    RoundStats,
    fingerprint,
    problem_fingerprint,
    resolve_ground,
)
from repro.core.greedy import greedy_heap
from repro.core.problem import SubsetProblem
from repro.dataflow.metrics import PipelineMetrics
from repro.dataflow.pcollection import Pipeline
from repro.utils.rng import SeedLike, as_generator


def beam_distributed_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    m: int,
    rounds: int = 1,
    adaptive: bool = False,
    gamma: float = 0.75,
    num_shards: int = 8,
    executor="sequential",
    spill_to_disk: bool = False,
    optimize: "bool | None" = None,
    stream_source: bool = False,
    checkpoint_dir: "str | None" = None,
    candidates: Optional[np.ndarray] = None,
    base_penalty: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> Tuple[DistributedResult, PipelineMetrics]:
    """Algorithm 6 as a dataflow job; returns (result, engine metrics).

    The per-group greedy runs on the problem restricted to the group — the
    same subgraph restriction (cross-partition edges dropped) as the
    in-memory implementation.  ``candidates`` restricts the ground set (the
    remaining set after bounding) and ``base_penalty`` warm-starts each
    per-partition greedy with the penalty from an existing partial solution,
    mirroring :func:`repro.core.distributed.distributed_greedy`.

    With ``optimize`` on (the default) each round's
    ``key_by → group_by_key → flat_map(select)`` executes as one shuffle
    (the ``key_by`` reshard is elided) plus one fused read stage (the
    per-group greedy runs inside the shuffle read).  ``stream_source``
    ingests the ground set through the chunked streaming source path, so
    the driver never holds it whole.  ``checkpoint_dir`` persists each
    round's materialization boundaries keyed by a plan digest (the round
    DoFns capture the per-round seed draws, so a seeded rerun hits the
    same keys): a killed drive resumes from its last completed round.
    """
    if m < 1 or rounds < 1:
        raise ValueError("m and rounds must be >= 1")
    rng = as_generator(seed)
    ground, k = resolve_ground(problem.n, candidates, k)
    n0 = int(ground.size)
    checkpoint_salt = None
    if checkpoint_dir is not None:
        # Pins the streamed ground set's content (the eager path hashes
        # source contents directly, so this only matters for
        # ``stream_source=True`` — but it must agree with that data).
        checkpoint_salt = fingerprint(
            "greedy-source", problem_fingerprint(problem), ground
        )
    pipeline = Pipeline(
        num_shards, executor=executor, spill_to_disk=spill_to_disk,
        optimize=optimize,
        checkpoint_dir=checkpoint_dir, checkpoint_salt=checkpoint_salt,
    )
    schedule = LinearDeltaSchedule(gamma)

    try:
        if k == 0:
            return (
                DistributedResult(np.empty(0, dtype=np.int64)),
                pipeline.metrics,
            )
        # Streaming feeds a generator so the driver never materializes the
        # ground list; int(v) matches tolist()'s Python ints bit-for-bit.
        if stream_source:
            source: "Iterable[int]" = (int(v) for v in ground)
        else:
            source = ground.tolist()
        survivors = pipeline.create(source, name="greedy/source")
        partition_cap = int(np.ceil(n0 / m))
        stats: List[RoundStats] = []

        for round_idx in range(1, rounds + 1):
            input_size = survivors.count()
            if input_size == 0:
                break
            n_round = min(schedule(n0, rounds, round_idx, k), input_size)
            if adaptive:
                m_round = int(np.ceil(input_size / partition_cap))
            else:
                m_round = m
            m_round = max(1, min(m_round, input_size))
            per_target = int(np.ceil(n_round / m_round))

            # Random partition assignment: a per-round random permutation-free
            # draw (iid uniform partition ids; expected balance is fine for the
            # shapes we reproduce and it is the natural dataflow formulation).
            assignment_seed = int(rng.integers(0, 2**31 - 1))

            def assign(v: int, s=assignment_seed, mr=m_round) -> int:
                local = np.random.default_rng((s, v))
                return int(local.integers(mr))

            grouped = survivors.key_by(assign, name="greedy/partition").group_by_key(
                name="greedy/group"
            )

            def select_in_partition(kv, target=per_target):
                _pid, members = kv
                part = np.array(sorted(members), dtype=np.int64)
                sub = problem.restrict(part)
                local_penalty = (
                    base_penalty[part] if base_penalty is not None else None
                )
                local = greedy_heap(
                    sub, min(target, part.size), base_penalty=local_penalty
                )
                return part[local.selected].tolist()

            survivors = grouped.flat_map(select_in_partition, name="greedy/select")
            stats.append(
                RoundStats(
                    round_idx=round_idx,
                    input_size=int(input_size),
                    target_size=int(n_round),
                    m_round=m_round,
                    per_partition_target=per_target,
                    output_size=int(survivors.count()),
                )
            )

        final = np.array(sorted(survivors.to_list()), dtype=np.int64)
        if final.size > k:
            final = np.sort(rng.choice(final, size=k, replace=False))
        return (
            DistributedResult(selected=final, rounds=stats),
            pipeline.metrics,
        )
    finally:
        pipeline.close()
