"""Sieve-Streaming baseline (Badanidiyuru et al., 2014).

The paper's related work cites streaming submodular maximization as the
other route to bounded memory.  Sieve-Streaming keeps one candidate set per
threshold in a geometric grid of guesses of OPT and adds a streamed element
to every sieve whose threshold its marginal gain clears, using
``O((k log k)/ε)`` memory and a single pass.

Included as a baseline to contrast with the paper's approach: sieves bound
*one machine's* memory but still materialize a full k-subset per sieve — at
billion-point scale with k in the billions that is exactly what breaks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.greedi import BaselineResult
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


def sieve_pass(
    problem: SubsetProblem,
    k: int,
    epsilon: float,
    order: Sequence[int],
) -> Tuple[List[int], int, int]:
    """The single streaming pass, factored out of :func:`sieve_streaming`.

    Consumes element ids in ``order`` and returns ``(best_ids,
    num_sieves, memory_points)`` — the best sieve's selection (in
    admission order), how many threshold sieves were live at the end, and
    the largest per-sieve candidate set.  Shared with the dataflow beam
    (:mod:`repro.dataflow.sieve_beam`), so the engine path and this
    reference run literally the same loop.
    """
    alpha, beta = problem.alpha, problem.beta
    u = problem.utilities
    graph = problem.graph

    m_best = 0.0  # best singleton value so far
    # sieve state per threshold index i: (ids list, mask, value)
    sieves: Dict[int, tuple] = {}
    log_base = np.log(1.0 + epsilon)

    def live_range(m: float) -> range:
        lo = int(np.floor(np.log(max(m, 1e-300)) / log_base))
        hi = int(np.ceil(np.log(max(2.0 * k * m, 1e-300)) / log_base))
        return range(lo, hi + 1)

    for v in order:
        singleton = alpha * u[v]
        if singleton > m_best:
            m_best = singleton
            valid = set(live_range(m_best))
            for i in [i for i in sieves if i not in valid]:
                del sieves[i]
        if m_best <= 0:
            continue
        nbrs, ws = graph.neighbors(v)
        for i in live_range(m_best):
            if i not in sieves:
                sieves[i] = ([], np.zeros(problem.n, dtype=bool), 0.0)
            ids, mask, value = sieves[i]
            if len(ids) >= k or mask[v]:
                continue
            delta = (1.0 + epsilon) ** i
            gain = alpha * u[v] - beta * float(ws[mask[nbrs]].sum())
            need = (delta / 2.0 - value) / (k - len(ids))
            if gain >= need:
                ids.append(v)
                mask[v] = True
                sieves[i] = (ids, mask, value + gain)

    best_ids: List[int] = []
    best_value = -np.inf
    for ids, _mask, value in sieves.values():
        if ids and value > best_value:
            best_value = value
            best_ids = ids
    memory_points = max((len(ids) for ids, _m, _v in sieves.values()), default=0)
    return best_ids, len(sieves), memory_points


def sieve_streaming(
    problem: SubsetProblem,
    k: int,
    *,
    epsilon: float = 0.2,
    seed: SeedLike = None,
) -> BaselineResult:
    """Single-pass sieve-streaming under a cardinality constraint.

    Elements stream in random order (``seed``).  Thresholds form the grid
    ``{(1+ε)^i}`` covering ``[m, 2·k·m]`` where ``m`` is the best singleton
    seen so far; each sieve admits an element whose marginal gain is at
    least ``(Δ/2 - f(S))/(k - |S|)`` for its OPT-guess ``Δ``.
    """
    k = check_cardinality(k, problem.n)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    rng = as_generator(seed)
    if k == 0:
        return BaselineResult(np.empty(0, dtype=np.int64), 0.0, 0)

    objective = PairwiseObjective(problem)
    stream = rng.permutation(problem.n)
    best_ids, num_sieves, memory_points = sieve_pass(
        problem, k, epsilon, stream.tolist()
    )
    selected = np.array(sorted(best_ids), dtype=np.int64)
    # Top up with random unselected points if the best sieve is short.
    if selected.size < k:
        pool = np.setdiff1d(np.arange(problem.n), selected)
        extra = rng.choice(pool, size=k - selected.size, replace=False)
        selected = np.sort(np.concatenate([selected, extra]))
    return BaselineResult(
        selected=selected,
        objective=float(objective.value(selected)),
        central_memory_points=int(memory_points * max(num_sieves, 1)),
    )
