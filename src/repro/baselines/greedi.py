"""GreeDi and RandGreeDi distributed baselines (Sec. 2).

Two-stage MapReduce scheme: partition, per-partition centralized greedy
selecting ``k`` each, then a *final centralized greedy over the union of all
per-partition results*.  The final stage is exactly what does not scale —
it needs one machine holding ``m * k`` points (terabytes at billion scale) —
and is what the paper's multi-round scheme eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


@dataclass
class BaselineResult:
    """Selection plus the systems footprint the baseline implies."""

    selected: np.ndarray
    objective: float
    central_memory_points: int  # points one machine must hold at once

    def __len__(self) -> int:
        return int(self.selected.size)


def _two_stage(
    problem: SubsetProblem,
    k: int,
    partitions: List[np.ndarray],
) -> BaselineResult:
    """Shared GreeDi skeleton: per-partition greedy, then greedy-on-union."""
    union_parts: List[np.ndarray] = []
    for part in partitions:
        sub = problem.restrict(part)
        local = greedy_heap(sub, min(k, part.size))
        union_parts.append(part[local.selected])
    union = np.unique(np.concatenate(union_parts))
    # Final centralized stage (the memory bottleneck).
    sub = problem.restrict(union)
    final_local = greedy_heap(sub, min(k, union.size))
    selected = np.sort(union[final_local.selected])
    objective = PairwiseObjective(problem).value(selected)
    return BaselineResult(
        selected=selected,
        objective=float(objective),
        central_memory_points=int(union.size),
    )


def greedi(
    problem: SubsetProblem, k: int, *, m: int, seed: SeedLike = None
) -> BaselineResult:
    """GreeDi with *arbitrary* (contiguous) partitions."""
    k = check_cardinality(k, problem.n)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    ids = np.arange(problem.n, dtype=np.int64)
    partitions = [p for p in np.array_split(ids, m) if p.size]
    return _two_stage(problem, k, partitions)


def rand_greedi(
    problem: SubsetProblem, k: int, *, m: int, seed: SeedLike = None
) -> BaselineResult:
    """RandGreeDi: random partitioning (constant-factor guarantee)."""
    k = check_cardinality(k, problem.n)
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    rng = as_generator(seed)
    perm = rng.permutation(problem.n).astype(np.int64)
    partitions = [p for p in np.array_split(perm, m) if p.size]
    return _two_stage(problem, k, partitions)
