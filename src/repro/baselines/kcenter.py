"""Greedy k-center (farthest-first traversal) baseline.

The related work (Sec. 2) contrasts submodular selection with k-center
clustering approaches (Ramalingam et al., 2023, and the parallel k-center
line of work).  Farthest-first gives the classic 2-approximation for the
k-center objective and serves as the diversity-only baseline: it ignores
utilities entirely.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedi import BaselineResult
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


def k_center(
    problem: SubsetProblem,
    k: int,
    embeddings: np.ndarray,
    *,
    seed: SeedLike = None,
) -> BaselineResult:
    """Farthest-first traversal over ``embeddings`` (Euclidean distance).

    The first center is random; each subsequent center is the point farthest
    from all chosen centers.  Scored with the submodular objective so it is
    comparable to the other selectors.
    """
    k = check_cardinality(k, problem.n)
    x = np.asarray(embeddings, dtype=np.float64)
    if x.shape[0] != problem.n:
        raise ValueError("embeddings must align with the problem's ground set")
    rng = as_generator(seed)
    if k == 0:
        selected = np.empty(0, dtype=np.int64)
    else:
        first = int(rng.integers(problem.n))
        centers = [first]
        dist = np.linalg.norm(x - x[first], axis=1)
        for _ in range(k - 1):
            nxt = int(np.argmax(dist))
            centers.append(nxt)
            np.minimum(dist, np.linalg.norm(x - x[nxt], axis=1), out=dist)
        selected = np.sort(np.array(centers, dtype=np.int64))
    return BaselineResult(
        selected=selected,
        objective=float(PairwiseObjective(problem).value(selected)),
        central_memory_points=problem.n,  # needs all embeddings resident
    )
