"""Baseline selection algorithms from the related work (Sec. 2).

Implemented for the comparison benches:

- :func:`~repro.baselines.greedi.greedi` — GreeDi (Mirzasoleiman et al.,
  2016): arbitrary partitions, per-partition greedy of ``k``, final
  centralized greedy on the union (which *requires a machine holding m·k
  points* — the constraint the paper removes).
- :func:`~repro.baselines.greedi.rand_greedi` — RandGreeDi (Barbosa et al.,
  2015): same with random partitioning.
- :func:`~repro.baselines.sample_prune.sample_and_prune` — Sample&Prune
  (Kumar et al., 2015).
- :func:`~repro.baselines.random_subset.random_subset` — uniform baseline.
- :func:`~repro.baselines.kcenter.k_center` — farthest-first traversal, the
  clustering-flavored alternative.

Every baseline reports the central-machine memory it would need
(``central_memory_points``) so the benches can show the paper's point: at
billion scale only the bounding + multi-round approach stays bounded.
"""

from repro.baselines.greedi import BaselineResult, greedi, rand_greedi
from repro.baselines.kcenter import k_center
from repro.baselines.random_subset import random_subset
from repro.baselines.sample_prune import sample_and_prune
from repro.baselines.sieve import sieve_streaming

__all__ = [
    "BaselineResult",
    "greedi",
    "rand_greedi",
    "sample_and_prune",
    "random_subset",
    "k_center",
    "sieve_streaming",
]
