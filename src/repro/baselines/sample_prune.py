"""Sample&Prune (Kumar et al., 2015) — MapReduce greedy baseline.

Iterates: (1) sample a memory-bounded subset of the surviving ground set,
(2) run centralized greedy on (current solution ∪ sample) to extend the
solution, (3) prune every surviving point whose marginal gain w.r.t. the
current solution falls below the smallest gain realized in this round.
The memory assumption is ``O(k n^delta)`` per machine; we surface the
sample cap as ``central_memory_points``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.greedi import BaselineResult
from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


def sample_and_prune(
    problem: SubsetProblem,
    k: int,
    *,
    memory_cap: int | None = None,
    max_rounds: int = 50,
    seed: SeedLike = None,
) -> BaselineResult:
    """Run Sample&Prune until ``k`` points are selected.

    Parameters
    ----------
    memory_cap:
        Max points one machine may hold (sample size per round); defaults to
        ``max(4k, sqrt(n*k))``, the paper's ``O(k n^delta)`` regime.
    """
    k = check_cardinality(k, problem.n)
    rng = as_generator(seed)
    n = problem.n
    if memory_cap is None:
        memory_cap = int(max(4 * k, np.sqrt(float(n) * max(k, 1))))
    memory_cap = max(memory_cap, k + 1)
    objective = PairwiseObjective(problem)

    solution = np.empty(0, dtype=np.int64)
    solution_mask = np.zeros(n, dtype=bool)
    surviving = np.arange(n, dtype=np.int64)
    for _ in range(max_rounds):
        if solution.size >= k or surviving.size == 0:
            break
        budget = memory_cap - solution.size
        take = min(budget, surviving.size)
        sample = rng.choice(surviving, size=take, replace=False)
        candidates = np.concatenate([solution, sample])
        sub = problem.restrict(candidates)
        want = min(k, candidates.size)
        # Warm-start: force the existing solution by zero-penalty trick —
        # instead, select greedily among candidates with the solution's
        # pairwise influence included, then merge.
        base_mask = np.zeros(n, dtype=bool)
        base_mask[solution] = True
        penalty_global = problem.beta * problem.graph.neighbor_mass(base_mask)
        local_new = greedy_heap(
            problem.restrict(sample),
            min(k - solution.size, sample.size),
            base_penalty=penalty_global[sample],
        )
        new_ids = sample[local_new.selected]
        if new_ids.size == 0:
            break
        solution = np.concatenate([solution, new_ids])
        solution_mask[new_ids] = True
        # Prune: drop survivors whose marginal gain is below the smallest
        # gain realized this round (they can never beat selected points).
        threshold = float(local_new.gains.min())
        gains = objective.marginal_gains_all(solution_mask)
        surviving = surviving[
            ~solution_mask[surviving] & (gains[surviving] >= threshold)
        ]
    if solution.size > k:
        solution = solution[:k]
    # Top-up in the (rare) event pruning emptied the pool early.
    if solution.size < k:
        pool = np.setdiff1d(np.arange(n, dtype=np.int64), solution)
        extra = rng.choice(pool, size=k - solution.size, replace=False)
        solution = np.concatenate([solution, extra])
    selected = np.sort(solution)
    return BaselineResult(
        selected=selected,
        objective=float(objective.value(selected)),
        central_memory_points=int(memory_cap),
    )
