"""Uniform random selection — the floor every method should beat."""

from __future__ import annotations

import numpy as np

from repro.baselines.greedi import BaselineResult
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


def random_subset(
    problem: SubsetProblem, k: int, *, seed: SeedLike = None
) -> BaselineResult:
    """Select ``k`` points uniformly at random."""
    k = check_cardinality(k, problem.n)
    rng = as_generator(seed)
    selected = np.sort(rng.choice(problem.n, size=k, replace=False).astype(np.int64))
    return BaselineResult(
        selected=selected,
        objective=float(PairwiseObjective(problem).value(selected)),
        central_memory_points=0,
    )
