"""Addressable max-heap with ``decrease_weight_by`` (Algorithm 2's queue).

The centralized greedy algorithm of the paper (Alg. 2) repeatedly pops the
point with the highest marginal gain and *decreases* the priority of its
graph neighbors.  A binary heap with lazy invalidation supports this pattern
in ``O(log n)`` amortized per operation: every priority update pushes a fresh
entry and the stale one is discarded when popped.

A pure-Python reference implementation is deliberate (see the ml-systems
guide): the heap is only used on per-partition data that fits in memory, and
the lazy-invalidation variant profiles faster than an indexed sift-based heap
for the update-heavy workload of Algorithm 2.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional, Tuple


class AddressableMaxHeap:
    """Max-heap over integer keys with updatable priorities.

    Supports the three operations Algorithm 2 needs:

    - ``push(key, priority)`` — insert (or overwrite) an entry,
    - ``decrease_weight_by(key, delta)`` — lower a key's priority,
    - ``popmax()`` — remove and return the (key, priority) with the largest
      priority.

    Ties are broken by key (smaller key wins) so results are deterministic.
    """

    __slots__ = ("_heap", "_priority", "_popped")

    def __init__(self, items: Optional[Iterable[Tuple[int, float]]] = None) -> None:
        self._heap: list = []
        self._priority: dict = {}
        self._popped: set = set()
        if items is not None:
            for key, priority in items:
                self._priority[int(key)] = float(priority)
                self._heap.append((-float(priority), int(key)))
            heapq.heapify(self._heap)

    def __len__(self) -> int:
        return len(self._priority)

    def __contains__(self, key: int) -> bool:
        return key in self._priority

    def __bool__(self) -> bool:
        return bool(self._priority)

    def priority(self, key: int) -> float:
        """Current priority of ``key``; raises ``KeyError`` if absent."""
        return self._priority[key]

    def push(self, key: int, priority: float) -> None:
        """Insert ``key`` (or reset its priority if already present)."""
        key = int(key)
        if key in self._popped:
            self._popped.discard(key)
        self._priority[key] = float(priority)
        heapq.heappush(self._heap, (-float(priority), key))

    def decrease_weight_by(self, key: int, delta: float) -> None:
        """Lower ``key``'s priority by ``delta`` (must be non-negative).

        Mirrors the ``decrease_weight_by`` call in Alg. 2 line 6.
        """
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        key = int(key)
        new = self._priority[key] - float(delta)
        self._priority[key] = new
        heapq.heappush(self._heap, (-new, key))

    def popmax(self) -> Tuple[int, float]:
        """Pop and return ``(key, priority)`` with maximal priority."""
        while self._heap:
            neg, key = heapq.heappop(self._heap)
            current = self._priority.get(key)
            if current is None:
                continue  # entry for an already-popped key
            if -neg != current:
                continue  # stale entry superseded by a decrease
            del self._priority[key]
            self._popped.add(key)
            return key, current
        raise IndexError("popmax from an empty heap")

    def peekmax(self) -> Tuple[int, float]:
        """Return (but do not remove) the max entry."""
        while self._heap:
            neg, key = self._heap[0]
            current = self._priority.get(key)
            if current is None or -neg != current:
                heapq.heappop(self._heap)
                continue
            return key, current
        raise IndexError("peekmax from an empty heap")

    def discard(self, key: int) -> bool:
        """Remove ``key`` if present; return whether it was present."""
        if key in self._priority:
            del self._priority[key]
            self._popped.add(key)
            return True
        return False

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over live ``(key, priority)`` pairs (arbitrary order)."""
        return iter(self._priority.items())
