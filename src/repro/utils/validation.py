"""Input validation helpers shared across the library."""

from __future__ import annotations

import numpy as np


def check_alpha_beta(alpha: float, beta: float) -> None:
    """Validate the objective's balancing parameters.

    The paper sets ``beta = 1 - alpha`` but the objective only requires both
    coefficients to be non-negative (``beta >= 0`` is what makes the function
    submodular, Sec. 3).
    """
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if beta < 0:
        raise ValueError(f"beta must be >= 0 for submodularity, got {beta}")


def check_cardinality(k: int, n: int) -> int:
    """Validate a subset-size budget ``k`` against ground-set size ``n``."""
    k = int(k)
    if k < 0:
        raise ValueError(f"subset size k must be >= 0, got {k}")
    if k > n:
        raise ValueError(f"subset size k={k} exceeds ground set size n={n}")
    return k


def check_unique_ids(ids: np.ndarray) -> np.ndarray:
    """Validate an array of point ids (integer, unique)."""
    ids = np.asarray(ids)
    if ids.ndim != 1:
        raise ValueError(f"ids must be 1-D, got shape {ids.shape}")
    if ids.size and not np.issubdtype(ids.dtype, np.integer):
        raise ValueError(f"ids must be integers, got dtype {ids.dtype}")
    if np.unique(ids).size != ids.size:
        raise ValueError("ids contain duplicates")
    return ids
