"""Shared utilities: addressable heaps, RNG plumbing, validation helpers."""

from repro.utils.heap import AddressableMaxHeap
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_alpha_beta,
    check_cardinality,
    check_unique_ids,
)

__all__ = [
    "AddressableMaxHeap",
    "as_generator",
    "spawn_generators",
    "check_alpha_beta",
    "check_cardinality",
    "check_unique_ids",
]
