"""Cooperative cancellation for long-running drives.

A :class:`CancelToken` is a thread-safe stop flag the *owner* sets and the
*worker* polls at safe points — between selector stages, between
incremental shard phases, and between windows.  Cancellation is therefore
cooperative: a drive never stops mid-stage (which could strand a shuffle
or a checkpoint half-written), it stops at the next boundary and raises
:class:`DriveCancelled`, leaving the checkpoint directory consistent so a
re-run resumes from completed boundaries.
"""

from __future__ import annotations

import threading
from typing import Optional


class DriveCancelled(RuntimeError):
    """Raised at a safe point after the drive's token was set."""


class CancelToken:
    """Thread-safe stop flag, checked between stages and windows."""

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request a stop; the drive exits at its next safe point."""
        if reason is not None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self, where: str = "drive") -> None:
        """Called by the drive at safe points."""
        if self._event.is_set():
            detail = f": {self.reason}" if self.reason else ""
            raise DriveCancelled(f"{where} cancelled{detail}")
