"""Deterministic randomness plumbing.

Every stochastic component in the library accepts either an integer seed, a
``numpy.random.Generator``, or ``None`` and converts it with
:func:`as_generator`.  Distributed components that need independent
per-partition streams derive them with :func:`spawn_generators`, which uses
NumPy's ``SeedSequence.spawn`` so streams are statistically independent and
reproducible regardless of execution order.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    When ``seed`` is already a ``Generator`` we draw a fresh entropy value
    from it, so repeated calls yield distinct (but still deterministic,
    given the parent) families of streams.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
