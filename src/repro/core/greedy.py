"""Centralized greedy maximization (Sec. 3: Algorithms 1 and 2).

Provides the paper's priority-queue greedy (Alg. 2) plus the classical
variants it discusses as "related optimizations":

- :func:`greedy_naive` — Alg. 1 verbatim (recompute all marginal gains each
  step); the easy-to-verify reference implementation the faster variants are
  tested against, per the ml-systems guide.
- :func:`greedy_heap` — Alg. 2: priorities start at ``alpha*u(v)`` scale and
  are decremented by ``beta*s(v1,v2)`` when a neighbor is selected, so
  selection never rescans the ground set.
- :func:`lazy_greedy` — Minoux (1978) lazy evaluations.
- :func:`stochastic_greedy` — Mirzasoleiman et al. (2015).
- :func:`threshold_greedy` — Badanidiyuru & Vondrák (2014).

All selectors support "warm" selection where some mass has already been
committed (the partial solution S' produced by bounding) via
``base_penalty`` — a per-point penalty subtracted from the initial priority,
``beta * Σ_{nb ∈ S'} s(v, nb)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.problem import SubsetProblem
from repro.utils.heap import AddressableMaxHeap
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


@dataclass
class SelectionResult:
    """Outcome of a greedy selection.

    Attributes
    ----------
    selected:
        Chosen point ids in selection order.
    objective:
        ``f`` restricted to the local problem (excludes interactions with any
        warm partial solution outside it).
    gains:
        Marginal gain realized at each selection step.
    """

    selected: np.ndarray
    objective: float
    gains: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __len__(self) -> int:
        return int(self.selected.size)


def _init_priorities(problem: SubsetProblem, base_penalty: Optional[np.ndarray]) -> np.ndarray:
    """Initial priorities ``alpha*u(v) - base_penalty(v)``."""
    pri = problem.alpha * problem.utilities
    if base_penalty is not None:
        base_penalty = np.asarray(base_penalty, dtype=np.float64)
        if base_penalty.shape != (problem.n,):
            raise ValueError(
                f"base_penalty must have shape ({problem.n},), "
                f"got {base_penalty.shape}"
            )
        pri = pri - base_penalty
    return pri


def greedy_naive(
    problem: SubsetProblem,
    k: int,
    *,
    base_penalty: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Algorithm 1: re-evaluate every marginal gain at every step.

    O(k * nnz) — reference implementation for correctness tests.
    Ties break toward the smallest id.
    """
    k = check_cardinality(k, problem.n)
    gains_now = _init_priorities(problem, base_penalty).copy()
    selected_mask = np.zeros(problem.n, dtype=bool)
    order: List[int] = []
    gains: List[float] = []
    for _ in range(k):
        gains_masked = np.where(selected_mask, -np.inf, gains_now)
        v = int(np.argmax(gains_masked))  # argmax returns first (smallest id)
        order.append(v)
        gains.append(float(gains_masked[v]))
        selected_mask[v] = True
        nbrs, ws = problem.graph.neighbors(v)
        gains_now[nbrs] -= problem.beta * ws
    return SelectionResult(
        np.array(order, dtype=np.int64), float(np.sum(gains)), np.array(gains)
    )


def greedy_heap(
    problem: SubsetProblem,
    k: int,
    *,
    base_penalty: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Algorithm 2: priority queue with neighbor-only decrements.

    O(n log n + k * kg * log n).  Produces exactly the same selection as
    :func:`greedy_naive` (same tie-breaking: max priority, then smallest id).
    """
    k = check_cardinality(k, problem.n)
    pri = _init_priorities(problem, base_penalty)
    # Negative keys sort ascending, so tie-break on smaller id matches naive.
    heap = AddressableMaxHeap((v, pri[v]) for v in range(problem.n))
    selected_mask = np.zeros(problem.n, dtype=bool)
    order: List[int] = []
    gains: List[float] = []
    while len(order) < k:
        v1, gain = heap.popmax()
        order.append(v1)
        gains.append(gain)
        selected_mask[v1] = True
        nbrs, ws = problem.graph.neighbors(v1)
        for v2, w in zip(nbrs.tolist(), ws.tolist()):
            if not selected_mask[v2] and w > 0:
                heap.decrease_weight_by(v2, problem.beta * w)
    return SelectionResult(
        np.array(order, dtype=np.int64), float(np.sum(gains)), np.array(gains)
    )


def lazy_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    base_penalty: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Minoux's lazy greedy: re-evaluate a gain only when it tops the queue.

    The paper notes (Sec. 3, "Related optimizations") that for pairwise
    functions lazy evaluation is no cheaper than Alg. 2's neighbor updates —
    this implementation exists for the ablation benches and tests.
    """
    k = check_cardinality(k, problem.n)
    pri = _init_priorities(problem, base_penalty)
    heap = AddressableMaxHeap((v, pri[v]) for v in range(problem.n))
    selected_mask = np.zeros(problem.n, dtype=bool)
    order: List[int] = []
    gains: List[float] = []

    def exact_gain(v: int) -> float:
        nbrs, ws = problem.graph.neighbors(v)
        mass = float(ws[selected_mask[nbrs]].sum())
        base = pri[v]
        return float(base - problem.beta * mass)

    while len(order) < k:
        v, stale = heap.popmax()
        fresh = exact_gain(v)
        if heap and fresh < heap.peekmax()[1] - 1e-15:
            heap.push(v, fresh)  # re-enqueue with refreshed gain
            continue
        order.append(v)
        gains.append(fresh)
        selected_mask[v] = True
    return SelectionResult(
        np.array(order, dtype=np.int64), float(np.sum(gains)), np.array(gains)
    )


def stochastic_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    epsilon: float = 0.1,
    seed: SeedLike = 0,
    base_penalty: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Stochastic greedy: pick the best of a random candidate sample per step.

    Sample size ``ceil((n/k) * ln(1/epsilon))`` gives a ``1 - 1/e - epsilon``
    guarantee in expectation (Mirzasoleiman et al., 2015).
    """
    k = check_cardinality(k, problem.n)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    rng = as_generator(seed)
    gains_now = _init_priorities(problem, base_penalty).copy()
    selected_mask = np.zeros(problem.n, dtype=bool)
    sample_size = max(1, int(np.ceil(problem.n / max(k, 1) * np.log(1.0 / epsilon))))
    order: List[int] = []
    gains: List[float] = []
    remaining = np.arange(problem.n)
    for _ in range(k):
        remaining = remaining[~selected_mask[remaining]]
        take = min(sample_size, remaining.size)
        cand = rng.choice(remaining, size=take, replace=False)
        v = int(cand[np.argmax(gains_now[cand])])
        order.append(v)
        gains.append(float(gains_now[v]))
        selected_mask[v] = True
        nbrs, ws = problem.graph.neighbors(v)
        gains_now[nbrs] -= problem.beta * ws
    return SelectionResult(
        np.array(order, dtype=np.int64), float(np.sum(gains)), np.array(gains)
    )


def threshold_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    epsilon: float = 0.1,
    base_penalty: Optional[np.ndarray] = None,
) -> SelectionResult:
    """Threshold greedy (Badanidiyuru & Vondrák, 2014).

    Sweeps a geometric sequence of thresholds from the maximum singleton gain
    down to ``(epsilon/n) * d_max``, adding any point whose current marginal
    gain clears the threshold, until ``k`` points are chosen.
    """
    k = check_cardinality(k, problem.n)
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    gains_now = _init_priorities(problem, base_penalty).copy()
    selected_mask = np.zeros(problem.n, dtype=bool)
    order: List[int] = []
    gains: List[float] = []
    if k == 0 or problem.n == 0:
        return SelectionResult(np.empty(0, dtype=np.int64), 0.0, np.empty(0))
    d_max = float(gains_now.max())
    if d_max <= 0:
        # All gains non-positive: fall back to plain greedy order.
        return greedy_naive(problem, k, base_penalty=base_penalty)
    tau = d_max
    floor = epsilon / problem.n * d_max
    while len(order) < k and tau > floor:
        for v in range(problem.n):
            if selected_mask[v]:
                continue
            if gains_now[v] >= tau:
                order.append(v)
                gains.append(float(gains_now[v]))
                selected_mask[v] = True
                nbrs, ws = problem.graph.neighbors(v)
                gains_now[nbrs] -= problem.beta * ws
                if len(order) == k:
                    break
        tau *= 1.0 - epsilon
    # Top up if thresholds exhausted before k points were found.
    while len(order) < k:
        gains_masked = np.where(selected_mask, -np.inf, gains_now)
        v = int(np.argmax(gains_masked))
        order.append(v)
        gains.append(float(gains_masked[v]))
        selected_mask[v] = True
        nbrs, ws = problem.graph.neighbors(v)
        gains_now[nbrs] -= problem.beta * ws
    return SelectionResult(
        np.array(order, dtype=np.int64), float(np.sum(gains)), np.array(gains)
    )


GREEDY_VARIANTS = {
    "naive": greedy_naive,
    "heap": greedy_heap,
    "lazy": lazy_greedy,
    "stochastic": stochastic_greedy,
    "threshold": threshold_greedy,
}
