"""Problem container: ground set, utilities, similarity graph, balance.

A :class:`SubsetProblem` bundles everything the objective

    f(S) = alpha * sum_{v in S} u(v)
         - beta  * sum_{(v1,v2) in E, v1,v2 in S} s(v1, v2)

needs.  The paper parameterizes ``beta = 1 - alpha`` and reports only
``alpha`` (Sec. 6); :meth:`SubsetProblem.with_alpha` follows that convention.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.graph.csr import NeighborGraph
from repro.utils.validation import check_alpha_beta


@dataclass(frozen=True)
class SubsetProblem:
    """An instance of pairwise submodular subset selection.

    Attributes
    ----------
    utilities:
        ``(n,)`` per-point utilities ``u(v)`` (e.g. margin uncertainty).
    graph:
        Symmetric similarity graph; absent edges mean ``s = 0``.
    alpha, beta:
        Balance between utility and diversity terms.
    """

    utilities: np.ndarray
    graph: NeighborGraph
    alpha: float = 0.9
    beta: float = 0.1

    def __post_init__(self) -> None:
        utilities = np.ascontiguousarray(self.utilities, dtype=np.float64)
        object.__setattr__(self, "utilities", utilities)
        if utilities.ndim != 1:
            raise ValueError(f"utilities must be 1-D, got shape {utilities.shape}")
        if utilities.size and not np.isfinite(utilities).all():
            raise ValueError("utilities contain NaN or infinite values")
        if utilities.shape[0] != self.graph.n:
            raise ValueError(
                f"utilities ({utilities.shape[0]}) and graph ({self.graph.n}) "
                "must have the same number of points"
            )
        check_alpha_beta(self.alpha, self.beta)

    @property
    def n(self) -> int:
        """Ground-set size."""
        return self.graph.n

    @property
    def beta_over_alpha(self) -> float:
        """``beta / alpha`` — the scale of Alg. 2's priority decrements."""
        if self.alpha == 0:
            raise ZeroDivisionError(
                "beta/alpha undefined for alpha == 0; use unscaled priorities"
            )
        return self.beta / self.alpha

    @classmethod
    def with_alpha(
        cls, utilities: np.ndarray, graph: NeighborGraph, alpha: float
    ) -> "SubsetProblem":
        """Paper convention: ``beta = 1 - alpha`` (Sec. 6)."""
        if not 0 <= alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1] for beta=1-alpha, got {alpha}")
        return cls(utilities, graph, alpha=alpha, beta=1.0 - alpha)

    def restrict(self, vertices: np.ndarray) -> "SubsetProblem":
        """Problem restricted to ``vertices`` (cross-partition edges dropped).

        Used by the per-partition greedy of Alg. 6.  Local ids are
        ``0..len(vertices)-1`` in the order given.
        """
        sub, mapping = self.graph.subgraph(vertices)
        return replace(self, utilities=self.utilities[mapping], graph=sub)
