"""Theorem 4.6: guarantees for approximate bounding (Sec. 4.3, Appendix B).

With uniform neighbor sampling at probability ``p``, similarities in
``[a, b]``, minimum degree ``kg``, and initial utility ratio
``Umax(v)/Umin(v) <= gamma`` for all v, the approximate bounding algorithm
outputs S with

    f(S) >= f(S*) / (2 * (1 + gamma * (1 - p^2)))

with probability at least ``1 - |V| * exp(-2 (1-p)^2 p^2 a^2 kg / (b-a)^2)``
(the constant follows Appendix B's final Hoeffding step).  ``p = 1`` recovers
exact bounding's 1/2 guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import SubsetProblem


def approximation_factor(gamma: float, p: float) -> float:
    """Worst-case ``f(S) / f(S*)`` factor of Theorem 4.6."""
    if gamma < 1:
        raise ValueError(f"gamma must be >= 1 (it bounds Umax/Umin), got {gamma}")
    if not 0 < p <= 1:
        raise ValueError(f"p must be in (0, 1], got {p}")
    return 1.0 / (2.0 * (1.0 + gamma * (1.0 - p * p)))


def success_probability(
    n: int, p: float, kg: int, a: float, b: float
) -> float:
    """Probability the high-probability event of Theorem 4.6 holds.

    Parameters
    ----------
    n:
        Ground-set size ``|V|``.
    p:
        Sampling probability.
    kg:
        Minimum graph degree.
    a, b:
        Bounds on non-zero similarity values (``0 < a <= b``).
    """
    if not 0 < p <= 1:
        raise ValueError(f"p must be in (0, 1], got {p}")
    if not 0 < a <= b:
        raise ValueError(f"need 0 < a <= b, got a={a}, b={b}")
    if kg < 0 or n < 0:
        raise ValueError("n and kg must be non-negative")
    if p == 1.0 or a == b:
        return 1.0  # no randomness / zero-width value range: bound is exact
    exponent = -2.0 * (1.0 - p) ** 2 * p * p * a * a * kg / (b - a) ** 2
    return float(max(0.0, 1.0 - n * np.exp(exponent)))


@dataclass(frozen=True)
class InstanceConstants:
    """The instance-dependent constants Theorem 4.6 consumes."""

    gamma: float
    a: float
    b: float
    kg: int
    n: int


def instance_constants(problem: SubsetProblem) -> InstanceConstants:
    """Measure (gamma, a, b, kg, n) on a concrete problem instance.

    ``gamma`` is the initial (S' = ∅) max over v of ``Umax(v)/Umin(v)``,
    which requires ``Umin(v) > 0`` for all v; instances violating that yield
    ``gamma = inf`` (the paper notes the bound becomes vacuous).
    """
    g = problem.graph
    u = problem.utilities
    if problem.alpha <= 0:
        raise ValueError("instance constants require alpha > 0")
    u_min = u - problem.beta_over_alpha * g.neighbor_mass()
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(u_min > 0, u / u_min, np.inf)
    gamma = float(ratios.max()) if ratios.size else 1.0
    nonzero = g.weights[g.weights > 0]
    a = float(nonzero.min()) if nonzero.size else 0.0
    b = float(nonzero.max()) if nonzero.size else 0.0
    return InstanceConstants(
        gamma=max(gamma, 1.0), a=a, b=b, kg=g.min_degree(), n=problem.n
    )


def guarantee_for_instance(
    problem: SubsetProblem, p: float
) -> tuple[float, float]:
    """(approximation factor, success probability) for a concrete instance."""
    consts = instance_constants(problem)
    factor = (
        approximation_factor(consts.gamma, p)
        if np.isfinite(consts.gamma)
        else 0.0
    )
    if consts.a <= 0 or consts.b <= 0:
        prob = 1.0 if p == 1.0 else 0.0
    else:
        prob = success_probability(consts.n, p, consts.kg, consts.a, consts.b)
    return factor, prob
