"""End-to-end selector: bounding → distributed greedy → subsample (Sec. 4).

:class:`DistributedSelector` wires the two stages the paper composes:

1. (optional) bounding pre-pass — includes provably/likely-optimal points
   and discards provably/likely-useless ones,
2. multi-round partition-based distributed greedy over the surviving points
   for whatever budget bounding left open,
3. final uniform subsample if rounding produced a few extra points.

The selector never requires the subset in one place: bounding is expressible
in dataflow joins (:mod:`repro.dataflow.bounding_beam`) and the greedy stage
only ever loads one partition per machine.  ``SelectorConfig(engine=
"memory")`` runs the in-memory reference implementations, which mirror that
execution faithfully at laptop scale; ``engine="dataflow"`` runs both stages
as jobs on the Beam-like engine (lazy DAG + pluggable executor), with
per-shard memory metering in the report's ``extra``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.bounding import BoundingResult, bound
from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    Partitioner,
    distributed_greedy,
    random_partitioner,
)
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


@dataclass(frozen=True)
class SelectorConfig:
    """Configuration mirroring the paper's experiment matrix.

    Attributes
    ----------
    bounding:
        ``None`` (skip), ``"exact"``, or ``"approximate"``.
    sampler / sampling_fraction:
        Approximate-bounding neighborhood sampling (Table 2's
        uniform/weighted × 30 %/70 %).
    machines / rounds / adaptive / gamma:
        Distributed greedy parameters (Figs. 3/4, 12–15).
    engine:
        ``"memory"`` runs the in-memory reference implementations;
        ``"dataflow"`` runs both stages as jobs on the Beam-like engine
        (:mod:`repro.dataflow`), with per-shard memory metering.
    executor / num_shards / spill_to_disk:
        Dataflow-engine knobs (ignored by the memory engine): any
        backend registered with the engine's executor registry —
        ``"sequential"``, ``"thread"``, ``"multiprocess"``, or
        ``"remote"`` — logical worker count, and disk-resident shards.
        The selector creates one executor for the whole run — the
        bounding and greedy stages share its (persistent) worker pool or
        cluster — and closes it when the run finishes.
    workers:
        Remote-executor worker addresses (``"host:port"`` strings) of
        daemons started with ``python -m repro.dataflow.remote.worker``.
        Requires ``executor="remote"``; with ``executor="remote"`` and no
        addresses, two localhost workers are auto-spawned for the run.
    checkpoint_dir:
        Persist both stages' materialization boundaries here, keyed by
        deterministic plan digests: a killed run repeated with the same
        configuration, data, and seed resumes from its last completed
        stage with bit-identical results.  The directory survives the
        run.
    optimize / stream_source:
        More dataflow-engine knobs: ``optimize=False`` (the CLI's
        ``--no-optimize``) disables the plan optimizer (combiner lifting,
        redundant-shuffle elision, post-shuffle fusion) so the naive plan
        runs — ``None`` defers to the engine default, which the test
        harness flips suite-wide via ``pytest --no-optimize``;
        ``stream_source=True`` (``--stream-source``) ingests the ground
        set through the engine's chunked streaming sources so the driver
        never materializes it, ``False`` forces eager ingest everywhere,
        and ``None`` (the default) keeps each beam's own default — the
        bounding stage streams its graph/utility generators, the greedy
        stage ingests its (array-backed) ground set eagerly.  Results are
        identical either way.
    """

    bounding: Optional[str] = None
    sampler: str = "uniform"
    sampling_fraction: float = 1.0
    machines: int = 1
    rounds: int = 1
    adaptive: bool = False
    gamma: float = 0.75
    engine: str = "memory"
    executor: str = "sequential"
    num_shards: int = 8
    spill_to_disk: bool = False
    optimize: Optional[bool] = None
    stream_source: Optional[bool] = None
    workers: Optional[tuple] = None
    checkpoint_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.bounding not in (None, "exact", "approximate"):
            raise ValueError(
                f"bounding must be None/'exact'/'approximate', got {self.bounding!r}"
            )
        if self.machines < 1:
            raise ValueError(f"machines must be >= 1, got {self.machines}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if self.engine not in ("memory", "dataflow"):
            raise ValueError(
                f"engine must be 'memory' or 'dataflow', got {self.engine!r}"
            )
        # Single source of truth for backend names: the engine's executor
        # registry (the old hardcoded tuple here went stale with every
        # new backend).
        from repro.dataflow.executor import executor_names

        if self.executor not in executor_names():
            raise ValueError(
                f"executor must be one of {executor_names()}, "
                f"got {self.executor!r}"
            )
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.workers is not None:
            if self.executor != "remote":
                raise ValueError(
                    "workers requires executor='remote', "
                    f"got executor={self.executor!r}"
                )
            # Normalize (frozen dataclass, so go through object.__setattr__).
            object.__setattr__(self, "workers", tuple(self.workers))


@dataclass
class SelectionReport:
    """Everything a benchmark needs about one end-to-end run."""

    selected: np.ndarray
    objective: float
    config: SelectorConfig
    bounding: Optional[BoundingResult] = None
    greedy: Optional[DistributedResult] = None
    extra: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.selected.size)


class DistributedSelector:
    """Two-stage larger-than-memory subset selector."""

    def __init__(self, problem: SubsetProblem, config: SelectorConfig) -> None:
        self.problem = problem
        self.config = config
        self.objective = PairwiseObjective(problem)

    def select(
        self,
        k: int,
        *,
        seed: SeedLike = None,
        partitioner: Partitioner = random_partitioner,
    ) -> SelectionReport:
        """Run the full pipeline for a budget of ``k`` points.

        With ``config.engine == "dataflow"`` both stages run as jobs on the
        Beam-like engine (``partitioner`` is a memory-engine knob and is
        ignored; the dataflow greedy draws its own hash-based partitions),
        and the per-stage :class:`~repro.dataflow.metrics.PipelineMetrics`
        land in ``report.extra["bounding_metrics"/"greedy_metrics"]``.
        """
        k = check_cardinality(k, self.problem.n)
        rng = as_generator(seed)
        cfg = self.config
        dataflow = cfg.engine == "dataflow"
        executor = None
        if dataflow:
            # One executor for the whole run: the bounding and greedy
            # pipelines share its persistent worker pool or cluster
            # (pipelines never close a passed-in instance; the finally
            # below does).
            from repro.dataflow import resolve_executor

            opts = {}
            if cfg.workers:
                opts["workers"] = list(cfg.workers)
            executor = resolve_executor(cfg.executor, **opts)
        try:
            report = self._select(
                k, rng=rng, partitioner=partitioner, executor=executor
            )
            if executor is not None:
                stats = executor.stats()
                if stats:
                    report.extra["executor_stats"] = stats
            return report
        finally:
            if executor is not None:
                executor.close()

    def _select(
        self,
        k: int,
        *,
        rng: np.random.Generator,
        partitioner: Partitioner,
        executor,
    ) -> SelectionReport:
        cfg = self.config
        dataflow = cfg.engine == "dataflow"
        extra: dict = {}
        bounding_result: Optional[BoundingResult] = None
        solution = np.empty(0, dtype=np.int64)
        candidates: Optional[np.ndarray] = None
        k_remaining = k

        if cfg.bounding is not None:
            if dataflow:
                from repro.dataflow import beam_bound

                bounding_result, bound_metrics = beam_bound(
                    self.problem,
                    k,
                    mode=cfg.bounding,
                    sampler=cfg.sampler,
                    p=cfg.sampling_fraction,
                    num_shards=cfg.num_shards,
                    spill_to_disk=cfg.spill_to_disk,
                    executor=executor,
                    optimize=cfg.optimize,
                    stream_source=(
                        True if cfg.stream_source is None
                        else cfg.stream_source
                    ),
                    checkpoint_dir=cfg.checkpoint_dir,
                    seed=rng,
                )
                extra["bounding_metrics"] = bound_metrics
            else:
                bounding_result = bound(
                    self.problem,
                    k,
                    mode=cfg.bounding,
                    sampler=cfg.sampler,
                    p=cfg.sampling_fraction,
                    seed=rng,
                )
            solution = bounding_result.solution
            candidates = bounding_result.remaining
            k_remaining = bounding_result.k_remaining

        greedy_result: Optional[DistributedResult] = None
        if k_remaining > 0:
            if candidates is not None and candidates.size < k_remaining:
                raise RuntimeError(
                    "bounding left fewer candidates than the open budget — "
                    "this indicates a bug (shrink must keep >= k points)"
                )
            base_penalty = self._solution_penalty(solution)
            if dataflow:
                from repro.dataflow import beam_distributed_greedy

                greedy_result, greedy_metrics = beam_distributed_greedy(
                    self.problem,
                    k_remaining,
                    m=cfg.machines,
                    rounds=cfg.rounds,
                    adaptive=cfg.adaptive,
                    gamma=cfg.gamma,
                    num_shards=cfg.num_shards,
                    executor=executor,
                    spill_to_disk=cfg.spill_to_disk,
                    optimize=cfg.optimize,
                    stream_source=bool(cfg.stream_source),
                    checkpoint_dir=cfg.checkpoint_dir,
                    candidates=candidates,
                    base_penalty=base_penalty,
                    seed=rng,
                )
                extra["greedy_metrics"] = greedy_metrics
            else:
                greedy_result = distributed_greedy(
                    self.problem,
                    k_remaining,
                    m=cfg.machines,
                    rounds=cfg.rounds,
                    adaptive=cfg.adaptive,
                    schedule=LinearDeltaSchedule(cfg.gamma),
                    partitioner=partitioner,
                    candidates=candidates,
                    base_penalty=base_penalty,
                    seed=rng,
                )
            selected = np.sort(np.concatenate([solution, greedy_result.selected]))
        else:
            selected = np.sort(solution)

        if selected.size > k:  # defensive; bounding already subsamples
            selected = np.sort(rng.choice(selected, size=k, replace=False))
        return SelectionReport(
            selected=selected,
            objective=self.objective.value(selected),
            config=cfg,
            bounding=bounding_result,
            greedy=greedy_result,
            extra=extra,
        )

    def _solution_penalty(self, solution: np.ndarray) -> Optional[np.ndarray]:
        """``beta * Σ_{nb ∈ S'} s(v, nb)`` for warm-started greedy."""
        if solution.size == 0:
            return None
        mask = np.zeros(self.problem.n, dtype=bool)
        mask[solution] = True
        return self.problem.beta * self.problem.graph.neighbor_mass(mask)


def centralized_reference(problem: SubsetProblem, k: int) -> SelectionReport:
    """The 1-partition / 1-round baseline every figure normalizes against."""
    from repro.core.greedy import greedy_heap

    result = greedy_heap(problem, k)
    objective = PairwiseObjective(problem)
    return SelectionReport(
        selected=np.sort(result.selected),
        objective=objective.value(result.selected),
        config=SelectorConfig(machines=1, rounds=1),
        extra={"order": result.selected},
    )
