"""End-to-end selector: bounding → distributed greedy → subsample (Sec. 4).

:class:`DistributedSelector` wires the two stages the paper composes:

1. (optional) bounding pre-pass — includes provably/likely-optimal points
   and discards provably/likely-useless ones,
2. multi-round partition-based distributed greedy over the surviving points
   for whatever budget bounding left open,
3. final uniform subsample if rounding produced a few extra points.

The selector never requires the subset in one place: bounding is expressible
in dataflow joins (:mod:`repro.dataflow.bounding_beam`) and the greedy stage
only ever loads one partition per machine.  ``SelectorConfig(engine=
"memory")`` runs the in-memory reference implementations, which mirror that
execution faithfully at laptop scale; ``engine="dataflow"`` runs both stages
as jobs on the Beam-like engine (lazy DAG + pluggable executor), with
per-shard memory metering in the report's ``extra``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.bounding import BoundingResult, bound
from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    Partitioner,
    distributed_greedy,
    random_partitioner,
)
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.dataflow.options import UNSET, EngineOptions, legacy_engine_options
from repro.utils.cancel import CancelToken
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality


@dataclass(frozen=True, init=False)
class SelectorConfig:
    """Configuration mirroring the paper's experiment matrix.

    Attributes
    ----------
    bounding:
        ``None`` (skip), ``"exact"``, or ``"approximate"``.
    sampler / sampling_fraction:
        Approximate-bounding neighborhood sampling (Table 2's
        uniform/weighted × 30 %/70 %).
    machines / rounds / adaptive / gamma:
        Distributed greedy parameters (Figs. 3/4, 12–15).
    engine:
        ``"memory"`` runs the in-memory reference implementations;
        ``"dataflow"`` runs both stages as jobs on the Beam-like engine
        (:mod:`repro.dataflow`), with per-shard memory metering.
    options:
        Every dataflow-engine knob, as one validated
        :class:`~repro.dataflow.options.EngineOptions` (ignored by the
        memory engine).  The selector opens one
        :class:`~repro.dataflow.options.DataflowContext` from it per run
        — the bounding and greedy stages share its (persistent) worker
        pool or cluster, and it is closed when the run finishes.
        ``options.stream_source=None`` (the default) keeps each beam's
        own ingest default — the bounding stage streams its
        graph/utility generators, the greedy stage ingests its
        (array-backed) ground set eagerly; results are identical either
        way.
    checkpoint_gc:
        After a successful run with ``options.checkpoint_dir``, delete
        every checkpoint entry the run did not touch (see
        :meth:`repro.dataflow.pcollection.Pipeline.gc_checkpoints`); the
        removed-entry count lands in ``report.extra``.

    The old flat engine keywords (``executor=``, ``num_shards=``,
    ``spill_to_disk=``, ``optimize=``, ``stream_source=``, ``workers=``,
    ``checkpoint_dir=``) are deprecated: they fold into an
    ``EngineOptions`` with identical semantics and emit a
    :class:`DeprecationWarning`.  Reading them back (``config.executor``
    and friends) delegates to ``options``.
    """

    bounding: Optional[str] = None
    sampler: str = "uniform"
    sampling_fraction: float = 1.0
    machines: int = 1
    rounds: int = 1
    adaptive: bool = False
    gamma: float = 0.75
    engine: str = "memory"
    options: EngineOptions = field(default_factory=EngineOptions)
    checkpoint_gc: bool = False

    def __init__(
        self,
        bounding: Optional[str] = None,
        sampler: str = "uniform",
        sampling_fraction: float = 1.0,
        machines: int = 1,
        rounds: int = 1,
        adaptive: bool = False,
        gamma: float = 0.75,
        engine: str = "memory",
        options: Optional[EngineOptions] = None,
        checkpoint_gc: bool = False,
        *,
        executor=UNSET,
        num_shards=UNSET,
        spill_to_disk=UNSET,
        optimize=UNSET,
        stream_source=UNSET,
        workers=UNSET,
        checkpoint_dir=UNSET,
    ) -> None:
        if bounding not in (None, "exact", "approximate"):
            raise ValueError(
                f"bounding must be None/'exact'/'approximate', got {bounding!r}"
            )
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if engine not in ("memory", "dataflow"):
            raise ValueError(
                f"engine must be 'memory' or 'dataflow', got {engine!r}"
            )
        # The one shared legacy-kwarg shim (same as the beams):
        # EngineOptions normalizes and validates (registry-backed executor
        # names, host:port worker addresses) in one place — no
        # frozen-dataclass mutation needed here anymore.
        options = legacy_engine_options(
            {
                "executor": executor, "num_shards": num_shards,
                "spill_to_disk": spill_to_disk, "optimize": optimize,
                "stream_source": stream_source, "workers": workers,
                "checkpoint_dir": checkpoint_dir,
            },
            options=options, context=None, api="SelectorConfig",
            stacklevel=3,
        )
        object.__setattr__(self, "bounding", bounding)
        object.__setattr__(self, "sampler", sampler)
        object.__setattr__(self, "sampling_fraction", sampling_fraction)
        object.__setattr__(self, "machines", machines)
        object.__setattr__(self, "rounds", rounds)
        object.__setattr__(self, "adaptive", adaptive)
        object.__setattr__(self, "gamma", gamma)
        object.__setattr__(self, "engine", engine)
        options = options if options is not None else EngineOptions()
        if checkpoint_gc and (
            engine != "dataflow" or options.checkpoint_dir is None
        ):
            # A silent no-op would read as "stale checkpoints cleaned".
            raise ValueError(
                "checkpoint_gc requires engine='dataflow' and "
                "options.checkpoint_dir"
            )
        object.__setattr__(self, "options", options)
        object.__setattr__(self, "checkpoint_gc", bool(checkpoint_gc))

    # -- deprecated flat-knob read access (delegates to ``options``) -------

    @property
    def executor(self):
        return self.options.executor

    @property
    def num_shards(self) -> int:
        return self.options.num_shards

    @property
    def spill_to_disk(self) -> bool:
        return self.options.spill_to_disk

    @property
    def optimize(self) -> Optional[bool]:
        return self.options.optimize

    @property
    def stream_source(self) -> Optional[bool]:
        return self.options.stream_source

    @property
    def workers(self) -> Optional[tuple]:
        return self.options.workers

    @property
    def checkpoint_dir(self) -> Optional[str]:
        return self.options.checkpoint_dir


@dataclass
class SelectionReport:
    """Everything a benchmark needs about one end-to-end run."""

    selected: np.ndarray
    objective: float
    config: SelectorConfig
    bounding: Optional[BoundingResult] = None
    greedy: Optional[DistributedResult] = None
    extra: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.selected.size)


class DistributedSelector:
    """Two-stage larger-than-memory subset selector."""

    def __init__(self, problem: SubsetProblem, config: SelectorConfig) -> None:
        self.problem = problem
        self.config = config
        self.objective = PairwiseObjective(problem)

    def select(
        self,
        k: int,
        *,
        seed: SeedLike = None,
        partitioner: Partitioner = random_partitioner,
        context=None,
        cancel: Optional[CancelToken] = None,
    ) -> SelectionReport:
        """Run the full pipeline for a budget of ``k`` points.

        With ``config.engine == "dataflow"`` both stages run as jobs on the
        Beam-like engine (``partitioner`` is a memory-engine knob and is
        ignored; the dataflow greedy draws its own hash-based partitions),
        and the per-stage :class:`~repro.dataflow.metrics.PipelineMetrics`
        land in ``report.extra["bounding_metrics"/"greedy_metrics"]``.

        ``context`` lends the run an existing warm
        :class:`~repro.dataflow.options.DataflowContext` (dataflow engine
        only): both stages run on its executor, the context is *not*
        closed here, and ``report.extra["executor_stats"]`` reflects that
        context's view — a long-lived service passes per-job
        :meth:`~repro.dataflow.options.DataflowContext.scoped` views so
        concurrent tenants share one warm pool with isolated stats.

        ``cancel`` is a cooperative stop flag
        (:class:`~repro.utils.cancel.CancelToken`): the run checks it
        between the bounding and greedy stages and raises
        :class:`~repro.utils.cancel.DriveCancelled` at the first set
        check — stages never stop midway, so checkpoints stay consistent
        and a re-run resumes from completed boundaries.
        """
        k = check_cardinality(k, self.problem.n)
        rng = as_generator(seed)
        cfg = self.config
        own_context = None
        if context is not None:
            if cfg.engine != "dataflow":
                raise ValueError(
                    "context= requires engine='dataflow', got "
                    f"engine={cfg.engine!r}"
                )
        elif cfg.engine == "dataflow":
            # One DataflowContext for the whole run: the bounding and
            # greedy pipelines share its resolved executor (a persistent
            # worker pool or cluster), and it aggregates both stages'
            # touched checkpoint digests for GC.  Closing the context
            # releases the executor iff the context created it.
            from repro.dataflow import DataflowContext

            context = own_context = DataflowContext(cfg.options)
        try:
            report = self._select(
                k, rng=rng, partitioner=partitioner, context=context,
                cancel=cancel,
            )
            if context is not None:
                stats = context.executor.stats()
                if stats:
                    report.extra["executor_stats"] = stats
                if context.planner is not None:
                    # Predicted vs observed wall time for every stage the
                    # drive ran — the adaptive planner's feedback table.
                    from repro.dataflow.planner import predicted_vs_actual

                    profiles = [
                        p
                        for key in ("bounding_metrics", "greedy_metrics")
                        for m in (report.extra.get(key),)
                        if m is not None
                        for p in m.stage_profiles
                    ]
                    report.extra["plan_costs"] = predicted_vs_actual(
                        profiles, context.planner.cost_model
                    )
                if cfg.checkpoint_gc and cfg.options.checkpoint_dir:
                    report.extra["checkpoint_gc_removed"] = (
                        context.gc_checkpoints()
                    )
            return report
        finally:
            if own_context is not None:
                own_context.close()

    def _select(
        self,
        k: int,
        *,
        rng: np.random.Generator,
        partitioner: Partitioner,
        context,
        cancel: Optional[CancelToken] = None,
    ) -> SelectionReport:
        cfg = self.config
        dataflow = context is not None
        extra: dict = {}
        bounding_result: Optional[BoundingResult] = None
        solution = np.empty(0, dtype=np.int64)
        candidates: Optional[np.ndarray] = None
        k_remaining = k

        if cancel is not None:
            cancel.raise_if_cancelled("selector drive")
        if cfg.bounding is not None:
            if dataflow:
                from repro.dataflow import beam_bound

                bounding_result, bound_metrics = beam_bound(
                    self.problem,
                    k,
                    mode=cfg.bounding,
                    sampler=cfg.sampler,
                    p=cfg.sampling_fraction,
                    context=context,
                    seed=rng,
                )
                extra["bounding_metrics"] = bound_metrics
            else:
                bounding_result = bound(
                    self.problem,
                    k,
                    mode=cfg.bounding,
                    sampler=cfg.sampler,
                    p=cfg.sampling_fraction,
                    seed=rng,
                )
            solution = bounding_result.solution
            candidates = bounding_result.remaining
            k_remaining = bounding_result.k_remaining

        if cancel is not None:
            cancel.raise_if_cancelled("selector drive")
        greedy_result: Optional[DistributedResult] = None
        if k_remaining > 0:
            if candidates is not None and candidates.size < k_remaining:
                raise RuntimeError(
                    "bounding left fewer candidates than the open budget — "
                    "this indicates a bug (shrink must keep >= k points)"
                )
            base_penalty = self._solution_penalty(solution)
            if dataflow:
                from repro.dataflow import beam_distributed_greedy

                greedy_result, greedy_metrics = beam_distributed_greedy(
                    self.problem,
                    k_remaining,
                    m=cfg.machines,
                    rounds=cfg.rounds,
                    adaptive=cfg.adaptive,
                    gamma=cfg.gamma,
                    candidates=candidates,
                    base_penalty=base_penalty,
                    context=context,
                    seed=rng,
                )
                extra["greedy_metrics"] = greedy_metrics
            else:
                greedy_result = distributed_greedy(
                    self.problem,
                    k_remaining,
                    m=cfg.machines,
                    rounds=cfg.rounds,
                    adaptive=cfg.adaptive,
                    schedule=LinearDeltaSchedule(cfg.gamma),
                    partitioner=partitioner,
                    candidates=candidates,
                    base_penalty=base_penalty,
                    seed=rng,
                )
            selected = np.sort(np.concatenate([solution, greedy_result.selected]))
        else:
            selected = np.sort(solution)

        if selected.size > k:  # defensive; bounding already subsamples
            selected = np.sort(rng.choice(selected, size=k, replace=False))
        return SelectionReport(
            selected=selected,
            objective=self.objective.value(selected),
            config=cfg,
            bounding=bounding_result,
            greedy=greedy_result,
            extra=extra,
        )

    def _solution_penalty(self, solution: np.ndarray) -> Optional[np.ndarray]:
        """``beta * Σ_{nb ∈ S'} s(v, nb)`` for warm-started greedy."""
        if solution.size == 0:
            return None
        mask = np.zeros(self.problem.n, dtype=bool)
        mask[solution] = True
        return self.problem.beta * self.problem.graph.neighbor_mass(mask)


def centralized_reference(problem: SubsetProblem, k: int) -> SelectionReport:
    """The 1-partition / 1-round baseline every figure normalizes against."""
    from repro.core.greedy import greedy_heap

    result = greedy_heap(problem, k)
    objective = PairwiseObjective(problem)
    return SelectionReport(
        selected=np.sort(result.selected),
        objective=objective.value(result.selected),
        config=SelectorConfig(machines=1, rounds=1),
        extra={"order": result.selected},
    )
