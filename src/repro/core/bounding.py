"""Distributed bounding (Sec. 4.1–4.2: Algorithms 3, 4, 5).

The bounding algorithm maintains three disjoint point states:

- *solution* ``S'`` — points proven (exact) or believed (approximate) to be
  in the optimum,
- *remaining* ``V`` — undecided points,
- *discarded* — points proven / believed not to be in the optimum.

Per-point metrics (Defs. 4.1/4.2/4.5), all in utility units (divided by
``alpha``):

- ``Umax(v) = u(v) - (beta/alpha) * Σ_{nb ∈ S'} s(v, nb)``
- ``Umin(v) = u(v) - (beta/alpha) * Σ_{nb ∈ V ∪ S'} s(v, nb)``
- ``Uexp(v)`` — like ``Umin`` but summing only a *sampled* subset of the
  remaining-set neighbors (solution neighbors always count).

Grow (Lemma 4.3) moves ``v`` into ``S'`` when ``Umin(v) > U^k_max`` — its
pessimistic utility beats the k-th best optimistic utility, so ``v`` is in
every optimal completion.  Shrink (Lemma 4.4) discards ``v`` when
``Umax(v) < U^k_min``.  Alg. 5 alternates: shrink to convergence, grow to
convergence, repeat until neither changes anything.

This module is the in-memory reference implementation; the dataflow engine
runs the same logic with distributed joins (:mod:`repro.dataflow.bounding_beam`)
and is tested for equivalence against this one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import SubsetProblem
from repro.core.sampling import EDGE_SAMPLERS
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality

BOUNDING_MODES = ("exact", "approximate")


@dataclass
class BoundingResult:
    """Outcome of a bounding run (statistics reported in Table 2).

    Attributes
    ----------
    solution:
        Ids included in the partial solution S' (selection-order-free).
    remaining:
        Ids still undecided (input to the distributed greedy stage).
    n_excluded:
        Points discarded from the ground set.
    k_remaining:
        Points the greedy stage still must select.
    grow_rounds / shrink_rounds:
        Number of Grow / Shrink invocations, counting the final
        convergence-detecting no-op (matching Table 2's accounting).
    complete:
        True when bounding alone produced the entire subset.
    overshoot:
        Points grown beyond the budget before final uniform subsampling
        ("this algorithm might grow S' larger than needed", Sec. 4.2).
    history:
        Optional per-round ``(phase, n_changed)`` trace.
    """

    solution: np.ndarray
    remaining: np.ndarray
    n_excluded: int
    k_remaining: int
    grow_rounds: int
    shrink_rounds: int
    complete: bool
    overshoot: int = 0
    history: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def n_included(self) -> int:
        return int(self.solution.size)


def compute_utilities(
    problem: SubsetProblem,
    remaining: np.ndarray,
    solution: np.ndarray,
    *,
    mode: str = "exact",
    sampler: str = "uniform",
    p: float = 1.0,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-point ``(lower, Umax)`` arrays over the full ground set.

    ``lower`` is ``Umin`` in exact mode and ``Uexp`` in approximate mode.
    Entries for non-remaining points are computed too (callers mask).
    """
    if problem.alpha <= 0:
        raise ValueError("bounding requires alpha > 0 (utilities in u-units)")
    if mode not in BOUNDING_MODES:
        raise ValueError(f"mode must be one of {BOUNDING_MODES}, got {mode!r}")
    g = problem.graph
    ratio = problem.beta_over_alpha
    mass_solution = g.neighbor_mass(solution)
    u_max = problem.utilities - ratio * mass_solution
    if mode == "exact" or p >= 1.0:
        mass_alive = g.neighbor_mass(remaining | solution)
        lower = problem.utilities - ratio * mass_alive
        return lower, u_max
    keep = EDGE_SAMPLERS[sampler](g, p, rng)
    # Sampled mass over *remaining* neighbors; solution neighbors always in.
    contrib = np.where(keep & remaining[g.indices], g.weights, 0.0)
    sampled_mass = np.zeros(g.n)
    nonempty = g.indptr[:-1] < g.indptr[1:]
    if contrib.size:
        sampled_mass[nonempty] = np.add.reduceat(contrib, g.indptr[:-1][nonempty])
    lower = problem.utilities - ratio * (mass_solution + sampled_mass)
    return lower, u_max


def _kth_largest(values: np.ndarray, k: int) -> float:
    """k-th largest entry of ``values`` (k >= 1, k <= len)."""
    if not 1 <= k <= values.size:
        raise ValueError(f"need 1 <= k <= {values.size}, got {k}")
    return float(np.partition(values, values.size - k)[values.size - k])


def bound(
    problem: SubsetProblem,
    k: int,
    *,
    mode: str = "exact",
    sampler: str = "uniform",
    p: float = 1.0,
    seed: SeedLike = None,
    max_rounds: int = 100_000,
    track_history: bool = False,
) -> BoundingResult:
    """Algorithm 5: alternate Shrink and Grow until both converge.

    Parameters
    ----------
    mode:
        ``"exact"`` uses ``Umin`` (quality-preserving, Lemmas 4.3/4.4);
        ``"approximate"`` uses ``Uexp`` over a ``p``-sampled neighborhood.
    sampler:
        ``"uniform"`` or ``"weighted"`` (only used in approximate mode).
    p:
        Neighborhood sampling fraction (Table 2 tests 0.3 and 0.7).
    max_rounds:
        Safety valve on total Grow+Shrink invocations.

    Returns
    -------
    BoundingResult
        With ``solution`` capped at ``k`` via uniform subsampling if the
        grow phase overshot the budget.
    """
    k_total = check_cardinality(k, problem.n)
    if sampler not in EDGE_SAMPLERS:
        raise ValueError(
            f"sampler must be one of {sorted(EDGE_SAMPLERS)}, got {sampler!r}"
        )
    rng = as_generator(seed)
    n = problem.n
    remaining = np.ones(n, dtype=bool)
    solution = np.zeros(n, dtype=bool)
    k_remaining = k_total
    grow_rounds = 0
    shrink_rounds = 0
    history: List[Tuple[str, int]] = []

    def utilities() -> Tuple[np.ndarray, np.ndarray]:
        return compute_utilities(
            problem, remaining, solution,
            mode=mode, sampler=sampler, p=p, rng=rng,
        )

    def shrink_once() -> int:
        """One Shrink round (Alg. 4); returns #points discarded."""
        nonlocal remaining
        rem_idx = np.flatnonzero(remaining)
        if k_remaining <= 0 or rem_idx.size <= k_remaining:
            return 0
        lower, u_max = utilities()
        threshold = _kth_largest(lower[rem_idx], k_remaining)
        drop = rem_idx[u_max[rem_idx] < threshold]
        remaining[drop] = False
        return int(drop.size)

    def grow_once() -> int:
        """One Grow round (Alg. 3); returns #points included."""
        nonlocal remaining, solution, k_remaining
        rem_idx = np.flatnonzero(remaining)
        if k_remaining <= 0 or rem_idx.size == 0:
            return 0
        if rem_idx.size <= k_remaining:
            # Everything left must be chosen.
            solution[rem_idx] = True
            remaining[rem_idx] = False
            k_remaining -= rem_idx.size
            return int(rem_idx.size)
        lower, u_max = utilities()
        threshold = _kth_largest(u_max[rem_idx], k_remaining)
        add = rem_idx[lower[rem_idx] > threshold]
        solution[add] = True
        remaining[add] = False
        k_remaining -= add.size
        return int(add.size)

    total_rounds = 0
    while total_rounds < max_rounds:
        changed_outer = 0
        # Inner shrink loop: repeat until a round changes nothing.
        while total_rounds < max_rounds:
            shrink_rounds += 1
            total_rounds += 1
            changed = shrink_once()
            if track_history:
                history.append(("shrink", changed))
            changed_outer += changed
            if changed == 0:
                break
        # Inner grow loop.
        while total_rounds < max_rounds:
            grow_rounds += 1
            total_rounds += 1
            changed = grow_once()
            if track_history:
                history.append(("grow", changed))
            changed_outer += changed
            if changed == 0:
                break
        if changed_outer == 0 or k_remaining <= 0:
            break

    solution_ids = np.flatnonzero(solution)
    overshoot = max(0, solution_ids.size - k_total)
    if overshoot:
        keep = rng.choice(solution_ids, size=k_total, replace=False)
        solution_ids = np.sort(keep)
        k_remaining = 0
    remaining_ids = np.flatnonzero(remaining)
    # Excluded = discarded by shrink (overshot-then-subsampled points are
    # neither included nor excluded; they are counted in `overshoot`).
    n_excluded = n - int(np.count_nonzero(solution)) - remaining_ids.size
    return BoundingResult(
        solution=solution_ids,
        remaining=remaining_ids,
        n_excluded=int(n_excluded),
        k_remaining=int(max(k_remaining, 0)),
        grow_rounds=grow_rounds,
        shrink_rounds=shrink_rounds,
        complete=k_remaining <= 0,
        overshoot=overshoot,
        history=history,
    )
