"""The paper's primary contribution: bounding + distributed greedy selection."""

from repro.core.bounding import BoundingResult, bound, compute_utilities
from repro.core.distributed import (
    DistributedResult,
    LinearDeltaSchedule,
    RoundStats,
    distributed_greedy,
    random_partitioner,
    stratified_partitioner,
    worst_case_partitioner,
)
from repro.core.exact import ExactResult, exact_maximize
from repro.core.greedy import (
    GREEDY_VARIANTS,
    SelectionResult,
    greedy_heap,
    greedy_naive,
    lazy_greedy,
    stochastic_greedy,
    threshold_greedy,
)
from repro.core.normalization import normalize_one, normalize_scores
from repro.core.objective import PairwiseObjective
from repro.core.pipeline import (
    DistributedSelector,
    SelectionReport,
    SelectorConfig,
    centralized_reference,
)
from repro.core.problem import SubsetProblem
from repro.core.theory import (
    InstanceConstants,
    approximation_factor,
    guarantee_for_instance,
    instance_constants,
    success_probability,
)

__all__ = [
    "SubsetProblem",
    "PairwiseObjective",
    "SelectionResult",
    "greedy_naive",
    "greedy_heap",
    "lazy_greedy",
    "stochastic_greedy",
    "threshold_greedy",
    "GREEDY_VARIANTS",
    "BoundingResult",
    "bound",
    "compute_utilities",
    "DistributedResult",
    "RoundStats",
    "LinearDeltaSchedule",
    "distributed_greedy",
    "random_partitioner",
    "stratified_partitioner",
    "worst_case_partitioner",
    "exact_maximize",
    "ExactResult",
    "normalize_scores",
    "normalize_one",
    "DistributedSelector",
    "SelectorConfig",
    "SelectionReport",
    "centralized_reference",
    "approximation_factor",
    "success_probability",
    "instance_constants",
    "InstanceConstants",
    "guarantee_for_instance",
]
