"""Multi-round partition-based distributed greedy (Sec. 4.4, Algorithm 6).

Unlike GreeDi/RandGreeDi, there is **no** final centralized greedy over the
union of per-partition results — the per-round size targets (the Δ-schedule)
shrink the surviving set toward ``k`` so the union of the last round *is*
the subset, and no machine ever needs DRAM for all of it.

Round structure (with ``m`` machines, ``r`` rounds, budget ``k``):

1. ``partition_cap = ceil(|V| / m)`` — fixed machine capacity.
2. Each round: the survivors are randomly partitioned; each partition runs
   the centralized heap greedy (Alg. 2) on its own subgraph (cross-partition
   edges discarded) with target ``ceil(n_round / m_round)``; results union.
3. *Adaptive partitioning* sets ``m_round = ceil(|V_{round-1}| /
   partition_cap)`` — the minimum number of machines that fit the surviving
   set — so later rounds approach the centralized algorithm.  (This is the
   reading of Alg. 6 consistent with Fig. 14: with 2 partitions and 2 rounds
   the second round collapses to a single partition and recovers 100 % of the
   centralized score, while round 1 matches the non-adaptive score.)
   Non-adaptive mode keeps ``m_round = m``.
4. After the last round the union may exceed ``k`` by up to ``m_r`` points
   due to per-partition rounding; uniform subsampling trims it.

The Δ-schedule defaults to the paper's linear interpolation with factor
γ=0.75: ``Δ(|V|, r, round, k) = ceil(γ (r - round) (|V| - k) / r) + k``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.core.greedy import greedy_heap
from repro.core.problem import SubsetProblem
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_cardinality

# A partitioner maps (round_index [1-based], ids, m_round, rng) to a list of
# disjoint id arrays covering `ids`.
Partitioner = Callable[[int, np.ndarray, int, np.random.Generator], List[np.ndarray]]


def fingerprint(*parts: Any) -> str:
    """Deterministic content hash over arrays/scalars/strings.

    The checkpoint-salt primitive for distributed drives: the dataflow
    engine's stage checkpointing (``Pipeline(checkpoint_dir=...)``) keys
    streaming sources by a caller-supplied salt, and this is how the
    beams derive one from the data those sources will stream — so a
    resumed run only reuses checkpoints produced from identical inputs.
    NumPy arrays hash by dtype, shape, and raw bytes (no serialization
    round trip); containers hash recursively with type markers so e.g.
    ``(1, 2)`` and ``[1, 2]`` cannot collide.
    """
    h = hashlib.sha256()
    _fingerprint_update(h, parts)
    return h.hexdigest()


def _fingerprint_update(h, part: Any) -> None:
    if part is None:
        h.update(b"\x00N")
    elif isinstance(part, np.ndarray):
        arr = np.ascontiguousarray(part)
        h.update(f"\x00a{arr.dtype.str}{arr.shape}".encode())
        h.update(arr.tobytes())
    elif isinstance(part, bytes):
        h.update(b"\x00b" + part)
    elif isinstance(part, str):
        h.update(b"\x00s" + part.encode())
    elif isinstance(part, (bool, int, float, np.integer, np.floating)):
        h.update(f"\x00n{type(part).__name__}:{part!r}".encode())
    elif isinstance(part, (tuple, list)):
        marker = "t" if isinstance(part, tuple) else "l"
        h.update(f"\x00{marker}{len(part)}".encode())
        for item in part:
            _fingerprint_update(h, item)
    else:
        raise TypeError(
            f"cannot fingerprint {type(part).__name__!r}; pass arrays, "
            "scalars, strings, bytes, or nestings of those"
        )


def problem_fingerprint(problem: SubsetProblem) -> str:
    """Content hash of a :class:`SubsetProblem` (graph, utilities, α/β).

    Two runs whose problems fingerprint equal stream bit-identical
    graph/utility sources, which is exactly the guarantee checkpoint
    salts must carry.
    """
    g = problem.graph
    return fingerprint(
        "subset-problem",
        problem.utilities,
        g.indptr,
        g.indices,
        g.weights,
        float(problem.alpha),
        float(problem.beta),
    )


@dataclass(frozen=True)
class LinearDeltaSchedule:
    """Linear Δ-schedule (Sec. 6.1 / Appendix E).

    ``delta(n0, r, round, k) = ceil(gamma * (r - round) * (n0 - k) / r) + k``

    Satisfies the only hard constraint Δ(., r, r, k) = k.  ``gamma`` < 1
    shrinks intermediate sets faster (forcing earlier decisions), > 1 would
    keep more; the paper evaluates γ ∈ {0.25, 0.5, 0.75, 1.0} (App. E).
    """

    gamma: float = 0.75

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError(f"gamma must be > 0, got {self.gamma}")

    def __call__(self, n0: int, r: int, round_idx: int, k: int) -> int:
        if not 1 <= round_idx <= r:
            raise ValueError(f"round must be in [1, {r}], got {round_idx}")
        raw = int(np.ceil(self.gamma * (r - round_idx) * (n0 - k) / r)) + k
        # Intermediate targets may exceed n0 for gamma > 1; clamp into range.
        return int(min(max(raw, k), n0))


def resolve_ground(
    n: int, candidates: Optional[np.ndarray], k: int
) -> "tuple[np.ndarray, int]":
    """Resolve the candidate ground set and validate ``k`` against it.

    Shared by the in-memory and dataflow greedy drivers so candidate
    semantics (dedup, range check, empty-set policy) cannot diverge.
    Returns ``(ground_ids, k)``; ``k == 0`` signals nothing to select.
    """
    if candidates is None:
        ground = np.arange(n, dtype=np.int64)
    else:
        ground = np.unique(np.asarray(candidates, dtype=np.int64))
        if ground.size and (ground[0] < 0 or ground[-1] >= n):
            raise ValueError("candidate ids out of range")
    n0 = int(ground.size)
    return ground, (check_cardinality(k, n0) if n0 else 0)


def random_partitioner(
    round_idx: int, ids: np.ndarray, m_round: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Uniform random balanced partition (the paper's only partitioner)."""
    perm = rng.permutation(ids)
    return [part for part in np.array_split(perm, m_round) if part.size]


def stratified_partitioner(strata: np.ndarray) -> Partitioner:
    """Stratified random partitioning (extension; the paper uses uniform only).

    Spreads each stratum (e.g. class label, or a clustering of the
    embedding space) evenly across partitions, so per-partition greedy sees
    a miniature of the global utility/diversity structure.  The Appendix-E
    discussion suggests partition composition matters; the stratified
    ablation bench quantifies it.

    Parameters
    ----------
    strata:
        Integer stratum id per ground-set point.
    """
    strata = np.asarray(strata, dtype=np.int64)

    def partition(
        round_idx: int, ids: np.ndarray, m_round: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        if m_round == 1:
            return [rng.permutation(ids)]
        buckets: List[List[np.ndarray]] = [[] for _ in range(m_round)]
        # Deal each stratum round-robin (randomized order within stratum,
        # random starting bucket so strata don't all pile into bucket 0).
        for stratum in np.unique(strata[ids]):
            members = rng.permutation(ids[strata[ids] == stratum])
            offset = int(rng.integers(m_round))
            for j, chunk in enumerate(np.array_split(members, m_round)):
                if chunk.size:
                    buckets[(j + offset) % m_round].append(chunk)
        return [
            np.concatenate(bucket) if bucket else np.empty(0, dtype=np.int64)
            for bucket in buckets
            if bucket
        ]

    return partition


def worst_case_partitioner(
    reference_solution: np.ndarray,
    fallback: Partitioner = random_partitioner,
) -> Partitioner:
    """Sec. 6.4's adversarial first-round assignment.

    Round 1 stuffs the entire ``reference_solution`` (e.g. the centralized
    greedy subset) into one partition; the rest of the points are split
    randomly over the remaining partitions.  Later rounds fall back to the
    random partitioner.
    """
    reference = np.asarray(reference_solution, dtype=np.int64)

    def partition(
        round_idx: int, ids: np.ndarray, m_round: int, rng: np.random.Generator
    ) -> List[np.ndarray]:
        if round_idx != 1 or m_round < 2:
            return fallback(round_idx, ids, m_round, rng)
        in_ref = np.isin(ids, reference)
        ref_part = ids[in_ref]
        others = rng.permutation(ids[~in_ref])
        parts = [p for p in np.array_split(others, m_round - 1) if p.size]
        return [ref_part] + parts

    return partition


@dataclass
class RoundStats:
    """Telemetry for one round of Algorithm 6."""

    round_idx: int
    input_size: int
    target_size: int
    m_round: int
    per_partition_target: int
    output_size: int


@dataclass
class DistributedResult:
    """Outcome of the multi-round distributed greedy."""

    selected: np.ndarray
    rounds: List[RoundStats] = field(default_factory=list)

    def __len__(self) -> int:
        return int(self.selected.size)

    @property
    def max_partitions_used(self) -> int:
        return max((s.m_round for s in self.rounds), default=0)


def distributed_greedy(
    problem: SubsetProblem,
    k: int,
    *,
    m: int,
    rounds: int = 1,
    adaptive: bool = False,
    schedule: Optional[Callable[[int, int, int, int], int]] = None,
    partitioner: Partitioner = random_partitioner,
    candidates: Optional[np.ndarray] = None,
    base_penalty: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> DistributedResult:
    """Algorithm 6: adaptive-partitioning multi-round distributed greedy.

    Parameters
    ----------
    m:
        Number of machines available at the start (sets ``partition_cap``).
    rounds:
        Number of rounds ``r``.
    adaptive:
        Scale partitions down each round to the minimum that fit the
        surviving set (see module docstring).
    schedule:
        Δ function; defaults to :class:`LinearDeltaSchedule` (γ=0.75).
    candidates:
        Restrict the ground set to these ids (the remaining set ``V`` after
        bounding).  Defaults to all points.
    base_penalty:
        Per-point penalty ``beta * Σ_{nb ∈ S'} s(v, nb)`` from an existing
        partial solution (bounding output); passed into every per-partition
        greedy so marginal gains account for already-selected neighbors.
    seed:
        Seeds both partitioning and subsampling.

    Returns
    -------
    DistributedResult
        ``selected`` are global ids, ``len == k`` (unless fewer candidates
        exist).
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if schedule is None:
        schedule = LinearDeltaSchedule()
    rng = as_generator(seed)
    survivors, k = resolve_ground(problem.n, candidates, k)
    n0 = int(survivors.size)
    if k == 0:
        return DistributedResult(np.empty(0, dtype=np.int64))
    partition_cap = int(np.ceil(n0 / m))
    stats: List[RoundStats] = []

    for round_idx in range(1, rounds + 1):
        n_round = schedule(n0, rounds, round_idx, k)
        n_round = min(n_round, survivors.size)
        if adaptive:
            m_round = int(np.ceil(survivors.size / partition_cap))
        else:
            m_round = m
        m_round = max(1, min(m_round, survivors.size))
        per_target = int(np.ceil(n_round / m_round))
        parts = partitioner(round_idx, survivors, m_round, rng)
        if sum(p.size for p in parts) != survivors.size:
            raise ValueError("partitioner must cover all surviving points")
        selected_parts: List[np.ndarray] = []
        for part in parts:
            local_k = min(per_target, part.size)
            sub = problem.restrict(part)
            local_penalty = (
                base_penalty[part] if base_penalty is not None else None
            )
            result = greedy_heap(sub, local_k, base_penalty=local_penalty)
            selected_parts.append(part[result.selected])
        new_survivors = (
            np.sort(np.concatenate(selected_parts))
            if selected_parts
            else np.empty(0, dtype=np.int64)
        )
        stats.append(
            RoundStats(
                round_idx=round_idx,
                input_size=int(survivors.size),
                target_size=int(n_round),
                m_round=m_round,
                per_partition_target=per_target,
                output_size=int(new_survivors.size),
            )
        )
        survivors = new_survivors

    if survivors.size > k:
        survivors = np.sort(rng.choice(survivors, size=k, replace=False))
    return DistributedResult(selected=survivors, rounds=stats)
