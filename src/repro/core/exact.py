"""Exact optimum via branch-and-bound — the ground-truth oracle.

The bounding lemmas (4.3/4.4) and Theorem 4.6 are statements about the true
optimum ``S*``.  For tests and small-instance studies we need that optimum
exactly; plain enumeration dies beyond ~20 points, so this module implements
depth-first branch-and-bound with two admissible pruning bounds:

- *utility bound*: the best completion of a partial selection cannot beat
  taking the remaining points with the highest marginal-utility terms and
  paying no pairwise penalty at all,
- *greedy warm start*: the incumbent is initialized with the greedy solution
  (guaranteed ≥ (1-1/e)·OPT on monotone instances), which makes the search
  practical into the low hundreds of points for small ``k``.

Exponential in the worst case by nature — use for validation, not selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.greedy import greedy_heap
from repro.core.problem import SubsetProblem
from repro.utils.validation import check_cardinality


@dataclass
class ExactResult:
    """Optimal subset and search statistics."""

    selected: np.ndarray
    objective: float
    nodes_explored: int
    nodes_pruned: int


def exact_maximize(
    problem: SubsetProblem,
    k: int,
    *,
    node_limit: int = 5_000_000,
) -> ExactResult:
    """Find ``argmax_{|S| = k} f(S)`` exactly by branch-and-bound.

    Raises ``RuntimeError`` if ``node_limit`` search nodes are exceeded
    (instance too large for exact solving).
    """
    k = check_cardinality(k, problem.n)
    n = problem.n
    alpha, beta = problem.alpha, problem.beta
    u = problem.utilities
    graph = problem.graph

    if k == 0:
        return ExactResult(np.empty(0, dtype=np.int64), 0.0, 0, 0)

    # Order candidates by decreasing unary value so good solutions are found
    # early and the utility bound tightens fast.
    order = np.argsort(-(alpha * u), kind="stable").astype(np.int64)
    unary_sorted = alpha * u[order]
    # suffix_top[i][j]: sum of the j largest unary terms among order[i:].
    # We only ever need "the k' largest among the remaining", computed via a
    # cumulative trick: since order is sorted by unary value, the j largest
    # among order[i:] are simply order[i:i+j].
    prefix = np.concatenate([[0.0], np.cumsum(unary_sorted)])

    incumbent = greedy_heap(problem, k)
    best_value = incumbent.objective
    best_set: Tuple[int, ...] = tuple(sorted(incumbent.selected.tolist()))

    selected: List[int] = []
    selected_mask = np.zeros(n, dtype=bool)
    current_value = 0.0
    nodes = 0
    pruned = 0

    adjacency = [graph.neighbors(v) for v in range(n)]

    def upper_bound(position: int, picked: int, value: float) -> float:
        """value + best-case unary mass of the remaining picks."""
        need = k - picked
        return value + (prefix[position + need] - prefix[position])

    def dfs(position: int, value: float) -> None:
        nonlocal best_value, best_set, nodes, pruned
        nodes += 1
        if nodes > node_limit:
            raise RuntimeError(
                f"exact_maximize exceeded node_limit={node_limit}; "
                "instance too large for exact search"
            )
        picked = len(selected)
        if picked == k:
            if value > best_value + 1e-12:
                best_value = value
                best_set = tuple(sorted(selected))
            return
        remaining_slots = n - position
        if remaining_slots < k - picked:
            return
        if upper_bound(position, picked, value) <= best_value + 1e-12:
            pruned += 1
            return
        v = int(order[position])
        # Branch 1: take v.
        nbrs, ws = adjacency[v]
        penalty = float(ws[selected_mask[nbrs]].sum())
        gain = alpha * u[v] - beta * penalty
        selected.append(v)
        selected_mask[v] = True
        dfs(position + 1, value + gain)
        selected.pop()
        selected_mask[v] = False
        # Branch 2: skip v.
        dfs(position + 1, value)

    dfs(0, current_value)
    return ExactResult(
        selected=np.array(best_set, dtype=np.int64),
        objective=float(best_value),
        nodes_explored=nodes,
        nodes_pruned=pruned,
    )
