"""Score normalization used throughout Section 6.

"For the same parameter group (dataset, α/β, and target subset size k), we
map the objective from the centralized greedy to 100 %, and the lowest
observed score to 0 %."  A percent point is thus a gain over the worst
observed configuration, and values above 100 flag configurations beating
plain centralized greedy (which bounding occasionally does, Table 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np


def normalize_scores(
    scores: Mapping[str, float] | Iterable[float],
    centralized: float,
    *,
    lowest: float | None = None,
) -> Dict[str, float] | np.ndarray:
    """Map raw objective values to the paper's percent scale.

    Parameters
    ----------
    scores:
        Either a mapping ``name -> raw score`` or an iterable of raw scores.
    centralized:
        Raw objective of the centralized greedy run (pinned to 100 %).
    lowest:
        Raw score pinned to 0 %; defaults to the minimum of ``scores``
        (and ``centralized``), matching the paper's "lowest observed".

    Returns
    -------
    Same container shape as ``scores`` with values in percent.  When every
    observed score equals the centralized one the scale is degenerate and
    all entries map to 100.
    """
    if isinstance(scores, Mapping):
        keys = list(scores.keys())
        values = np.array([scores[key] for key in keys], dtype=np.float64)
    else:
        keys = None
        values = np.asarray(list(scores), dtype=np.float64)
    if lowest is None:
        observed = values if values.size else np.array([centralized])
        lowest = float(min(observed.min(), centralized))
    span = centralized - lowest
    if span <= 0:
        normalized = np.full_like(values, 100.0)
    else:
        normalized = (values - lowest) / span * 100.0
    if keys is None:
        return normalized
    return dict(zip(keys, normalized.tolist()))


def normalize_one(score: float, centralized: float, lowest: float) -> float:
    """Normalize a single raw score against a precomputed (100 %, 0 %) pair."""
    span = centralized - lowest
    if span <= 0:
        return 100.0
    return (score - lowest) / span * 100.0
