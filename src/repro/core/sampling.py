"""Neighborhood samplers for approximate bounding (Def. 4.5).

Approximate bounding replaces the minimum utility with an *expected utility*
computed over a sampled subset of each point's not-yet-assigned neighbors
(neighbors already in the partial solution are always counted).  Two sampling
strategies appear in the evaluation (Sec. 6.2):

- *uniform*: every neighbor kept independently with probability ``p``
  (this is the regime Theorem 4.6 analyzes),
- *weighted*: "the sampling probability is [proportional] to the pairwise
  interaction between the neighbors"; we keep neighbor ``i`` with probability
  ``min(1, p * w_i / mean(w))`` per source point, so the expected kept
  fraction stays ~``p`` while strong interactions are (almost) always seen.

Samplers operate on the flat CSR edge array so one vectorized draw covers the
whole graph per bounding iteration.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import NeighborGraph
from repro.utils.rng import SeedLike, as_generator


def uniform_edge_sample(
    graph: NeighborGraph, p: float, rng: SeedLike = None
) -> np.ndarray:
    """Boolean keep-mask over the CSR edge array, iid Bernoulli(p)."""
    if not 0 < p <= 1:
        raise ValueError(f"sampling fraction p must be in (0, 1], got {p}")
    gen = as_generator(rng)
    if p == 1.0:
        return np.ones(graph.num_directed_edges, dtype=bool)
    return gen.random(graph.num_directed_edges) < p


def weighted_edge_sample(
    graph: NeighborGraph, p: float, rng: SeedLike = None
) -> np.ndarray:
    """Keep-mask with per-source probabilities ∝ edge weight.

    For source ``v`` with weights ``w_1..w_d``, edge ``i`` is kept with
    probability ``min(1, p * w_i * d / Σw)`` — i.e. ``p * w_i / mean(w)`` —
    giving an expected kept count of ~``p*d`` while biasing retention toward
    high-similarity neighbors.  Zero-weight rows degrade to uniform.
    """
    if not 0 < p <= 1:
        raise ValueError(f"sampling fraction p must be in (0, 1], got {p}")
    gen = as_generator(rng)
    nnz = graph.num_directed_edges
    if p == 1.0 or nnz == 0:
        return np.ones(nnz, dtype=bool)
    degrees = np.diff(graph.indptr)
    row_of_edge = np.repeat(np.arange(graph.n), degrees)
    row_sum = np.zeros(graph.n)
    np.add.at(row_sum, row_of_edge, graph.weights)
    row_mean = np.where(degrees > 0, row_sum / np.maximum(degrees, 1), 0.0)
    mean_per_edge = row_mean[row_of_edge]
    with np.errstate(divide="ignore", invalid="ignore"):
        prob = np.where(
            mean_per_edge > 0, p * graph.weights / mean_per_edge, p
        )
    np.clip(prob, 0.0, 1.0, out=prob)
    return gen.random(nnz) < prob


EDGE_SAMPLERS = {
    "uniform": uniform_edge_sample,
    "weighted": weighted_edge_sample,
}
