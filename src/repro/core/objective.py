"""The pairwise submodular objective (Sec. 3, Appendix A).

``f(S) = alpha * Σ_{v∈S} u(v) - beta * Σ_{(v1,v2)∈E; v1,v2∈S} s(v1,v2)``

with ``E`` an *undirected* edge set counted once.  The symmetric CSR graph
stores each edge twice, so the pairwise sum is halved here.

The function is always submodular for ``beta, s >= 0``; it is monotone iff
the unary terms dominate, and Appendix A's constant offset

    delta = (beta / alpha) * max_v Σ_j s(v, j)

restores monotonicity otherwise (adjusting the approximation guarantee to
``f(S) + k*delta >= (1 - 1/e) (f(S_OPT) + k*delta)``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.problem import SubsetProblem

SubsetLike = Union[np.ndarray, list, tuple, set, frozenset]


def _as_mask(subset: SubsetLike, n: int) -> np.ndarray:
    """Normalize id collections / boolean masks to a boolean mask."""
    if isinstance(subset, np.ndarray) and subset.dtype == bool:
        if subset.shape != (n,):
            raise ValueError(f"mask must have shape ({n},), got {subset.shape}")
        return subset
    ids = np.asarray(sorted(subset) if isinstance(subset, (set, frozenset)) else subset,
                     dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= n):
        raise ValueError("subset ids out of range")
    if np.unique(ids).size != ids.size:
        raise ValueError("subset contains duplicate ids")
    mask = np.zeros(n, dtype=bool)
    mask[ids] = True
    return mask


class PairwiseObjective:
    """Evaluator for the pairwise submodular objective on a problem."""

    def __init__(self, problem: SubsetProblem) -> None:
        self.problem = problem

    # -- evaluation -------------------------------------------------------

    def unary(self, subset: SubsetLike) -> float:
        """``Σ_{v∈S} u(v)`` (unweighted by alpha)."""
        mask = _as_mask(subset, self.problem.n)
        return float(self.problem.utilities[mask].sum())

    def pairwise(self, subset: SubsetLike) -> float:
        """``Σ_{(v1,v2)∈E; v1,v2∈S} s(v1,v2)`` counted once per edge."""
        mask = _as_mask(subset, self.problem.n)
        g = self.problem.graph
        # mass restricted to rows in S and columns in S; halve double count.
        mass = g.neighbor_mass(mask)
        return float(mass[mask].sum() / 2.0)

    def value(self, subset: SubsetLike) -> float:
        """Full objective ``f(S)``."""
        mask = _as_mask(subset, self.problem.n)
        p = self.problem
        unary = p.utilities[mask].sum()
        mass = p.graph.neighbor_mass(mask)
        return float(p.alpha * unary - p.beta * mass[mask].sum() / 2.0)

    def marginal_gain(self, v: int, subset: SubsetLike) -> float:
        """``f(S ∪ {v}) - f(S)`` for ``v ∉ S``."""
        mask = _as_mask(subset, self.problem.n)
        if mask[v]:
            raise ValueError(f"point {v} already in subset")
        p = self.problem
        nbrs, ws = p.graph.neighbors(v)
        selected_mass = float(ws[mask[nbrs]].sum())
        return float(p.alpha * p.utilities[v] - p.beta * selected_mass)

    def marginal_gains_all(self, subset: SubsetLike) -> np.ndarray:
        """Vector of marginal gains for every point (including members).

        ``gains[v] = alpha*u(v) - beta*mass_S(v)``; only meaningful for
        ``v ∉ S`` but computed for all (callers mask).
        """
        mask = _as_mask(subset, self.problem.n)
        p = self.problem
        return p.alpha * p.utilities - p.beta * p.graph.neighbor_mass(mask)

    # -- monotonicity (Appendix A) -----------------------------------------

    def monotonicity_offset(self) -> float:
        """Appendix A's ``delta = (beta/alpha) max_v Σ_j s(v, j)`` (Eq. 2)."""
        p = self.problem
        if p.beta == 0:
            return 0.0
        return p.beta_over_alpha * p.graph.max_neighbor_mass()

    def is_monotone_certificate(self) -> bool:
        """Sufficient check: every point's *worst-case* marginal gain >= 0.

        If ``alpha*u(v) >= beta * Σ_j s(v,j)`` for all v then adding any
        point never decreases f, so f is monotone.
        """
        p = self.problem
        worst = p.alpha * p.utilities - p.beta * p.graph.neighbor_mass()
        return bool((worst >= 0).all())

    def with_monotone_offset(self) -> "PairwiseObjective":
        """Return an objective over utilities shifted by ``delta`` (Eq. 3)."""
        from dataclasses import replace

        delta = self.monotonicity_offset()
        shifted = replace(
            self.problem, utilities=self.problem.utilities + delta
        )
        return PairwiseObjective(shifted)
