"""Virtual perturbed dataset — the Perturbed-ImageNet (13 B) stand-in.

The paper obtains its 13 B-point stress-test set "by perturbing each point of
ImageNet in embedding space into 10 k vectors" (Sec. 6).  We reproduce the
construction *virtually*: each of ``n_base`` base points expands into
``factor`` perturbed copies whose embeddings are generated deterministically
from (base id, copy index) on demand and never materialized.

Id layout: virtual id ``g`` maps to base point ``g // factor`` and copy
``g % factor``; copy 0 is the unperturbed base point.

Utilities and the neighbor structure are likewise derived per chunk:

- utility of a copy = base utility + a small deterministic jitter,
- neighbors of a copy = the other copies of the same base point (ring
  topology among copies, similarity ``ring_similarity``) plus the base
  point's *symmetrized* kNN edges lifted to aligned copies, mirroring the
  fact that perturbations of neighboring originals remain neighbors in
  embedding space.  (The raw kNN table is directed; we symmetrize it at
  construction, exactly as Sec. 6 does for the real datasets, so the lifted
  graph is symmetric too.)

This exercises the identical code paths the 13 B experiment needs — chunked
utility access, neighbor iteration without a global CSR in memory, and
multi-round distributed greedy whose partitions exceed any single "machine"
cap — at a configurable scale.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.data.store import ChunkedEmbeddingStore
from repro.utils.rng import SeedLike


def _hash_floats(ids: np.ndarray, salt: int, size: int) -> np.ndarray:
    """Deterministic pseudo-random floats in [0, 1) per (id, salt, lane).

    A counter-based construction (SplitMix64-style mixing) so any chunk of
    the virtual dataset can be generated independently of iteration order.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    lanes = np.arange(size, dtype=np.uint64)
    with np.errstate(over="ignore"):  # uint64 wrap-around is the point
        x = ids[:, None] * np.uint64(0x9E3779B97F4A7C15)
        x = x + lanes[None, :] * np.uint64(0xBF58476D1CE4E5B9)
        x = x + np.uint64(salt % (2**32)) * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(30)
        x = x * np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x = x * np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return (x >> np.uint64(11)).astype(np.float64) / float(1 << 53)


class PerturbedDataset:
    """Virtual expansion of a base dataset into ``n_base * factor`` points.

    Parameters
    ----------
    base_embeddings:
        ``(n_base, dim)`` base embeddings (kept in memory; they are small).
    base_utilities:
        ``(n_base,)`` utilities of the base points.
    base_neighbors, base_similarities:
        Directed ``(n_base, k)`` kNN table of the base dataset.
    factor:
        Copies per base point (the paper uses 10 000; tests use small values).
    noise_std:
        Perturbation magnitude in embedding space.
    utility_jitter:
        Max absolute deterministic jitter added to copy utilities.
    ring_similarity:
        Similarity between consecutive copies of the same base point.
    """

    def __init__(
        self,
        base_embeddings: np.ndarray,
        base_utilities: np.ndarray,
        base_neighbors: np.ndarray,
        base_similarities: np.ndarray,
        *,
        factor: int,
        noise_std: float = 0.05,
        utility_jitter: float = 0.01,
        ring_similarity: float = 0.95,
        seed: SeedLike = 0,
    ) -> None:
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.base_embeddings = np.asarray(base_embeddings, dtype=np.float64)
        self.base_utilities = np.asarray(base_utilities, dtype=np.float64)
        self.base_neighbors = np.asarray(base_neighbors, dtype=np.int64)
        self.base_similarities = np.asarray(base_similarities, dtype=np.float64)
        n_base = self.base_embeddings.shape[0]
        if self.base_utilities.shape != (n_base,):
            raise ValueError("base_utilities must align with base_embeddings")
        if self.base_neighbors.shape != self.base_similarities.shape:
            raise ValueError("base_neighbors and base_similarities must align")
        self.factor = int(factor)
        self.noise_std = float(noise_std)
        self.utility_jitter = float(utility_jitter)
        self.ring_similarity = float(ring_similarity)
        self._salt = 0 if seed is None else int(np.random.SeedSequence(
            seed if isinstance(seed, int) else 0
        ).entropy) % (2**31)
        # Symmetrize the (directed) base kNN table once, mirroring Sec. 6's
        # treatment of the real datasets; lifted edges inherit this symmetry.
        from repro.graph.symmetrize import symmetrize_knn

        base_graph = symmetrize_knn(self.base_neighbors, self.base_similarities)
        self._base_adjacency = [
            base_graph.neighbors(b) for b in range(n_base)
        ]

    # -- shape -----------------------------------------------------------

    @property
    def n_base(self) -> int:
        return self.base_embeddings.shape[0]

    @property
    def n(self) -> int:
        """Total virtual ground-set size."""
        return self.n_base * self.factor

    @property
    def dim(self) -> int:
        return self.base_embeddings.shape[1]

    def split_ids(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map virtual ids to ``(base_id, copy_index)``."""
        ids = np.asarray(ids, dtype=np.int64)
        return ids // self.factor, ids % self.factor

    # -- chunked access ----------------------------------------------------

    def embeddings(self, ids: np.ndarray) -> np.ndarray:
        """Embeddings of virtual points (deterministic in ``ids``)."""
        base, _copy = self.split_ids(ids)
        noise = _hash_floats(ids, self._salt + 1, self.dim) - 0.5
        out = self.base_embeddings[base] + self.noise_std * 2.0 * noise
        # copy 0 is the unperturbed base point
        out[np.asarray(ids) % self.factor == 0] = self.base_embeddings[
            base[np.asarray(ids) % self.factor == 0]
        ]
        return out

    def utilities(self, ids: np.ndarray) -> np.ndarray:
        """Utilities of virtual points: base utility + deterministic jitter."""
        base, copy = self.split_ids(ids)
        jitter = (_hash_floats(ids, self._salt + 2, 1).ravel() - 0.5) * 2.0
        out = self.base_utilities[base] + self.utility_jitter * jitter
        out[copy == 0] = self.base_utilities[base[copy == 0]]
        return np.maximum(out, 0.0)

    def neighbors(self, ids: np.ndarray) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(virtual_id, neighbor_ids, similarities)`` per point.

        Two edge families (both symmetric by construction):

        - *ring*: copy ``c`` of base ``b`` connects to copies ``c±1 (mod
          factor)`` of the same base with similarity ``ring_similarity``
          (skipped when ``factor == 1``),
        - *lifted kNN*: copy ``c`` of base ``b`` connects to copy ``c`` of
          each symmetrized-kNN neighbor of ``b`` with the base similarity.
        """
        ids = np.asarray(ids, dtype=np.int64)
        base, copy = self.split_ids(ids)
        for g, b, c in zip(ids.tolist(), base.tolist(), copy.tolist()):
            nbr_ids = []
            nbr_sims = []
            if self.factor > 1:
                prev_c = (c - 1) % self.factor
                next_c = (c + 1) % self.factor
                ring = {b * self.factor + prev_c, b * self.factor + next_c}
                ring.discard(g)
                for r in sorted(ring):
                    nbr_ids.append(r)
                    nbr_sims.append(self.ring_similarity)
            base_nbrs, base_sims = self._base_adjacency[b]
            lifted = base_nbrs * self.factor + c
            nbr_ids.extend(lifted.tolist())
            nbr_sims.extend(base_sims.tolist())
            yield g, np.array(nbr_ids, dtype=np.int64), np.array(
                nbr_sims, dtype=np.float64
            )

    def as_store(self) -> ChunkedEmbeddingStore:
        """Expose embeddings as a chunked virtual store."""
        return ChunkedEmbeddingStore(self.n, self.dim, self.embeddings)
