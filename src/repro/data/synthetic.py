"""Synthetic embedding generators with class-cluster structure.

The selection algorithms consume only (embeddings, utilities); what matters
for reproducing the paper's *shape* results is that embeddings cluster by
class (so the kNN graph has strong within-class edges) and that some classes
overlap (so a coarse classifier produces a non-trivial margin distribution).
A Gaussian mixture with controlled centroid separation provides both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ClusterSpec:
    """Parameters of a class-cluster embedding distribution."""

    n_points: int
    n_classes: int
    dim: int
    class_sep: float = 3.0
    within_std: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {self.n_points}")
        if not 1 <= self.n_classes <= self.n_points:
            raise ValueError(
                f"need 1 <= n_classes <= n_points, got {self.n_classes}"
            )
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")


def make_class_clusters(
    n_points: int,
    n_classes: int,
    dim: int,
    *,
    class_sep: float = 3.0,
    within_std: float = 1.0,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a Gaussian-mixture embedding dataset.

    ``class_sep`` is the *expected distance between two class centroids in
    units of* ``within_std`` — independent of ``dim`` — so defaults give the
    same cluster-overlap regime at any embedding width.  (Two isotropic
    Gaussian centroids at per-axis scale σ are ~``σ·sqrt(2·dim)`` apart, so
    the per-axis draw is scaled by ``class_sep·within_std/sqrt(2·dim)``.)
    Points scatter around their centroid at scale ``within_std``; labels are
    balanced up to rounding.

    Returns
    -------
    (embeddings, labels):
        ``(n_points, dim)`` float64 and ``(n_points,)`` int64 arrays.
    """
    spec = ClusterSpec(n_points, n_classes, dim, class_sep, within_std)
    rng = as_generator(seed)
    centroid_axis_scale = spec.class_sep * spec.within_std / np.sqrt(2.0 * dim)
    centroids = rng.normal(scale=centroid_axis_scale, size=(n_classes, dim))
    labels = np.arange(n_points, dtype=np.int64) % n_classes
    rng.shuffle(labels)
    embeddings = centroids[labels] + rng.normal(
        scale=spec.within_std, size=(n_points, dim)
    )
    return embeddings, labels
