"""Named dataset presets mirroring the paper's evaluation datasets.

``cifar100_like`` matches CIFAR-100's statistics (100 classes, 50 k points,
64-dim embeddings from the coarse ResNet's penultimate layer);
``imagenet_like`` is a sub-sampled stand-in for ImageNet (1 k classes; we
default to 100 k points and a reduced embedding dim so laptop runs finish —
both are overridable).  ``*_tiny`` variants keep CI fast.

Every preset bundles embeddings, labels, margin utilities from a coarse
classifier trained on a 10 % split, and a symmetrized 10-NN graph — i.e.
everything Section 6's experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.data.classifier import margin_utilities
from repro.data.synthetic import make_class_clusters
from repro.graph.csr import NeighborGraph
from repro.graph.symmetrize import build_knn_graph
from repro.utils.rng import SeedLike


@dataclass
class SelectionDataset:
    """Everything a selection experiment needs, bundled."""

    name: str
    embeddings: np.ndarray
    labels: np.ndarray
    utilities: np.ndarray
    graph: NeighborGraph
    neighbors: np.ndarray = field(repr=False, default=None)  # directed kNN
    similarities: np.ndarray = field(repr=False, default=None)

    @property
    def n(self) -> int:
        return self.embeddings.shape[0]

    @property
    def dim(self) -> int:
        return self.embeddings.shape[1]


@dataclass(frozen=True)
class _Preset:
    n_points: int
    n_classes: int
    dim: int
    class_sep: float
    within_std: float
    knn_k: int = 10


DATASET_PRESETS: Dict[str, _Preset] = {
    # CIFAR-100: 100 classes, 50k points, 64-d embeddings (Sec. 6).
    "cifar100_like": _Preset(50_000, 100, 64, class_sep=3.0, within_std=1.0),
    # ImageNet: 1k classes, 1.28M points, 2048-d embeddings in the paper;
    # defaults reduced (n=100k, d=128) so the full grid benches run on a
    # laptop.  Shapes (class structure, degree stats) are preserved.
    "imagenet_like": _Preset(100_000, 1_000, 128, class_sep=3.0, within_std=1.0),
    # CI-scale variants with identical structure.
    "cifar100_tiny": _Preset(2_000, 20, 16, class_sep=3.0, within_std=1.0),
    "imagenet_tiny": _Preset(4_000, 50, 24, class_sep=3.0, within_std=1.0),
}


def load_dataset(
    name: str,
    *,
    n_points: Optional[int] = None,
    knn_k: Optional[int] = None,
    knn_method: str = "exact",
    train_fraction: float = 0.1,
    temperature: float = 4.0,
    seed: SeedLike = 0,
) -> SelectionDataset:
    """Materialize a preset dataset (embeddings, utilities, kNN graph).

    Parameters
    ----------
    name:
        One of :data:`DATASET_PRESETS`.
    n_points:
        Override the preset's point count (scales experiments down for CI).
    knn_k:
        Override the neighbor count (paper default: 10).
    knn_method:
        ``"exact"`` or ``"ann"`` (the ScaNN stand-in).
    temperature:
        Coarse-classifier softmax temperature; larger values spread the
        margin-utility distribution (a very confident model would make all
        utilities ~0).
    """
    if name not in DATASET_PRESETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_PRESETS)}"
        )
    preset = DATASET_PRESETS[name]
    n = int(n_points) if n_points is not None else preset.n_points
    n_classes = min(preset.n_classes, n)
    k = int(knn_k) if knn_k is not None else preset.knn_k
    embeddings, labels = make_class_clusters(
        n,
        n_classes,
        preset.dim,
        class_sep=preset.class_sep,
        within_std=preset.within_std,
        seed=seed,
    )
    utilities = margin_utilities(
        embeddings,
        labels,
        train_fraction=train_fraction,
        temperature=temperature,
        seed=seed,
    )
    graph, neighbors, sims = build_knn_graph(
        embeddings, k, method=knn_method, seed=seed
    )
    return SelectionDataset(
        name=name,
        embeddings=embeddings,
        labels=labels,
        utilities=utilities,
        graph=graph,
        neighbors=neighbors,
        similarities=sims,
    )
