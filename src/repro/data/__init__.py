"""Dataset substrate.

The paper evaluates on CIFAR-100 (50 k points), ImageNet (1.2 M points), and
a synthetic 13 B-point Perturbed-ImageNet.  Offline reproduction uses
statistically matched synthetic stand-ins (see DESIGN.md substitutions):

- :func:`~repro.data.synthetic.make_class_clusters` — Gaussian mixture
  embeddings with per-class clusters,
- :class:`~repro.data.classifier.CoarseClassifier` — a nearest-centroid model
  trained on a 10 % split, whose softmax margin supplies the paper's
  margin-based uncertainty utility,
- :func:`~repro.data.registry.load_dataset` — named presets
  (``cifar100_like``, ``imagenet_like``, tiny CI variants),
- :class:`~repro.data.perturbed.PerturbedDataset` — virtual on-the-fly
  expansion of a base dataset (the 13 B stress-test stand-in),
- :class:`~repro.data.store.ChunkedEmbeddingStore` — chunk-at-a-time access
  so nothing requires the full embedding matrix in memory.
"""

from repro.data.classifier import CoarseClassifier, margin_utilities
from repro.data.perturbed import PerturbedDataset
from repro.data.registry import DATASET_PRESETS, SelectionDataset, load_dataset
from repro.data.store import ChunkedEmbeddingStore, InMemoryEmbeddingStore
from repro.data.synthetic import make_class_clusters

__all__ = [
    "make_class_clusters",
    "CoarseClassifier",
    "margin_utilities",
    "SelectionDataset",
    "load_dataset",
    "DATASET_PRESETS",
    "PerturbedDataset",
    "ChunkedEmbeddingStore",
    "InMemoryEmbeddingStore",
]
