"""Coarse classifier + margin-based uncertainty utilities (Sec. 6).

The paper trains a ResNet-56 on a random 10 % subset and uses margin-based
uncertainty (Scheffer et al., 2001) as the utility:

    u(x) = 1 - (P(top | x) - P(sec | x))

We substitute a nearest-centroid softmax classifier fitted on the same 10 %
split.  It reproduces the property the experiments rely on: points near class
boundaries get high utility, points deep inside a cluster get low utility.
The paper itself notes "the exact choice of similarity and utility scores
does not impact the comparison of the algorithms, as long as they are
consistently used."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class CoarseClassifier:
    """Nearest-centroid classifier with a temperature softmax head.

    Parameters
    ----------
    temperature:
        Softmax temperature on negative squared distances.  Smaller values
        sharpen predictions (lower utilities away from boundaries).
    """

    def __init__(self, temperature: float = 1.0) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be > 0, got {temperature}")
        self.temperature = float(temperature)
        self.centroids_: Optional[np.ndarray] = None
        self.classes_: Optional[np.ndarray] = None

    def fit(self, embeddings: np.ndarray, labels: np.ndarray) -> "CoarseClassifier":
        """Fit per-class centroids."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if embeddings.shape[0] != labels.shape[0]:
            raise ValueError("embeddings and labels must align")
        if embeddings.shape[0] == 0:
            raise ValueError("cannot fit on an empty training split")
        self.classes_ = np.unique(labels)
        self.centroids_ = np.stack(
            [embeddings[labels == c].mean(axis=0) for c in self.classes_]
        )
        return self

    def predict_proba(self, embeddings: np.ndarray) -> np.ndarray:
        """Class probabilities: softmax over negative squared distances."""
        if self.centroids_ is None:
            raise RuntimeError("classifier not fitted; call fit() first")
        x = np.asarray(embeddings, dtype=np.float64)
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 ; drop the ||x||^2 row term
        # (constant per row, cancels in the softmax).
        logits = (x @ self.centroids_.T) * 2.0 - (self.centroids_**2).sum(axis=1)
        logits /= self.temperature
        logits -= logits.max(axis=1, keepdims=True)
        np.exp(logits, out=logits)
        logits /= logits.sum(axis=1, keepdims=True)
        return logits

    def margin_utility(self, embeddings: np.ndarray) -> np.ndarray:
        """Margin-based uncertainty ``u(x) = 1 - (P(top) - P(sec))``."""
        proba = self.predict_proba(embeddings)
        if proba.shape[1] == 1:
            return np.zeros(proba.shape[0])
        part = np.partition(proba, -2, axis=1)
        top, sec = part[:, -1], part[:, -2]
        return 1.0 - (top - sec)


def margin_utilities(
    embeddings: np.ndarray,
    labels: np.ndarray,
    *,
    train_fraction: float = 0.1,
    temperature: float = 1.0,
    center: bool = True,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Generate the paper's utilities: train coarse model on a random split.

    Parameters
    ----------
    train_fraction:
        Fraction of the data used to fit the coarse model (paper: 10 %).
    center:
        Subtract the minimum utility ("we center the utilities by subtracting
        the minimum utility from all values", Sec. 6).
    """
    if not 0 < train_fraction <= 1:
        raise ValueError(f"train_fraction must be in (0, 1], got {train_fraction}")
    rng = as_generator(seed)
    n = np.asarray(embeddings).shape[0]
    n_train = max(len(np.unique(labels)), int(round(train_fraction * n)))
    n_train = min(n, n_train)
    train_idx = rng.choice(n, size=n_train, replace=False)
    # Guarantee every class appears in the split so centroids exist.
    labels = np.asarray(labels, dtype=np.int64)
    missing = np.setdiff1d(np.unique(labels), np.unique(labels[train_idx]))
    if missing.size:
        extras = np.array(
            [np.flatnonzero(labels == c)[0] for c in missing], dtype=np.int64
        )
        train_idx = np.unique(np.concatenate([train_idx, extras]))
    model = CoarseClassifier(temperature=temperature).fit(
        np.asarray(embeddings)[train_idx], labels[train_idx]
    )
    utilities = model.margin_utility(embeddings)
    if center:
        utilities = utilities - utilities.min()
    return utilities
