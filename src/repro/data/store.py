"""Chunked embedding stores: access embeddings without materializing them.

At 13 B points even the *subset* does not fit in DRAM (the paper's core
constraint).  The stores below expose a chunk-at-a-time iteration protocol
that the perturbed dataset, dataflow sources, and the cluster simulator build
on.  ``InMemoryEmbeddingStore`` wraps a plain array (small datasets);
``ChunkedEmbeddingStore`` composes a generator function that produces each
chunk deterministically on demand, so a "13 B-point" store occupies O(chunk)
memory.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

import numpy as np


class EmbeddingStore:
    """Abstract chunk-oriented embedding container."""

    @property
    def n(self) -> int:
        """Total number of points."""
        raise NotImplementedError

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        raise NotImplementedError

    def get(self, ids: np.ndarray) -> np.ndarray:
        """Gather embeddings for the given global ids."""
        raise NotImplementedError

    def iter_chunks(self, chunk_size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(ids, embeddings)`` pairs covering the store in order."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, self.n, chunk_size):
            ids = np.arange(start, min(start + chunk_size, self.n), dtype=np.int64)
            yield ids, self.get(ids)


class InMemoryEmbeddingStore(EmbeddingStore):
    """Store backed by a dense in-memory array."""

    def __init__(self, embeddings: np.ndarray) -> None:
        arr = np.asarray(embeddings, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape {arr.shape}")
        self._arr = arr

    @property
    def n(self) -> int:
        return self._arr.shape[0]

    @property
    def dim(self) -> int:
        return self._arr.shape[1]

    def get(self, ids: np.ndarray) -> np.ndarray:
        return self._arr[np.asarray(ids, dtype=np.int64)]


class ChunkedEmbeddingStore(EmbeddingStore):
    """Store whose chunks are synthesized on demand by a pure function.

    Parameters
    ----------
    n, dim:
        Logical shape of the (virtual) matrix.
    generate:
        ``generate(ids) -> (len(ids), dim)`` array.  Must be deterministic in
        ``ids`` — the same ids always produce the same rows — so repeated
        passes over the data (multi-round algorithms!) see a consistent
        dataset.
    """

    def __init__(
        self,
        n: int,
        dim: int,
        generate: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        if n < 0 or dim < 1:
            raise ValueError(f"invalid virtual shape ({n}, {dim})")
        self._n = int(n)
        self._dim = int(dim)
        self._generate = generate

    @property
    def n(self) -> int:
        return self._n

    @property
    def dim(self) -> int:
        return self._dim

    def get(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self._n):
            raise IndexError("id out of range for virtual store")
        out = self._generate(ids)
        out = np.asarray(out, dtype=np.float64)
        if out.shape != (ids.size, self._dim):
            raise ValueError(
                f"generator returned shape {out.shape}, "
                f"expected {(ids.size, self._dim)}"
            )
        return out
