"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``select``
    Run the full pipeline on embeddings (+ optional utilities) from ``.npy``
    files, or on a named synthetic preset, and write the selected ids (and
    optionally a JSON report).  ``--explain`` prints the physical dataflow
    plans (with the cost model's predicted wall time per stage) and exits
    without executing anything.
``plan``
    Render those physical plans directly — the ``--explain`` view as its
    own command.
``score``
    Evaluate the pairwise submodular objective of a given subset.
``info``
    Print dataset / graph statistics.
``watch``
    Windowed streaming drive: evolve the dataset through a synthetic
    delta stream and re-select per event-time window on one warm
    context, printing each window's reuse accounting.

``select --incremental`` drives the delta runtime instead of the batch
selector: ``--dataset-version N`` advances the base dataset by ``N``
synthetic delta steps, and with ``--checkpoint-dir`` a re-run over a
later version re-executes only the shards the deltas touched.

Examples
--------
::

    python -m repro select --preset cifar100_tiny --k 200 --out ids.npy
    python -m repro select --embeddings x.npy --utilities u.npy --k 100 \
        --bounding approximate --sampling-fraction 0.3 --machines 8 \
        --rounds 8 --adaptive --report report.json --out ids.npy
    python -m repro select --preset cifar100_tiny --k 200 \
        --engine dataflow --executor multiprocess --num-shards 16
    python -m repro select --preset cifar100_tiny --k 200 \
        --engine dataflow --stream-source --no-optimize
    python -m repro select --preset cifar100_tiny --k 200 \
        --engine dataflow --executor remote \
        --workers 10.0.0.1:7077,10.0.0.2:7077 --checkpoint-dir ckpt/
    python -m repro select --preset cifar100_tiny --k 200 \
        --engine dataflow --engine-options options.json
    python -m repro select --preset cifar100_tiny --k 200 \
        --engine dataflow --checkpoint-dir ckpt/ --checkpoint-gc
    python -m repro select --preset cifar100_tiny --k 200 --incremental \
        --dataset-version 1 --checkpoint-dir ckpt/
    python -m repro watch --preset cifar100_tiny --k 200 --steps 4 \
        --window 2.0 --checkpoint-dir ckpt/
    python -m repro score --preset cifar100_tiny --subset ids.npy

Engine flags are one shared block (:func:`repro.dataflow.options.
add_engine_arguments`); resolution order is ``defaults < REPRO_ENGINE_*
environment < --engine-options JSON file < explicit flags``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from repro.core.objective import PairwiseObjective
from repro.core.pipeline import DistributedSelector, SelectorConfig
from repro.core.problem import SubsetProblem
from repro.dataflow.options import EngineOptions, add_engine_arguments
from repro.data.classifier import margin_utilities
from repro.data.registry import load_dataset
from repro.graph.symmetrize import build_knn_graph


def _build_problem(args: argparse.Namespace) -> tuple:
    """Resolve (problem, embeddings) from --preset or --embeddings."""
    if args.preset:
        ds = load_dataset(args.preset, n_points=args.n_points, seed=args.seed)
        utilities, graph, embeddings = ds.utilities, ds.graph, ds.embeddings
    elif args.embeddings:
        embeddings = np.load(args.embeddings)
        graph, _, _ = build_knn_graph(
            embeddings, args.knn_k, method=args.knn_method, seed=args.seed
        )
        if args.utilities:
            utilities = np.load(args.utilities)
        elif args.labels:
            utilities = margin_utilities(
                embeddings, np.load(args.labels), seed=args.seed
            )
        else:
            utilities = np.ones(embeddings.shape[0])
    else:
        raise SystemExit("one of --preset or --embeddings is required")
    problem = SubsetProblem.with_alpha(utilities, graph, args.alpha)
    return problem, embeddings


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--preset", help="named synthetic dataset preset")
    parser.add_argument("--n-points", type=int, default=None,
                        help="override preset size")
    parser.add_argument("--embeddings", help=".npy file of embeddings")
    parser.add_argument("--utilities", help=".npy file of per-point utilities")
    parser.add_argument("--labels", help=".npy labels (margin utilities)")
    parser.add_argument("--knn-k", type=int, default=10)
    parser.add_argument("--knn-method", choices=("exact", "ann"), default="exact")
    parser.add_argument("--alpha", type=float, default=0.9,
                        help="utility weight (beta = 1 - alpha)")
    parser.add_argument("--seed", type=int, default=0)


def _print_plans(problem, embeddings, args: argparse.Namespace) -> int:
    """Render the dataflow plans a run would execute — no stage runs.

    Builds the kNN-construction and bounding-round plans on streaming
    sources (never consumed) and prints :meth:`PCollection.explain` with
    the cost model's predicted wall time per stage.  With
    ``--adaptive-plan`` the predictions come from the planner's
    calibrated constants (persisted next to ``--checkpoint-dir``).
    """
    from repro.dataflow import DataflowContext
    from repro.dataflow.library import BoundingFilter, ShardedKnn
    from repro.graph.knn import l2_normalize

    options = EngineOptions.from_namespace(args)
    n = problem.n
    with DataflowContext(options) as ctx:
        pipeline = ctx.pipeline(plan_records=n)
        try:
            x = l2_normalize(embeddings)
            n_clusters = max(1, min(n, int(np.sqrt(n))))
            # The plan's shape (and cost) does not depend on centroid
            # values, so the k-means fit is skipped here.
            centroids = np.ascontiguousarray(x[:n_clusters])
            points = pipeline.create(range(n), name="knn/source", stream=True)
            knn = points.apply(
                ShardedKnn(x, centroids, k=args.knn_k, nprobe=1)
            )
            print("kNN build plan:")
            print(knn.explain(costs=True))

            g = problem.graph
            neighbors = pipeline.create_keyed(
                (
                    (v, list(zip(g.indices[g.indptr[v]:g.indptr[v + 1]].tolist(),
                                 g.weights[g.indptr[v]:g.indptr[v + 1]].tolist())))
                    for v in range(g.n)
                ),
                name="source/neighbors", stream=True,
            )
            utilities = pipeline.create_keyed(
                ((v, float(problem.utilities[v])) for v in range(problem.n)),
                name="source/utilities", stream=True,
            )
            solution = pipeline.create_keyed(
                iter(()), name="source/solution", stream=True
            )
            remaining = pipeline.create_keyed(
                ((v, True) for v in range(problem.n)),
                name="source/remaining", stream=True,
            )
            bounds = remaining.apply(
                BoundingFilter(
                    neighbors, utilities, solution,
                    ratio=problem.beta_over_alpha,
                )
            )
            print()
            print("bounding round plan:")
            print(bounds.explain(costs=True))
        finally:
            pipeline.close()
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    problem, embeddings = _build_problem(args)
    return _print_plans(problem, embeddings, args)


def _print_incremental(result, prefix: str = "") -> None:
    print(f"{prefix}selected {len(result)} points, "
          f"objective {result.objective:.6f} (version {result.version})")
    print(f"{prefix}reuse: {result.reused_shards} shards reused, "
          f"{result.invalidated_shards} invalidated, "
          f"{result.checkpoint_hits} checkpoint hits, "
          f"{result.executed_stages} stages executed")


def _run_incremental(problem, k: int, args: argparse.Namespace) -> int:
    """``select --incremental``: one delta-aware drive (always dataflow)."""
    from repro.dataflow.options import DataflowContext
    from repro.incremental import (
        DatasetVersion,
        IncrementalDriver,
        synthetic_deltas,
    )

    options = EngineOptions.from_namespace(args)
    version = DatasetVersion.initial(problem.utilities)
    log = None
    if args.dataset_version > 0:
        log = synthetic_deltas(
            version,
            seed=args.seed,
            steps=args.dataset_version,
            frac=args.delta_frac,
        )
    with DataflowContext(options) as ctx:
        driver = IncrementalDriver(
            problem, k, context=ctx, data_shards=args.data_shards
        )
        if args.explain:
            target = version.apply_all(log) if log is not None else version
            print(driver.explain(target))
            return 0
        # Attribute only the deltas beyond the checkpoint dir's last
        # drive (synthetic step i carries timestamp i).
        previous = driver.last_version()
        deltas = None
        if log is not None:
            version = version.apply_all(log)
            deltas = (
                log.between(float(previous), float(args.dataset_version))
                if previous is not None
                else list(log)
            )
        result = driver.drive(version, deltas=deltas)
    _print_incremental(result)
    if result.delta_records:
        print(f"deltas since last drive: {result.delta_records} records")
    if args.out:
        np.save(args.out, result.selected)
    else:
        print(" ".join(map(str, result.selected[:20].tolist()))
              + (" ..." if len(result) > 20 else ""))
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Windowed streaming drive over a synthetic delta stream."""
    from repro.dataflow.options import DataflowContext
    from repro.incremental import (
        DatasetVersion,
        IncrementalDriver,
        WindowSpec,
        synthetic_deltas,
    )

    problem, _ = _build_problem(args)
    k = args.k if args.k is not None else max(1, int(problem.n * 0.1))
    options = EngineOptions.from_namespace(args)
    version = DatasetVersion.initial(problem.utilities)
    log = synthetic_deltas(
        version, seed=args.seed, steps=args.steps, frac=args.delta_frac
    )
    spec = WindowSpec(args.window, slide=args.slide)
    with DataflowContext(options) as ctx:
        driver = IncrementalDriver(
            problem, k, context=ctx, data_shards=args.data_shards
        )
        results = driver.drive_windows(
            version, log, spec, max_windows=args.max_windows
        )
    for w in results:
        print(f"window {w.index} [{w.start:g}, {w.end:g}): "
              f"{w.delta_records} delta records")
        _print_incremental(w.result, prefix="  ")
    if results and args.out:
        np.save(args.out, results[-1].result.selected)
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    problem, embeddings = _build_problem(args)
    k = args.k if args.k is not None else max(1, int(problem.n * args.fraction))
    if args.incremental:
        return _run_incremental(problem, k, args)
    if args.explain:
        return _print_plans(problem, embeddings, args)
    config = SelectorConfig(
        bounding=None if args.bounding == "none" else args.bounding,
        sampler=args.sampler,
        sampling_fraction=args.sampling_fraction,
        machines=args.machines,
        rounds=args.rounds,
        adaptive=args.adaptive,
        gamma=args.gamma,
        engine=args.engine,
        options=EngineOptions.from_namespace(args),
        checkpoint_gc=args.checkpoint_gc,
    )
    report = DistributedSelector(problem, config).select(k, seed=args.seed)
    if args.out:
        np.save(args.out, report.selected)
    if args.report:
        from repro.io import save_report

        save_report(report, args.report)
    print(f"selected {len(report)} of {problem.n} points, "
          f"objective {report.objective:.6f}")
    if report.bounding is not None:
        b = report.bounding
        print(f"bounding: +{b.n_included} / -{b.n_excluded} "
              f"({b.grow_rounds} grow, {b.shrink_rounds} shrink)")
    for label in ("bounding_metrics", "greedy_metrics"):
        metrics = report.extra.get(label)
        if metrics is not None:
            stage = label.split("_")[0]
            print(f"{stage} engine: peak shard {metrics.peak_shard_records} "
                  f"records, shuffled {metrics.shuffled_records} "
                  f"(of {metrics.pre_shuffle_records} pre-shuffle), "
                  f"{metrics.executed_stages} stages "
                  f"({metrics.fused_stages} fused, "
                  f"{metrics.lifted_combiners} lifted combiners, "
                  f"{metrics.elided_shuffles} elided shuffles)")
            if metrics.checkpoint_hits or metrics.checkpoint_stores:
                print(f"{stage} checkpoints: {metrics.checkpoint_hits} "
                      f"resumed, {metrics.checkpoint_stores} stored")
    if "checkpoint_gc_removed" in report.extra:
        print(f"checkpoint gc: removed {report.extra['checkpoint_gc_removed']} "
              "stale entries")
    stats = report.extra.get("executor_stats")
    if stats:
        print("executor: " + ", ".join(
            f"{key}={value}" for key, value in sorted(stats.items())
        ))
    if not args.out:
        print(" ".join(map(str, report.selected[:20].tolist()))
              + (" ..." if len(report) > 20 else ""))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived selector service (see :mod:`repro.service`)."""
    from repro.service.server import ServiceConfig, serve

    config = ServiceConfig(
        state_dir=args.state_dir,
        max_queued=args.max_queued,
        max_running=args.max_running,
        max_num_shards=args.max_num_shards,
        max_records=args.max_records,
        default_timeout_s=args.default_timeout,
        result_max_age_s=args.result_max_age,
        result_max_bytes=args.result_max_bytes,
    )
    return serve(config, host=args.host, port=args.port)


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a selection job to a running service (and optionally wait)."""
    from repro.service.client import ServiceClient, ServiceError

    spec = {
        "dataset": {
            "preset": args.preset,
            "n_points": args.n_points,
            "seed": args.seed,
            "alpha": args.alpha,
            "version": args.dataset_version,
        },
        "selector": {
            "incremental": args.incremental,
            "k": args.k,
            "bounding": None if args.bounding == "none" else args.bounding,
            "sampler": args.sampler,
            "sampling_fraction": args.sampling_fraction,
            "machines": args.machines,
            "rounds": args.rounds,
            "adaptive": args.adaptive,
            "gamma": args.gamma,
            "seed": args.seed,
            "engine": args.engine,
        },
        "engine_options": EngineOptions.from_namespace(args).to_dict(),
        "tenant": args.tenant,
        "priority": args.priority,
        "timeout_s": args.timeout,
        "force": args.force,
    }
    client = ServiceClient(args.host, args.port)
    try:
        record = client.submit(spec)
    except ServiceError as exc:
        print(f"rejected ({exc.status}): {exc}", file=sys.stderr)
        return 1
    print(f"job {record['job_id']} {record['state']} "
          f"(digest {record['digest'][:12]})")
    if not args.wait:
        return 0
    record = client.wait(record["job_id"], timeout=args.wait_timeout)
    if record["state"] != "done":
        print(f"job {record['job_id']} {record['state']}: "
              f"{record.get('error') or ''}", file=sys.stderr)
        return 1
    result = client.result(record["job_id"])
    report = result["report"]
    selected = report["selected"]
    if record.get("deduped_from"):
        print(f"deduped from {record['deduped_from']} "
              "(no re-execution)")
    incremental = report.get("incremental")
    if incremental:
        print(f"incremental: {incremental['reused_shards']} shards reused, "
              f"{incremental['invalidated_shards']} invalidated, "
              f"{incremental['delta_records']} delta records, "
              f"{incremental['executed_stages']} stages executed")
    if args.out:
        np.save(args.out, np.asarray(selected, dtype=np.int64))
    print(f"selected {len(selected)} points, "
          f"objective {report['objective']:.6f}")
    if not args.out:
        print(" ".join(map(str, selected[:20]))
              + (" ..." if len(selected) > 20 else ""))
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    """List a running service's jobs (``--metrics`` adds the counters,
    ``--gc`` evicts stored results)."""
    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.gc:
        removed = client.gc_results(
            max_age_s=args.gc_max_age, max_bytes=args.gc_max_bytes
        )
        print(f"result gc: removed {removed} stored results")
        return 0
    for record in client.jobs():
        dedup = " (dedup)" if record.get("deduped_from") else ""
        error = f" error={record['error']}" if record.get("error") else ""
        print(f"{record['job_id']}  {record['state']:<9}  "
              f"tenant={record['spec']['tenant']}  "
              f"prio={record['spec']['priority']}  "
              f"digest={record['digest'][:12]}{dedup}{error}")
    if args.metrics:
        metrics = client.metrics()
        print(f"queue_depth={metrics['queue_depth']} "
              f"running={metrics['running']}")
        print("counters: " + ", ".join(
            f"{key}={value}"
            for key, value in sorted(metrics["counters"].items())
        ))
        for key, ctx in metrics["warm_contexts"].items():
            stats = ", ".join(
                f"{k}={v}" for k, v in sorted(ctx["executor_stats"].items())
            )
            executor = ctx["options"].get("executor")
            print(f"warm[{executor}]: {stats}")
    return 0


def cmd_score(args: argparse.Namespace) -> int:
    problem, _ = _build_problem(args)
    subset = np.load(args.subset)
    value = PairwiseObjective(problem).value(subset)
    print(f"f(S) = {value:.6f} (|S| = {subset.size}, n = {problem.n})")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    problem, embeddings = _build_problem(args)
    g = problem.graph
    obj = PairwiseObjective(problem)
    print(f"points: {problem.n}")
    print(f"embedding dim: {embeddings.shape[1]}")
    print(f"edges (undirected): {g.num_edges}")
    print(f"degree: min {g.min_degree()}, avg {g.average_degree():.2f}")
    print(f"utility: min {problem.utilities.min():.4f}, "
          f"mean {problem.utilities.mean():.4f}, "
          f"max {problem.utilities.max():.4f}")
    print(f"alpha/beta: {problem.alpha}/{problem.beta}")
    print(f"monotone certificate: {obj.is_monotone_certificate()}")
    print(f"monotonicity offset delta: {obj.monotonicity_offset():.4f}")
    return 0


def _add_incremental(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset-version", type=int, default=0,
                        help="advance the base dataset by this many "
                             "synthetic delta steps (deterministic in "
                             "--seed)")
    parser.add_argument("--data-shards", type=int, default=8,
                        help="contiguous id ranges delta invalidation "
                             "works at (fixed per checkpoint dir)")
    parser.add_argument("--delta-frac", type=float, default=0.1,
                        help="fraction of alive points each synthetic "
                             "delta step touches")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="distributed larger-than-memory subset selection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_select = sub.add_parser("select", help="run the selection pipeline")
    _add_common(p_select)
    p_select.add_argument("--k", type=int, default=None, help="subset size")
    p_select.add_argument("--fraction", type=float, default=0.1,
                          help="subset fraction if --k is absent")
    p_select.add_argument("--bounding",
                          choices=("none", "exact", "approximate"),
                          default="none")
    p_select.add_argument("--sampler", choices=("uniform", "weighted"),
                          default="uniform")
    p_select.add_argument("--sampling-fraction", type=float, default=1.0)
    p_select.add_argument("--machines", type=int, default=1)
    p_select.add_argument("--rounds", type=int, default=1)
    p_select.add_argument("--adaptive", action="store_true")
    p_select.add_argument("--gamma", type=float, default=0.75)
    p_select.add_argument("--engine", choices=("memory", "dataflow"),
                          default="memory",
                          help="run stages in-memory or on the dataflow engine")
    # One shared flag block for every engine knob (--executor,
    # --num-shards, --spill-to-disk, --no-optimize, --stream-source,
    # --workers, --checkpoint-dir, --engine-options, ...), resolved by
    # EngineOptions.from_namespace with env/JSON-file layering.
    add_engine_arguments(p_select)
    p_select.add_argument("--checkpoint-gc", dest="checkpoint_gc",
                          action="store_true",
                          help="after a successful run, delete checkpoint "
                               "entries this run's plans did not touch "
                               "(requires --checkpoint-dir)")
    p_select.add_argument("--out", help="write selected ids to .npy")
    p_select.add_argument("--report", help="write JSON report")
    p_select.add_argument("--explain", action="store_true",
                          help="print the physical dataflow plans with "
                               "predicted per-stage costs and exit without "
                               "executing")
    p_select.add_argument("--incremental", action="store_true",
                          help="drive the delta-aware incremental runtime "
                               "(dataflow engine; with --checkpoint-dir, "
                               "re-runs over a later --dataset-version "
                               "re-execute only the touched shards)")
    _add_incremental(p_select)
    p_select.set_defaults(func=cmd_select)

    p_plan = sub.add_parser(
        "plan", help="render the physical dataflow plans (no execution)"
    )
    _add_common(p_plan)
    add_engine_arguments(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_serve = sub.add_parser(
        "serve", help="run the long-lived selector service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7171,
                         help="listen port (0 = ephemeral, printed on the "
                              "REPRO_SERVICE_READY line)")
    p_serve.add_argument("--state-dir", required=True,
                         help="persistent job store directory")
    p_serve.add_argument("--max-queued", type=int, default=64)
    p_serve.add_argument("--max-running", type=int, default=4)
    p_serve.add_argument("--max-num-shards", type=int, default=64)
    p_serve.add_argument("--max-records", type=int, default=1_000_000)
    p_serve.add_argument("--default-timeout", type=float, default=None,
                         metavar="SECONDS")
    p_serve.add_argument("--result-max-age", type=float, default=None,
                         metavar="SECONDS",
                         help="evict stored results older than this "
                              "(opportunistic, after every completed job)")
    p_serve.add_argument("--result-max-bytes", type=int, default=None,
                         help="evict oldest stored results while results/ "
                              "exceeds this size")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a selection job to a running service"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7171)
    p_submit.add_argument("--preset", required=True,
                          help="named synthetic dataset preset")
    p_submit.add_argument("--n-points", type=int, default=None)
    p_submit.add_argument("--alpha", type=float, default=0.9)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--k", type=int, required=True)
    p_submit.add_argument("--bounding",
                          choices=("none", "exact", "approximate"),
                          default="none")
    p_submit.add_argument("--sampler", choices=("uniform", "weighted"),
                          default="uniform")
    p_submit.add_argument("--sampling-fraction", type=float, default=1.0)
    p_submit.add_argument("--machines", type=int, default=1)
    p_submit.add_argument("--rounds", type=int, default=1)
    p_submit.add_argument("--adaptive", action="store_true")
    p_submit.add_argument("--gamma", type=float, default=0.75)
    p_submit.add_argument("--engine", choices=("memory", "dataflow"),
                          default="dataflow")
    p_submit.add_argument("--incremental", action="store_true",
                          help="run the job through the delta-aware "
                               "incremental runtime (dataflow engine); "
                               "resubmitting with a later --dataset-version "
                               "recomputes only the delta cone")
    p_submit.add_argument("--dataset-version", type=int, default=0,
                          help="dataset version: base advanced by this many "
                               "synthetic delta steps")
    add_engine_arguments(p_submit)
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument("--priority", type=int, default=0)
    p_submit.add_argument("--timeout", type=float, default=None,
                          help="per-job timeout in seconds")
    p_submit.add_argument("--force", action="store_true",
                          help="re-execute even when a completed digest "
                               "match exists in the result store")
    p_submit.add_argument("--wait", action="store_true",
                          help="poll until the job finishes and print the "
                               "result")
    p_submit.add_argument("--wait-timeout", type=float, default=300.0)
    p_submit.add_argument("--out", help="write selected ids to .npy "
                                        "(with --wait)")
    p_submit.set_defaults(func=cmd_submit)

    p_jobs = sub.add_parser(
        "jobs", help="list a running service's jobs"
    )
    p_jobs.add_argument("--host", default="127.0.0.1")
    p_jobs.add_argument("--port", type=int, default=7171)
    p_jobs.add_argument("--metrics", action="store_true",
                        help="also print queue depth, counters, and warm-"
                             "context executor stats")
    p_jobs.add_argument("--gc", action="store_true",
                        help="evict stored results by age/size instead of "
                             "listing jobs")
    p_jobs.add_argument("--gc-max-age", type=float, default=None,
                        metavar="SECONDS",
                        help="with --gc: evict results older than this "
                             "(default: the service's configured bound)")
    p_jobs.add_argument("--gc-max-bytes", type=int, default=None,
                        help="with --gc: evict oldest results while the "
                             "store exceeds this size")
    p_jobs.set_defaults(func=cmd_jobs)

    p_watch = sub.add_parser(
        "watch",
        help="windowed streaming drive over a synthetic delta stream",
    )
    _add_common(p_watch)
    p_watch.add_argument("--k", type=int, default=None, help="subset size")
    p_watch.add_argument("--steps", type=int, default=4,
                         help="synthetic delta steps (one per event-time "
                              "unit)")
    p_watch.add_argument("--window", type=float, default=2.0,
                         help="event-time window size")
    p_watch.add_argument("--slide", type=float, default=None,
                         help="slide interval (default: tumbling)")
    p_watch.add_argument("--max-windows", type=int, default=None)
    p_watch.add_argument("--out", help="write the last window's selected "
                                       "ids to .npy")
    add_engine_arguments(p_watch)
    p_watch.add_argument(
        "--data-shards", type=int, default=8,
        help="contiguous id ranges delta invalidation works at")
    p_watch.add_argument("--delta-frac", type=float, default=0.1,
                         help="fraction of alive points each delta step "
                              "touches")
    p_watch.set_defaults(func=cmd_watch)

    p_score = sub.add_parser("score", help="score a subset")
    _add_common(p_score)
    p_score.add_argument("--subset", required=True, help=".npy of ids")
    p_score.set_defaults(func=cmd_score)

    p_info = sub.add_parser("info", help="dataset statistics")
    _add_common(p_info)
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
