"""repro — distributed larger-than-memory subset selection.

Reproduction of Böther et al., *On Distributed Larger-Than-Memory Subset
Selection With Pairwise Submodular Functions* (MLSys 2025).

Quickstart
----------
>>> from repro import load_dataset, SubsetProblem, DistributedSelector, SelectorConfig
>>> ds = load_dataset("cifar100_tiny", seed=0)
>>> problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, alpha=0.9)
>>> selector = DistributedSelector(
...     problem,
...     SelectorConfig(bounding="approximate", sampling_fraction=0.3,
...                    machines=4, rounds=8, adaptive=True),
... )
>>> report = selector.select(k=ds.n // 10, seed=0)
>>> len(report) == ds.n // 10
True
"""

from repro.core import (
    BoundingResult,
    DistributedResult,
    DistributedSelector,
    LinearDeltaSchedule,
    PairwiseObjective,
    SelectionReport,
    SelectionResult,
    SelectorConfig,
    SubsetProblem,
    bound,
    centralized_reference,
    distributed_greedy,
    greedy_heap,
    greedy_naive,
    normalize_scores,
    worst_case_partitioner,
)
from repro.data import PerturbedDataset, SelectionDataset, load_dataset
from repro.graph import NeighborGraph, build_knn_graph

__version__ = "1.0.0"

__all__ = [
    "SubsetProblem",
    "PairwiseObjective",
    "SelectionResult",
    "greedy_naive",
    "greedy_heap",
    "bound",
    "BoundingResult",
    "distributed_greedy",
    "DistributedResult",
    "LinearDeltaSchedule",
    "worst_case_partitioner",
    "DistributedSelector",
    "SelectorConfig",
    "SelectionReport",
    "centralized_reference",
    "normalize_scores",
    "NeighborGraph",
    "build_knn_graph",
    "load_dataset",
    "SelectionDataset",
    "PerturbedDataset",
    "__version__",
]
