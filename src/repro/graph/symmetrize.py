"""Symmetrization of directed kNN tables into NeighborGraph (Sec. 6).

The kNN relation is not symmetric; the paper's distributed bounding/scoring
requires a symmetric graph, so edges are mirrored: "datapoints have a varying
amount of, but at least 10 neighbors", yielding an average degree of ~15/16
on CIFAR/ImageNet.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graph.csr import NeighborGraph
from repro.graph.knn import exact_knn
from repro.utils.rng import SeedLike


def symmetrize_knn(
    neighbors: np.ndarray, similarities: np.ndarray, *, n: int = 0
) -> NeighborGraph:
    """Turn a directed ``(n, k)`` kNN table into a symmetric NeighborGraph.

    Each directed edge is mirrored; duplicate pairs keep the maximum
    similarity.  Every vertex keeps at least its original ``k`` neighbors.
    """
    neighbors = np.asarray(neighbors, dtype=np.int64)
    similarities = np.asarray(similarities, dtype=np.float64)
    if neighbors.shape != similarities.shape or neighbors.ndim != 2:
        raise ValueError("neighbors and similarities must be equal-shape 2-D")
    rows, k = neighbors.shape
    n = max(n, rows)
    sources = np.repeat(np.arange(rows, dtype=np.int64), k)
    targets = neighbors.ravel()
    weights = similarities.ravel()
    keep = sources != targets  # defensive: drop accidental self matches
    return NeighborGraph.from_edges(
        n, sources[keep], targets[keep], weights[keep], symmetrize=True
    )


def build_knn_graph(
    embeddings: np.ndarray,
    k: int = 10,
    *,
    method: str = "exact",
    seed: SeedLike = 0,
    block_size: int = 1024,
) -> Tuple[NeighborGraph, np.ndarray, np.ndarray]:
    """End-to-end graph construction: kNN search + symmetrization.

    Parameters
    ----------
    method:
        ``"exact"`` (blocked brute force) or ``"ann"`` (IVF index, the
        ScaNN stand-in).

    Returns
    -------
    (graph, neighbors, similarities):
        The symmetric graph plus the raw directed kNN table.
    """
    if method == "exact":
        neighbors, sims = exact_knn(embeddings, k, block_size=block_size)
    elif method == "ann":
        from repro.graph.ann import approximate_knn

        neighbors, sims = approximate_knn(embeddings, k, seed=seed)
    else:
        raise ValueError(f"unknown method {method!r}; use 'exact' or 'ann'")
    graph = symmetrize_knn(neighbors, sims)
    return graph, neighbors, sims
