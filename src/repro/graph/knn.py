"""Exact k-nearest-neighbor search over embeddings (cosine similarity).

The paper builds a 10-NN graph with ScaNN (Guo et al., 2020); for the
reproduction we provide exact blocked brute force here and an approximate
IVF index in :mod:`repro.graph.ann`.  The blocked implementation bounds peak
memory to ``block_size × n`` similarity entries, mirroring the "cannot
materialize the full similarity matrix" constraint of Sec. 6.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def l2_normalize(embeddings: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Row-normalize embeddings so dot products equal cosine similarity."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError(f"embeddings must be 2-D, got shape {embeddings.shape}")
    norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
    return embeddings / np.maximum(norms, eps)


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense cosine similarity between row sets ``a`` and ``b``."""
    return l2_normalize(a) @ l2_normalize(b).T


def exact_knn(
    embeddings: np.ndarray,
    k: int,
    *,
    block_size: int = 1024,
    clip_negative: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact cosine kNN, excluding self-matches.

    Parameters
    ----------
    embeddings:
        ``(n, d)`` array.
    k:
        Neighbors per point (the paper uses 10).
    block_size:
        Query rows processed per block; peak extra memory is
        ``block_size * n`` float64.
    clip_negative:
        Clamp similarities at zero.  The submodular objective requires
        ``s >= 0`` (Sec. 3), and cosine similarities of dissimilar points can
        be negative.

    Returns
    -------
    (neighbors, similarities):
        Both ``(n, k)``; neighbors sorted by decreasing similarity.
    """
    x = l2_normalize(embeddings)
    n = x.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k >= n:
        raise ValueError(f"k={k} must be < number of points n={n}")
    neighbors = np.empty((n, k), dtype=np.int64)
    sims = np.empty((n, k), dtype=np.float64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        block = x[start:stop] @ x.T
        # Exclude self-similarity.
        rows = np.arange(stop - start)
        block[rows, np.arange(start, stop)] = -np.inf
        # Top-k per row via argpartition, then sort the k winners.
        part = np.argpartition(block, -k, axis=1)[:, -k:]
        part_sims = np.take_along_axis(block, part, axis=1)
        order = np.argsort(-part_sims, axis=1)
        neighbors[start:stop] = np.take_along_axis(part, order, axis=1)
        sims[start:stop] = np.take_along_axis(part_sims, order, axis=1)
    if clip_negative:
        np.maximum(sims, 0.0, out=sims)
    return neighbors, sims
