"""Nearest-neighbor graph substrate.

The pairwise submodular objective is defined over a sparse similarity graph
``E`` (Sec. 3).  The paper builds a 10-nearest-neighbor graph in embedding
space with ScaNN and symmetrizes it (Sec. 6).  This package provides:

- :class:`~repro.graph.csr.NeighborGraph` — an immutable CSR adjacency
  structure with subgraph restriction (needed by partition-based greedy),
- exact blocked brute-force kNN (:mod:`repro.graph.knn`),
- an IVF-style clustered approximate index (:mod:`repro.graph.ann`) standing
  in for ScaNN,
- symmetrization utilities (:mod:`repro.graph.symmetrize`).
"""

from repro.graph.ann import IVFIndex, approximate_knn
from repro.graph.csr import NeighborGraph
from repro.graph.knn import cosine_similarity_matrix, exact_knn
from repro.graph.symmetrize import build_knn_graph, symmetrize_knn

__all__ = [
    "NeighborGraph",
    "exact_knn",
    "cosine_similarity_matrix",
    "IVFIndex",
    "approximate_knn",
    "symmetrize_knn",
    "build_knn_graph",
]
