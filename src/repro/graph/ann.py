"""Approximate nearest-neighbor search (ScaNN substitute).

The paper uses ScaNN (Guo et al., 2020) for billion-scale kNN graph
construction.  We implement the same *structure* ScaNN's first stage uses —
an inverted-file (IVF) index: k-means-style partitioning of the embedding
space, with queries probing only the ``nprobe`` closest partitions.  This
keeps graph construction sub-quadratic while achieving high recall on the
clustered embeddings our synthetic datasets produce.

Only the resulting kNN graph enters the submodular objective, so any
high-recall ANN yields statistically equivalent selection experiments
(see DESIGN.md, substitutions).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graph.knn import l2_normalize
from repro.utils.rng import SeedLike, as_generator


class IVFIndex:
    """Inverted-file ANN index over L2-normalized embeddings.

    Parameters
    ----------
    n_clusters:
        Number of coarse partitions (``sqrt(n)`` is a good default).
    n_iter:
        Lloyd iterations for the coarse quantizer.
    seed:
        Seed for centroid initialization.
    """

    def __init__(
        self,
        n_clusters: int = 64,
        *,
        n_iter: int = 10,
        seed: SeedLike = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.n_iter = int(n_iter)
        self._rng = as_generator(seed)
        self.centroids: Optional[np.ndarray] = None
        self._assignments: Optional[np.ndarray] = None
        self._x: Optional[np.ndarray] = None
        self._lists: Optional[list] = None

    def fit(self, embeddings: np.ndarray) -> "IVFIndex":
        """Cluster the corpus and build inverted lists."""
        x = l2_normalize(embeddings)
        n = x.shape[0]
        n_clusters = min(self.n_clusters, n)
        init = self._rng.choice(n, size=n_clusters, replace=False)
        centroids = x[init].copy()
        assignments = np.zeros(n, dtype=np.int64)
        for _ in range(self.n_iter):
            # Cosine distance == argmax dot product on normalized vectors.
            assignments = np.argmax(x @ centroids.T, axis=1)
            for c in range(n_clusters):
                members = x[assignments == c]
                if members.size:
                    centroid = members.mean(axis=0)
                    norm = np.linalg.norm(centroid)
                    if norm > 0:
                        centroids[c] = centroid / norm
        self.centroids = centroids
        self._assignments = assignments
        self._x = x
        self._lists = [
            np.flatnonzero(assignments == c) for c in range(n_clusters)
        ]
        return self

    def search(
        self, queries: np.ndarray, k: int, *, nprobe: int = 4
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return top-``k`` corpus neighbors for each query row.

        ``nprobe`` partitions closest to each query are scanned.  Self-matches
        are *not* excluded here (callers that index the corpus itself should
        ask for ``k + 1`` or use :func:`approximate_knn`).
        """
        if self._x is None or self.centroids is None or self._lists is None:
            raise RuntimeError("index not fitted; call fit() first")
        q = l2_normalize(queries)
        nprobe = min(max(1, nprobe), self.centroids.shape[0])
        probe = np.argsort(-(q @ self.centroids.T), axis=1)[:, :nprobe]
        n_q = q.shape[0]
        out_ids = np.full((n_q, k), -1, dtype=np.int64)
        out_sims = np.full((n_q, k), -np.inf, dtype=np.float64)
        for i in range(n_q):
            cand = np.concatenate([self._lists[c] for c in probe[i]])
            if cand.size == 0:
                continue
            sims = self._x[cand] @ q[i]
            take = min(k, cand.size)
            part = np.argpartition(sims, -take)[-take:]
            order = np.argsort(-sims[part])
            chosen = part[order]
            out_ids[i, :take] = cand[chosen]
            out_sims[i, :take] = sims[chosen]
        return out_ids, out_sims


def approximate_knn(
    embeddings: np.ndarray,
    k: int,
    *,
    n_clusters: Optional[int] = None,
    nprobe: int = 4,
    seed: SeedLike = 0,
    clip_negative: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate cosine kNN of a corpus against itself (self excluded).

    Mirrors :func:`repro.graph.knn.exact_knn`'s interface.  Rows whose probed
    partitions contain fewer than ``k`` other points are padded by falling
    back to their own partition's members and, as a last resort, random
    distinct ids, so the output is always a valid (n, k) neighbor table.
    """
    x = np.asarray(embeddings, dtype=np.float64)
    n = x.shape[0]
    if k >= n:
        raise ValueError(f"k={k} must be < number of points n={n}")
    if n_clusters is None:
        n_clusters = max(1, int(np.sqrt(n)))
    rng = as_generator(seed)
    index = IVFIndex(n_clusters, seed=rng).fit(x)
    ids, sims = index.search(x, k + 1, nprobe=nprobe)
    neighbors = np.empty((n, k), dtype=np.int64)
    out_sims = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        row_ids = ids[i]
        row_sims = sims[i]
        keep = (row_ids != i) & (row_ids >= 0)
        row_ids = row_ids[keep][:k]
        row_sims = row_sims[keep][:k]
        if row_ids.size < k:  # pad with random distinct points (recall miss)
            missing = k - row_ids.size
            pool = np.setdiff1d(
                rng.choice(n, size=min(n, 4 * (missing + 1)), replace=False),
                np.concatenate([row_ids, [i]]),
            )[:missing]
            pad_sims = l2_normalize(x[pool]) @ l2_normalize(x[i : i + 1]).T
            row_ids = np.concatenate([row_ids, pool])
            row_sims = np.concatenate([row_sims, pad_sims.ravel()])
            row_ids = row_ids[:k]
            row_sims = row_sims[:k]
        neighbors[i] = row_ids
        out_sims[i] = row_sims
    if clip_negative:
        np.maximum(out_sims, 0.0, out=out_sims)
    return neighbors, out_sims
