"""Immutable CSR neighbor graph with the operations the selectors need.

Design notes
------------
The graph is *symmetric*: every undirected edge ``{a, b}`` is stored twice,
once in each endpoint's adjacency list.  Scoring therefore halves the summed
pairwise mass (see :mod:`repro.core.objective`), while the greedy update
applies the full penalty exactly once — when the first endpoint is selected
(Alg. 2).

Partition-based distributed greedy (Alg. 6) discards "any neighborhood
relation across partitions"; :meth:`NeighborGraph.subgraph` implements that
restriction and returns a relabeled CSR plus the local→global id map.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


class NeighborGraph:
    """Symmetric sparse similarity graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; row ``v``'s neighbors live in
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64`` array of column indices (neighbor ids).
    weights:
        ``float64`` array of similarities, aligned with ``indices``.
        All similarities must be non-negative — this is what makes the
        pairwise objective submodular (Sec. 3).
    check:
        If true (default), validate CSR structure and symmetry.
    """

    __slots__ = ("indptr", "indices", "weights", "_n")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        check: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.weights = np.ascontiguousarray(weights, dtype=np.float64)
        self._n = int(self.indptr.size - 1)
        if check:
            self._validate()

    # -- construction --------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        *,
        symmetrize: bool = True,
    ) -> "NeighborGraph":
        """Build a graph from an edge list.

        With ``symmetrize=True`` each input edge ``(a, b, w)`` is mirrored to
        ``(b, a, w)``; duplicate directed edges keep the maximum weight.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if not (sources.shape == targets.shape == weights.shape):
            raise ValueError("sources, targets, weights must have equal shapes")
        if sources.size:
            if sources.min() < 0 or targets.min() < 0:
                raise ValueError("edge endpoints must be >= 0")
            if max(sources.max(), targets.max()) >= n:
                raise ValueError("edge endpoint exceeds ground set size")
            if (weights < 0).any():
                raise ValueError("similarities must be non-negative")
        if (sources == targets).any():
            raise ValueError("self-loops are not allowed")
        if symmetrize:
            sources, targets, weights = (
                np.concatenate([sources, targets]),
                np.concatenate([targets, sources]),
                np.concatenate([weights, weights]),
            )
        # Deduplicate directed pairs, keeping max weight.
        if sources.size:
            order = np.lexsort((targets, sources))
            sources, targets, weights = sources[order], targets[order], weights[order]
            key_change = np.empty(sources.size, dtype=bool)
            key_change[0] = True
            key_change[1:] = (sources[1:] != sources[:-1]) | (targets[1:] != targets[:-1])
            group_id = np.cumsum(key_change) - 1
            max_w = np.full(group_id[-1] + 1, -np.inf)
            np.maximum.at(max_w, group_id, weights)
            sources = sources[key_change]
            targets = targets[key_change]
            weights = max_w
        counts = np.bincount(sources, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, targets, weights, check=True)

    @classmethod
    def empty(cls, n: int) -> "NeighborGraph":
        """Graph on ``n`` vertices with no edges (pure-utility objective)."""
        return cls(
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            check=False,
        )

    # -- basic accessors ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_directed_edges(self) -> int:
        """Number of stored (directed) adjacency entries."""
        return int(self.indices.size)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.num_directed_edges // 2

    def degrees(self) -> np.ndarray:
        """Per-vertex neighbor counts."""
        return np.diff(self.indptr)

    def min_degree(self) -> int:
        """Minimum degree ``kg`` (appears in Theorem 4.6's exponent)."""
        if self._n == 0:
            return 0
        return int(self.degrees().min())

    def average_degree(self) -> float:
        """Mean neighbor count (the paper reports ~15/16 after symmetrize)."""
        if self._n == 0:
            return 0.0
        return float(self.num_directed_edges / self._n)

    def neighbors(self, v: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbor_ids, weights)`` views for vertex ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield each undirected edge once as ``(min_id, max_id, weight)``."""
        for v in range(self._n):
            nbrs, ws = self.neighbors(v)
            for nb, w in zip(nbrs.tolist(), ws.tolist()):
                if v < nb:
                    yield v, int(nb), float(w)

    def neighbor_mass(self, mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-vertex sum of weights to neighbors selected by ``mask``.

        ``mask`` is a boolean array over vertices; ``None`` sums over all
        neighbors.  This single primitive implements both ``Umin`` and
        ``Umax`` (Defs. 4.1/4.2): mass over ``V ∪ S'`` and mass over ``S'``.
        Vectorized with ``np.add.reduceat`` so bounding rounds on millions of
        points stay in C.
        """
        if self._n == 0:
            return np.zeros(0, dtype=np.float64)
        if mask is None:
            contrib = self.weights
        else:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self._n,):
                raise ValueError(f"mask must have shape ({self._n},), got {mask.shape}")
            contrib = np.where(mask[self.indices], self.weights, 0.0)
        out = np.zeros(self._n, dtype=np.float64)
        nonempty = self.indptr[:-1] < self.indptr[1:]
        if contrib.size:
            sums = np.add.reduceat(contrib, self.indptr[:-1][nonempty])
            out[nonempty] = sums
        return out

    def max_neighbor_mass(self) -> float:
        """``max_v Σ_j s(v, j)`` — the monotonicity offset's driver (Eq. 2)."""
        mass = self.neighbor_mass()
        return float(mass.max()) if mass.size else 0.0

    # -- interop -----------------------------------------------------------

    def to_scipy_sparse(self):
        """Export as a ``scipy.sparse.csr_matrix`` (symmetric, zero diag)."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.weights, self.indices, self.indptr), shape=(self._n, self._n)
        )

    @classmethod
    def from_scipy_sparse(cls, matrix) -> "NeighborGraph":
        """Build from any scipy sparse matrix (symmetrized, diag dropped)."""
        from scipy.sparse import coo_matrix

        coo = coo_matrix(matrix)
        keep = coo.row != coo.col
        return cls.from_edges(
            coo.shape[0],
            coo.row[keep].astype(np.int64),
            coo.col[keep].astype(np.int64),
            coo.data[keep].astype(np.float64),
            symmetrize=True,
        )

    # -- restriction ----------------------------------------------------

    def subgraph(self, vertices: np.ndarray) -> Tuple["NeighborGraph", np.ndarray]:
        """Restrict to ``vertices``, dropping cross-partition edges.

        Returns ``(graph, local_to_global)`` where the new graph is labeled
        ``0..len(vertices)-1`` in the order given.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self._n):
            raise ValueError("vertices out of range")
        global_to_local = np.full(self._n, -1, dtype=np.int64)
        global_to_local[vertices] = np.arange(vertices.size, dtype=np.int64)
        # Gather each kept vertex's adjacency, keeping only in-partition ends.
        starts = self.indptr[vertices]
        stops = self.indptr[vertices + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total:
            # Build a flat index selecting all adjacency entries of `vertices`.
            flat = np.concatenate(
                [np.arange(lo, hi) for lo, hi in zip(starts, stops)]
            ) if vertices.size else np.empty(0, dtype=np.int64)
            nbr_global = self.indices[flat]
            w = self.weights[flat]
            nbr_local = global_to_local[nbr_global]
            keep = nbr_local >= 0
            row_local = np.repeat(np.arange(vertices.size, dtype=np.int64), lengths)
            row_local = row_local[keep]
            nbr_local = nbr_local[keep]
            w = w[keep]
        else:
            row_local = np.empty(0, dtype=np.int64)
            nbr_local = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.float64)
        counts = np.bincount(row_local, minlength=vertices.size)
        indptr = np.zeros(vertices.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # row_local is already sorted because `flat` walks rows in order.
        sub = NeighborGraph(indptr, nbr_local, w, check=False)
        return sub, vertices.copy()

    # -- validation -------------------------------------------------------

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or self.indptr.size < 1:
            raise ValueError("indptr must be 1-D with length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if (np.diff(self.indptr) < 0).any():
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.weights.size:
            raise ValueError("indices and weights must align")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self._n:
                raise ValueError("neighbor index out of range")
            if not np.isfinite(self.weights).all():
                raise ValueError("similarities contain NaN or infinite values")
            if (self.weights < 0).any():
                raise ValueError("similarities must be non-negative")
            rows = np.repeat(np.arange(self._n), np.diff(self.indptr))
            if (rows == self.indices).any():
                raise ValueError("self-loops are not allowed")
            if not self._is_symmetric():
                raise ValueError("graph must be symmetric (see symmetrize_knn)")

    def _is_symmetric(self) -> bool:
        # Edge-set symmetry via sorted integer codes instead of a Python
        # set of tuples: the distinct (a, b) codes must equal the
        # distinct (b, a) codes.  ``np.unique`` makes this a set (not
        # multiset) comparison, matching the tuple-set semantics even if
        # a row carries duplicate neighbor entries.
        rows = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self.indptr)
        )
        cols = self.indices.astype(np.int64, copy=False)
        n = np.int64(self._n)
        return np.array_equal(
            np.unique(rows * n + cols), np.unique(cols * n + rows)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NeighborGraph(n={self._n}, undirected_edges={self.num_edges}, "
            f"avg_degree={self.average_degree():.1f})"
        )
