"""Serialization: graphs, datasets, and selection reports on disk.

Graphs and datasets round-trip through ``.npz`` (compressed NumPy archives);
selection reports export to JSON for downstream tooling.  Formats are
versioned so future layout changes can stay readable.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from typing import Any, Dict

import numpy as np

from repro.core.pipeline import SelectionReport
from repro.data.registry import SelectionDataset
from repro.dataflow.metrics import PipelineMetrics
from repro.graph.csr import NeighborGraph

_FORMAT_VERSION = 1


def save_graph(graph: NeighborGraph, path: str) -> None:
    """Write a NeighborGraph to a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"neighbor_graph"),
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
    )


def load_graph(path: str) -> NeighborGraph:
    """Read a NeighborGraph written by :func:`save_graph`."""
    with np.load(path) as data:
        _check_archive(data, "neighbor_graph")
        return NeighborGraph(
            data["indptr"], data["indices"], data["weights"], check=True
        )


def save_dataset(dataset: SelectionDataset, path: str) -> None:
    """Write a SelectionDataset (embeddings + utilities + graph) to .npz."""
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        kind=np.bytes_(b"selection_dataset"),
        name=np.bytes_(dataset.name.encode()),
        embeddings=dataset.embeddings,
        labels=dataset.labels,
        utilities=dataset.utilities,
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        weights=dataset.graph.weights,
        neighbors=dataset.neighbors if dataset.neighbors is not None
        else np.empty((0, 0), dtype=np.int64),
        similarities=dataset.similarities if dataset.similarities is not None
        else np.empty((0, 0)),
    )


def load_dataset_file(path: str) -> SelectionDataset:
    """Read a SelectionDataset written by :func:`save_dataset`."""
    with np.load(path) as data:
        _check_archive(data, "selection_dataset")
        graph = NeighborGraph(
            data["indptr"], data["indices"], data["weights"], check=False
        )
        neighbors = data["neighbors"]
        similarities = data["similarities"]
        return SelectionDataset(
            name=bytes(data["name"]).decode(),
            embeddings=data["embeddings"],
            labels=data["labels"],
            utilities=data["utilities"],
            graph=graph,
            neighbors=neighbors if neighbors.size else None,
            similarities=similarities if similarities.size else None,
        )


def report_to_dict(report: SelectionReport) -> Dict[str, Any]:
    """JSON-serializable summary of a selection run."""
    config = asdict(report.config)
    # EngineOptions is not a dataclass; serialize it through its own
    # JSON-able form (an executor *instance* serializes as its name).
    config["options"] = report.config.options.to_dict()
    out: Dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "selected": report.selected.tolist(),
        "objective": report.objective,
        "config": config,
    }
    if report.bounding is not None:
        b = report.bounding
        out["bounding"] = {
            "n_included": b.n_included,
            "n_excluded": b.n_excluded,
            "k_remaining": b.k_remaining,
            "grow_rounds": b.grow_rounds,
            "shrink_rounds": b.shrink_rounds,
            "complete": bool(b.complete),
            "overshoot": b.overshoot,
        }
    if report.greedy is not None:
        out["greedy_rounds"] = [asdict(s) for s in report.greedy.rounds]
    engine_metrics = {
        key: asdict(value)
        for key, value in report.extra.items()
        if isinstance(value, PipelineMetrics)
    }
    if engine_metrics:
        out["engine_metrics"] = engine_metrics
    # The adaptive planner's predicted-vs-actual table is already a list
    # of plain dicts; pass it through so saved reports carry the feedback.
    plan_costs = report.extra.get("plan_costs")
    if plan_costs is not None:
        out["plan_costs"] = plan_costs
    return out


def save_report(report: SelectionReport, path: str) -> None:
    """Write a selection report to JSON."""
    with open(path, "w") as fh:
        json.dump(report_to_dict(report), fh, indent=2)


def load_report(path: str) -> Dict[str, Any]:
    """Read a JSON selection report (as a plain dict)."""
    with open(path) as fh:
        data = json.load(fh)
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported report version {data.get('version')!r} in {path}"
        )
    return data


def _check_archive(data, expected_kind: str) -> None:
    if "kind" not in data or bytes(data["kind"]).decode() != expected_kind:
        raise ValueError(f"archive is not a {expected_kind} file")
    if int(data["version"]) != _FORMAT_VERSION:
        raise ValueError(f"unsupported format version {int(data['version'])}")
