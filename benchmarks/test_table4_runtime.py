"""E11 — Table 4: runtime analysis at the 13 B operating point (Appendix D).

Regenerated from the calibrated analytic cost model (the paper itself warns
its single-run cluster timings are unreliable).  Reproduction targets:
ordering (more rounds cost more; bounding-first beats greedy-only) and
magnitude (every row within 2x of the paper's hours).
"""

from common import format_rows, report
from repro.cluster.costmodel import table4_rows


def test_table4_runtime_model(benchmark):
    rows = benchmark(table4_rows)
    by_label = {r.label: r.hours for r in rows}

    assert by_label["greedy r=1 (10%)"] < by_label["greedy r=2 (10%)"] \
        < by_label["greedy r=8 (10%)"]
    assert by_label["greedy r=1 (50%)"] < by_label["greedy r=8 (50%)"]
    assert (
        by_label["greedy r=8 after uniform bounding"]
        < by_label["greedy r=8 (10%)"]
    )
    for row in rows:
        assert 0.5 <= row.ratio <= 2.0, f"{row.label}: {row.ratio:.2f}"

    body = format_rows(
        ["algorithm", "model hours", "paper hours", "ratio"],
        [[r.label, float(r.hours), float(r.paper_hours), float(r.ratio)]
         for r in rows],
    )
    report("Table 4 — 13 B runtime analysis (cost model vs paper)", body)
