"""E20 — distributed kNN-graph construction (the ScaNN substrate).

The paper's pipeline starts with a billion-scale graph build; this bench
verifies the dataflow construction delivers (a) high recall vs exact kNN,
(b) bounded per-worker memory, and (c) selection results statistically
equivalent to the exact graph's.
"""

import numpy as np
import pytest

from common import centralized_score, format_rows, report
from repro.core.problem import SubsetProblem
from repro.dataflow.knn_beam import beam_knn_graph
from repro.dataflow.options import EngineOptions
from repro.graph.knn import exact_knn


def test_e20_distributed_graph_build(benchmark, cifar_ds):
    n = min(cifar_ds.n, 3000)
    x = cifar_ds.embeddings[:n]
    utilities = cifar_ds.utilities[:n]
    k_nn = 10

    def compute():
        exact_nbrs, exact_sims = exact_knn(x, k_nn)
        graph, beam_nbrs, _, metrics = beam_knn_graph(
            x, k_nn, n_clusters=16, nprobe=6, seed=0,
            options=EngineOptions(num_shards=8),
        )
        recall = float(np.mean([
            len(set(exact_nbrs[i]) & set(beam_nbrs[i])) / k_nn
            for i in range(n)
        ]))
        from repro.graph.symmetrize import symmetrize_knn

        exact_graph = symmetrize_knn(exact_nbrs, exact_sims)
        k_sel = n // 10
        scores = {}
        for label, g in (("exact graph", exact_graph), ("dataflow graph", graph)):
            problem = SubsetProblem.with_alpha(utilities, g, 0.9)
            scores[label] = centralized_score(problem, k_sel)
        return recall, metrics, scores

    recall, metrics, scores = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Hard-assignment IVF recall is moderate on 100-class overlapping data
    # (true ScaNN quantizes better), but the *selection* is insensitive to
    # it — echoing Sec. 6's "the exact choice of similarity ... does not
    # impact the comparison of the algorithms".
    assert recall > 0.5, recall
    assert metrics.peak_shard_records < n
    ratio = scores["dataflow graph"] / scores["exact graph"]
    assert ratio > 0.95, ratio

    body = format_rows(
        ["metric", "value"],
        [
            ["kNN recall vs exact", float(recall)],
            ["peak shard records", metrics.peak_shard_records],
            ["corpus size", n],
            ["selection score, exact graph", float(scores["exact graph"])],
            ["selection score, dataflow graph",
             float(scores["dataflow graph"])],
            ["score ratio", float(ratio)],
        ],
    )
    report("Extension E20 — distributed kNN graph construction", body)
