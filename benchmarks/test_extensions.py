"""E15/E16/E17 — extension benches beyond the paper's tables.

- E15: baseline comparison (GreeDi, RandGreeDi, Sample&Prune, random,
  k-center) against the bounding + multi-round pipeline, with the central
  memory each method requires — quantifying the paper's Sec. 2 argument.
- E16: empirical check of Theorem 4.6 — approximate bounding's realized
  quality always clears the proven lower bound.
- E17: Section 5's memory claim — join-based bounding and scoring never
  concentrate the data on one worker.
"""

import numpy as np
import pytest

from common import format_rows, random_problem, report
from repro.baselines import (
    greedi,
    k_center,
    rand_greedi,
    random_subset,
    sample_and_prune,
    sieve_streaming,
)
from repro.core.bounding import bound
from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective
from repro.core.pipeline import DistributedSelector, SelectorConfig
from repro.core.problem import SubsetProblem
from repro.core.theory import guarantee_for_instance
from repro.dataflow import EngineOptions, beam_bound, beam_score


def test_e15_baseline_comparison(benchmark, cifar_ds, cifar_problem_09):
    problem = cifar_problem_09
    k = problem.n // 10

    def compute():
        central = PairwiseObjective(problem).value(
            greedy_heap(problem, k).selected
        )
        ours = DistributedSelector(
            problem,
            SelectorConfig(
                bounding="approximate", sampling_fraction=0.3,
                machines=16, rounds=8, adaptive=True,
            ),
        ).select(k, seed=0)
        rows = [
            ["centralized greedy", 100.0, problem.n],
            [
                "ours (bounding + multiround)",
                ours.objective / central * 100.0,
                int(np.ceil(problem.n / 16)),  # per-machine partition cap
            ],
        ]
        for name, res in [
            ("GreeDi (m=16)", greedi(problem, k, m=16)),
            ("RandGreeDi (m=16)", rand_greedi(problem, k, m=16, seed=0)),
            ("Sample&Prune", sample_and_prune(problem, k, seed=0)),
            ("Sieve-Streaming", sieve_streaming(problem, k, seed=0)),
            ("random", random_subset(problem, k, seed=0)),
            ("k-center", k_center(problem, k, cifar_ds.embeddings, seed=0)),
        ]:
            rows.append(
                [name, res.objective / central * 100.0,
                 res.central_memory_points]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    by_name = {r[0]: r for r in rows}
    # Ours matches the GreeDi family in quality...
    assert by_name["ours (bounding + multiround)"][1] >= 90.0
    # ...while needing bounded per-machine memory (GreeDi's union of m*k
    # points exceeds our partition cap once k is large).
    assert by_name["random"][1] < by_name["ours (bounding + multiround)"][1]
    body = format_rows(
        ["method", "score vs centralized %", "central memory (points)"], rows
    )
    report("Extension E15 — baseline comparison (10 % subset)", body)


def test_e16_theorem46_empirical(benchmark):
    def compute():
        from dataclasses import replace

        rows = []
        for seed in range(4):
            problem = random_problem(
                200, seed=seed, alpha=0.9, avg_degree=6, utility_scale=30.0
            )
            # Shift utilities so Umin(v) > 0 everywhere: gamma = max
            # Umax/Umin stays finite and Theorem 4.6 is non-vacuous.
            offset = problem.beta_over_alpha * problem.graph.max_neighbor_mass()
            problem = replace(
                problem, utilities=problem.utilities + offset + 1.0
            )
            objective = PairwiseObjective(problem)
            k = 30
            exact_val = objective.value(greedy_heap(problem, k).selected)
            for p in (0.3, 0.5, 0.7, 0.9):
                factor, prob = guarantee_for_instance(problem, p)
                result = bound(problem, k, mode="approximate", p=p, seed=seed)
                if result.k_remaining:
                    mask = np.zeros(problem.n, dtype=bool)
                    mask[result.solution] = True
                    penalty = problem.beta * problem.graph.neighbor_mass(mask)
                    sub = problem.restrict(result.remaining)
                    local = greedy_heap(
                        sub, result.k_remaining,
                        base_penalty=penalty[result.remaining],
                    )
                    chosen = np.concatenate(
                        [result.solution, result.remaining[local.selected]]
                    )
                else:
                    chosen = result.solution
                achieved = objective.value(chosen) / exact_val
                rows.append([f"seed={seed} p={p}", float(factor),
                             float(prob), float(achieved)])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    # The bound is w.r.t. OPT >= greedy, so achieved/greedy must clear it.
    for label, factor, _prob, achieved in rows:
        assert achieved >= factor - 1e-9, f"{label}: {achieved} < {factor}"
    body = format_rows(
        ["instance", "Thm 4.6 factor", "success prob", "achieved/greedy"],
        rows,
    )
    report("Extension E16 — Theorem 4.6 empirical check", body)


def test_e17_dataflow_memory_claim(benchmark, cifar_ds):
    # Sub-sample so the join pipeline finishes quickly at bench scale.
    n = min(cifar_ds.n, 2000)
    sub_ids = np.arange(n)
    graph, _ = cifar_ds.graph.subgraph(sub_ids)
    problem = SubsetProblem.with_alpha(cifar_ds.utilities[:n], graph, 0.9)
    k = n // 10
    shards = 16

    def compute():
        bound_result, bound_metrics = beam_bound(
            problem, k, mode="approximate", p=0.3, seed=0,
            options=EngineOptions(num_shards=shards),
        )
        subset = bound_result.solution
        if subset.size < k:
            extra = bound_result.remaining[: k - subset.size]
            subset = np.sort(np.concatenate([subset, extra]))
        score, score_metrics = beam_score(
            problem, subset, options=EngineOptions(num_shards=shards)
        )
        return bound_metrics, score_metrics, score

    bound_metrics, score_metrics, score = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    total = problem.n + problem.graph.num_directed_edges
    assert bound_metrics.peak_shard_records < total / 2
    assert score_metrics.peak_shard_records < total / 2
    assert np.isfinite(score)

    body = format_rows(
        ["stage", "peak shard records", "total records", "peak/total %"],
        [
            ["bounding joins", bound_metrics.peak_shard_records, total,
             float(100 * bound_metrics.peak_shard_records / total)],
            ["scoring joins", score_metrics.peak_shard_records, total,
             float(100 * score_metrics.peak_shard_records / total)],
        ],
    )
    body += (
        "\n\nclaim (Sec. 5): neither bounding nor scoring requires a machine"
        " that holds the ground set or the subset; peak per-shard load stays"
        f" near total/shards = {total // shards} records."
    )
    report("Extension E17 — dataflow per-worker memory", body)
