"""E14 — Appendix G (Figures 16/17): bounding + adaptive distributed grids.

For each bounding configuration (regular = none, uniform/weighted × 30/70 %)
run the full pipeline over an adaptive partitions × rounds grid.  Paper
shapes: bounding rows dominate or match the regular rows cell-wise at the
10 % subset (bounding shrinks the problem, so fewer partitions are needed);
when bounding solves the instance outright the whole grid is constant.
"""

import pytest

from common import centralized_score, format_heatmap, normalize_grid, report
from repro.core.pipeline import DistributedSelector, SelectorConfig
from repro.core.problem import SubsetProblem

PARTITIONS = (1, 4, 16, 32)
ROUNDS = (1, 4, 16, 32)
CONFIGS = [
    ("regular", None, "uniform", 1.0),
    ("uniform 30%", "approximate", "uniform", 0.3),
    ("uniform 70%", "approximate", "uniform", 0.7),
    ("weighted 30%", "approximate", "weighted", 0.3),
    ("weighted 70%", "approximate", "weighted", 0.7),
]


def test_fig16_bounding_grids(benchmark, cifar_problem_09):
    problem = cifar_problem_09
    k = problem.n // 10

    def compute():
        central = centralized_score(problem, k)
        grids = {}
        for label, bounding, sampler, p in CONFIGS:
            raw = {}
            for m in PARTITIONS:
                for r in ROUNDS:
                    cfg = SelectorConfig(
                        bounding=bounding,
                        sampler=sampler,
                        sampling_fraction=p,
                        machines=m,
                        rounds=r,
                        adaptive=True,
                    )
                    rep = DistributedSelector(problem, cfg).select(k, seed=0)
                    raw[(m, r)] = rep.objective
            grids[label] = raw
        lowest = min(min(g.values()) for g in grids.values())
        lowest = min(lowest, central)
        span = central - lowest
        return {
            label: {
                cell: ((v - lowest) / span * 100.0 if span > 0 else 100.0)
                for cell, v in raw.items()
            }
            for label, raw in grids.items()
        }, central

    grids, _central = benchmark.pedantic(compute, rounds=1, iterations=1)

    regular = grids["regular"]
    for label in ("uniform 30%", "weighted 30%"):
        bounded = grids[label]
        mean_regular = sum(regular.values()) / len(regular)
        mean_bounded = sum(bounded.values()) / len(bounded)
        # Bounding shrinks the problem; grids improve or roughly match.
        assert mean_bounded >= mean_regular - 5.0

    for label, grid in grids.items():
        body = format_heatmap(
            f"{label} (alpha=0.9, 10 % subset, adaptive; paper Fig. 16)",
            grid,
            PARTITIONS,
            ROUNDS,
        )
        report(f"Figure 16/17 — bounding grid ({label})", body)
