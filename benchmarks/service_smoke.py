#!/usr/bin/env python
"""End-to-end smoke test for the selector service (the CI service job).

Boots a real ``python -m repro.service`` process on an ephemeral port,
then drives it exactly the way a user would:

1. run the one-shot ``repro select`` CLI and keep its report as the
   parity reference;
2. submit the identical job over HTTP with
   :class:`repro.service.client.ServiceClient`, poll to completion, and
   assert the selected subset and objective are **bit-identical** to the
   one-shot run;
3. resubmit the same spec and assert it is answered from the result
   store (``deduped_from == "store"``) without re-execution;
4. hit ``/v1/metrics`` and sanity-check the queue counters and the warm
   context's executor stats.

Exits nonzero on the first violated expectation.  Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402

PRESET = "cifar100_tiny"
N_POINTS = 200
K = 20
SEED = 0
ENGINE_ARGS = ["--engine", "dataflow", "--executor", "sequential",
               "--num-shards", "4"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _check(condition, message):
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def _one_shot_reference(tmp):
    """Run ``repro select`` once; return its saved report dict."""
    report_path = os.path.join(tmp, "reference.json")
    subprocess.run(
        [sys.executable, "-m", "repro", "select",
         "--preset", PRESET, "--n-points", str(N_POINTS),
         "--k", str(K), "--seed", str(SEED), *ENGINE_ARGS,
         "--report", report_path],
        check=True, env=_env(), cwd=REPO,
    )
    with open(report_path) as fh:
        return json.load(fh)


def _start_service(tmp):
    """Boot the service on an ephemeral port; return (proc, host, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--state-dir", os.path.join(tmp, "state")],
        stdout=subprocess.PIPE, env=_env(), cwd=REPO, text=True,
    )
    deadline = time.monotonic() + 60
    line = proc.stdout.readline()
    if time.monotonic() > deadline or not line:
        proc.terminate()
        print(f"FAIL: no ready line from service (got {line!r})",
              file=sys.stderr)
        sys.exit(1)
    tag, host, port = line.split()
    assert tag == "REPRO_SERVICE_READY", line
    return proc, host, int(port)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        reference = _one_shot_reference(tmp)
        proc, host, port = _start_service(tmp)
        try:
            client = ServiceClient(host, port)
            _check(client.healthz(), "service is healthy")

            spec = {
                "dataset": {"preset": PRESET, "n_points": N_POINTS,
                            "seed": SEED},
                "selector": {"k": K, "seed": SEED},
                "engine_options": {"executor": "sequential",
                                   "num_shards": 4},
                "tenant": "ci-smoke",
            }
            record = client.submit(spec)
            final = client.wait(record["job_id"], timeout=300.0)
            _check(final["state"] == "done",
                   f"job finished done (state={final['state']!r})")

            payload = client.result(record["job_id"])
            _check(
                payload["report"]["selected"] == reference["selected"],
                "service selection is bit-identical to one-shot CLI",
            )
            _check(
                payload["report"]["objective"] == reference["objective"],
                "service objective matches one-shot CLI exactly",
            )

            repeat = client.submit(spec)
            repeat_final = client.wait(repeat["job_id"], timeout=60.0)
            _check(repeat_final["deduped_from"] == "store",
                   "identical resubmission deduped from the result store")

            metrics = client.metrics()
            _check(metrics["counters"]["completed"] == 2,
                   "metrics count both jobs completed")
            _check(metrics["counters"]["dedup_hits"] == 1,
                   "metrics count the dedup hit")
            _check(metrics["queue_depth"] == 0, "queue drained")
            (context,) = metrics["warm_contexts"].values()
            _check(context["executor_stats"].get("stages_run", 0) > 0,
                   "warm context reports executor stages_run")
            print("service smoke: all checks passed")
        finally:
            proc.terminate()
            proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()


if __name__ == "__main__":
    main()
