"""E13 — Appendix E (Figures 6–11): ablation on the Δ-schedule factor γ.

Difference of normalized scores for γ ∈ {1.0, 0.5, 0.25} against the default
γ = 0.75, on CIFAR-like (Figs. 6–8) and ImageNet-like (Figs. 9–11) data.

Paper shapes: γ = 1.0 is mostly flat-to-slightly-worse; γ = 0.5 helps at
alpha = 0.9 with many partitions (smaller intermediate sets force earlier
decisions) and hurts at alpha = 0.1; γ = 0.25 amplifies both effects.
"""

import pytest

from common import (
    centralized_score,
    format_heatmap,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from repro.core.problem import SubsetProblem

PARTITIONS = (1, 4, 16, 32)
ROUNDS = (1, 4, 16, 32)
GAMMAS = (1.0, 0.5, 0.25)


@pytest.mark.parametrize("dataset_name", ["cifar", "imagenet"])
def test_delta_ablation(benchmark, cifar_ds, imagenet_ds, dataset_name):
    ds = cifar_ds if dataset_name == "cifar" else imagenet_ds
    figure = "Figs. 6-8" if dataset_name == "cifar" else "Figs. 9-11"

    def compute():
        out = {}
        for alpha in (0.9, 0.1):
            problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, alpha)
            k = problem.n // 10
            central = centralized_score(problem, k)
            base = normalize_grid(
                run_partition_round_grid(
                    problem, k, partitions=PARTITIONS, rounds=ROUNDS,
                    gamma=0.75, seed=0,
                ),
                central,
            )
            for gamma in GAMMAS:
                alt = normalize_grid(
                    run_partition_round_grid(
                        problem, k, partitions=PARTITIONS, rounds=ROUNDS,
                        gamma=gamma, seed=0,
                    ),
                    central,
                )
                out[(alpha, gamma)] = {
                    cell: alt[cell] - base[cell] for cell in base
                }
        return out

    diffs = benchmark.pedantic(compute, rounds=1, iterations=1)

    for (alpha, gamma), grid in diffs.items():
        # m=1 rows are pinned at 100 for any gamma: difference ~0.
        for r in ROUNDS:
            assert abs(grid[(1, r)]) < 1e-6
        body = format_heatmap(
            f"normalized-score difference, gamma={gamma} minus gamma=0.75 "
            f"(alpha={alpha}, 10 % subset, paper {figure})",
            grid,
            PARTITIONS,
            ROUNDS,
            value_format="{:7.1f}",
        )
        report(
            f"Appendix E — delta ablation {dataset_name} "
            f"(alpha={alpha}, gamma={gamma})",
            body,
        )

    # Aggregate paper shape on CIFAR-like/alpha=0.9: gamma=0.5 helps the
    # many-partition cells more than it helps the 1-partition ones.
    grid = diffs[(0.9, 0.5)]
    many = sum(grid[(m, r)] for m in (16, 32) for r in (16, 32)) / 4
    assert many >= -5.0
