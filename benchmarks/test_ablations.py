"""E18/E19 — design-choice ablations called out in DESIGN.md.

- E18: partitioning strategy — uniform random (the paper's choice) vs
  class-stratified (our extension).  Stratification gives every partition a
  miniature of the global structure, recovering part of the loss the paper
  attributes to "less global information" per partition.
- E19: centralized greedy variants (Sec. 3 "related optimizations") —
  wall-clock of Alg. 2's heap greedy vs naive / lazy / stochastic /
  threshold on identical instances, with quality deltas.  Confirms the
  paper's argument that Alg. 2 is the right per-partition engine for
  pairwise functions.
"""

import time

import numpy as np
import pytest

from common import centralized_score, format_rows, report
from repro.core.distributed import distributed_greedy, stratified_partitioner
from repro.core.greedy import (
    greedy_heap,
    greedy_naive,
    lazy_greedy,
    stochastic_greedy,
    threshold_greedy,
)
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem


def test_e18_stratified_partitioning(benchmark, cifar_ds, cifar_problem_09):
    problem = cifar_problem_09
    objective = PairwiseObjective(problem)
    k = problem.n // 10
    partitions = (4, 16, 32)
    rounds = (1, 8)

    def compute():
        central = centralized_score(problem, k)
        rows = []
        for m in partitions:
            for r in rounds:
                rand_score = objective.value(
                    distributed_greedy(problem, k, m=m, rounds=r, seed=0).selected
                )
                strat_score = objective.value(
                    distributed_greedy(
                        problem, k, m=m, rounds=r,
                        partitioner=stratified_partitioner(cifar_ds.labels),
                        seed=0,
                    ).selected
                )
                rows.append(
                    [
                        f"m={m}, r={r}",
                        rand_score / central * 100.0,
                        strat_score / central * 100.0,
                        (strat_score - rand_score) / central * 100.0,
                    ]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Stratification must not collapse quality anywhere.
    for label, rand_pct, strat_pct, _delta in rows:
        assert strat_pct >= rand_pct - 10.0, f"{label}: {strat_pct} vs {rand_pct}"
    body = format_rows(
        ["configuration", "random %", "stratified %", "delta pp"],
        [[r[0], float(r[1]), float(r[2]), float(r[3])] for r in rows],
    )
    report("Extension E18 — stratified vs random partitioning", body)


def test_e19_greedy_variants(benchmark, cifar_problem_09):
    problem = cifar_problem_09
    objective = PairwiseObjective(problem)
    k = problem.n // 10

    variants = [
        ("heap (Alg. 2)", lambda: greedy_heap(problem, k)),
        ("naive (Alg. 1)", lambda: greedy_naive(problem, k)),
        ("lazy (Minoux)", lambda: lazy_greedy(problem, k)),
        ("stochastic", lambda: stochastic_greedy(problem, k, seed=0)),
        ("threshold", lambda: threshold_greedy(problem, k)),
    ]

    def compute():
        reference = None
        rows = []
        for label, fn in variants:
            start = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - start
            value = objective.value(result.selected)
            if reference is None:
                reference = value
            rows.append([label, elapsed * 1000.0, value / reference * 100.0])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    by_label = {r[0]: r for r in rows}
    # Exactness: heap == naive == lazy in quality.
    assert by_label["naive (Alg. 1)"][2] == pytest.approx(100.0, abs=1e-6)
    assert by_label["lazy (Minoux)"][2] == pytest.approx(100.0, abs=1e-6)
    # Approximate variants stay close.
    assert by_label["stochastic"][2] >= 95.0
    assert by_label["threshold"][2] >= 95.0
    body = format_rows(
        ["variant", "wall-clock ms", "quality vs heap %"],
        [[r[0], float(r[1]), float(r[2])] for r in rows],
    )
    report("Extension E19 — centralized greedy variants", body)
