"""E4 — Figures 3 and 12: partitions × rounds grids on CIFAR-like data,
non-adaptive partitioning.

Paper shape to reproduce (Fig. 3, 10 % subset): scores fall as partitions
grow, rise as rounds grow; m=1 row is pinned at 100.  Reference anchors from
the paper (alpha = 0.9): (m=2, r=1) = 80, (m=2, r=32) = 98, (m=32, r=1) = 2,
(m=32, r=32) = 61.
"""

import pytest

from common import (
    centralized_score,
    format_heatmap,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from conftest import ALPHAS, PARTITIONS, ROUNDS, SUBSET_FRACTIONS
from repro.core.problem import SubsetProblem


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig3_cifar_nonadaptive(benchmark, cifar_ds, alpha):
    problem = SubsetProblem.with_alpha(cifar_ds.utilities, cifar_ds.graph, alpha)

    def compute():
        sections = []
        for fraction in SUBSET_FRACTIONS:
            k = int(problem.n * fraction)
            raw = run_partition_round_grid(
                problem, k, partitions=PARTITIONS, rounds=ROUNDS, seed=0
            )
            central = centralized_score(problem, k)
            norm = normalize_grid(raw, central)
            sections.append((fraction, norm))
        return sections

    sections = benchmark.pedantic(compute, rounds=1, iterations=1)
    for fraction, norm in sections:
        # m=1 is the centralized algorithm at any round count.
        for r in ROUNDS:
            assert norm[(1, r)] == pytest.approx(100.0, abs=1e-6)
        # Monotone trends at the corners (noise-tolerant interior).
        assert norm[(2, 32)] > norm[(32, 1)]
        assert norm[(2, 1)] > norm[(32, 1)]
        assert norm[(32, 32)] > norm[(32, 1)]
        body = format_heatmap(
            f"alpha={alpha}, subset={int(fraction * 100)} % "
            f"(paper Fig. 3/12; anchors for alpha=0.9/10 %: "
            "m2r1=80, m2r32=98, m32r1=2, m32r32=61)",
            norm,
            PARTITIONS,
            ROUNDS,
        )
        report(
            f"Figure 3/12 — CIFAR-like non-adaptive grid "
            f"(alpha={alpha}, {int(fraction * 100)}% subset)",
            body,
        )
