"""E21 — dataflow engine: fusion, optimizer, executor backends, pool
persistence.

Benchmarks the engine along four axes on a synthetic preset-sized
workload:

- *fusion*: an element-wise-heavy pipeline (``flat_map`` fan-out → two
  ``map`` s → ``filter`` → shuffle) with fusion off vs on — fewer physical
  stages, smaller peak shard footprint, one pass per shard;
- *optimizer*: the kNN build with the plan optimizer off
  (``knn_sequential_noopt``) vs on — combiner lifting plus
  redundant-shuffle elision must strictly shrink ``shuffled_records``
  (``check_dataflow_regression.py`` gates CI on this);
- *executor*: the distributed kNN build (the heaviest per-shard compute in
  the repo) on the sequential vs thread vs multiprocess backend —
  identical output, shard-parallel wall time (all pinned to the row
  runtime so they double as the columnar axis's baseline);
- *columnar*: the same kNN build under the columnar shard runtime
  (whole-shard NumPy kernels + vectorized shuffle writes) vs the
  row-path ``knn_sequential`` baseline — bit-identical output, and
  ``check_dataflow_regression.py`` gates CI on
  ``knn_columnar <= 0.8 x knn_sequential`` wall time;
- *remote / closure broadcast*: the same kNN build on ``RemoteExecutor``
  with two auto-spawned localhost worker daemons — identical output, and
  the ``broadcast_bytes`` record witnesses that the embedding matrix
  shipped to each worker exactly once across the build's stages
  (``check_dataflow_regression.py`` gates CI on
  ``broadcast_bytes <= unique_broadcast_bytes × n_workers``);
- *incremental*: the delta runtime — a cold incremental selection drive
  vs the same drive after a 10% synthetic delta, on one checkpoint
  directory.  The delta drive must reuse shards (``reused_shards > 0``)
  and re-execute well under half the cold drive's stages
  (``check_dataflow_regression.py`` gates CI on both), while staying
  bit-identical to a fresh cold drive over the same version;
- *sieve streaming*: the one-pass :func:`beam_sieve_select` beam vs
  batch greedy — records the quality ratio (sieve objective over batch
  greedy objective) and the bounded per-sieve memory, the trade the
  streaming baseline exists to show;
- *pool persistence*: a many-small-stages pipeline (each stage forced onto
  the pool) that isolates worker-pool startup overhead — the workload that
  made the old fork-per-stage multiprocess backend a net slowdown, and the
  probe the CI wall-time gate runs on (small stages measure the executor
  architecture, not compute, so the ratio is stable on noisy shared
  runners);
- *adaptive planning*: the same kNN build with ``adaptive=True`` — the
  cost-model planner chooses ``num_shards`` itself, output must stay
  bit-identical, and after one calibration drive the model's per-stage
  ``predicted_ms`` is recorded next to the measured ``actual_ms``
  (``check_dataflow_regression.py`` gates CI on
  ``knn_adaptive <= 1.1 x knn_columnar`` wall time and on the median
  predicted-vs-actual relative error).

Emits ``BENCH_dataflow.json`` under ``benchmarks/results/`` via
:func:`common.report_json` alongside the human-readable table;
``check_dataflow_regression.py`` gates CI on the recorded numbers.
"""

import time

import numpy as np

from common import format_rows, report, report_json
from repro.dataflow import (
    DataflowContext,
    EngineOptions,
    MultiprocessExecutor,
    Pipeline,
    RemoteExecutor,
    ThreadExecutor,
    beam_knn_graph,
    predicted_vs_actual,
)
from conftest import BENCH_SCALE


def _elementwise_pipeline(n: int, *, fuse: bool, executor="sequential"):
    """A fan-out-heavy chain whose intermediates dwarf the input."""
    pipeline = Pipeline(num_shards=8, fuse=fuse, executor=executor)
    start = time.perf_counter()
    result = (
        pipeline.create(range(n))
        .flat_map(lambda x: [(x, j) for j in range(8)])
        .map(lambda xy: (xy[0], xy[1] * 3 + 1))
        .map(lambda xy: (xy[0] % 97, xy[1]))
        .filter(lambda kv: kv[1] % 2 == 1)
        .as_keyed()
        .group_by_key()
        .count()
    )
    elapsed = time.perf_counter() - start
    pipeline.close()
    return result, elapsed, pipeline.metrics


def _executor_matrix(min_parallel_records=None):
    """(label, factory) for the three backends.

    With ``min_parallel_records=None`` each backend keeps its production
    default (small stages run in-process); pass 0 to force every stage
    onto the pool (the pool-startup-overhead probe).
    """
    kwargs = {} if min_parallel_records is None else {
        "min_parallel_records": min_parallel_records
    }
    return (
        ("sequential", lambda: "sequential"),
        ("thread", lambda: ThreadExecutor(**kwargs)),
        ("multiprocess", lambda: MultiprocessExecutor(**kwargs)),
    )


def _many_small_stages(executor, *, n_stages: int, n: int):
    """One tiny physical stage per iteration: isolates per-stage pool
    overhead (the old backend forked a fresh pool for every stage)."""
    pipeline = Pipeline(num_shards=4, executor=executor)
    col = pipeline.create(range(n))
    start = time.perf_counter()
    for i in range(n_stages):
        col = col.map(lambda x, _i=i: x + _i).run()
    checksum = sum(col.to_list())
    elapsed = time.perf_counter() - start
    pipeline.close()
    return checksum, elapsed, pipeline.metrics


def test_e21_dataflow_engine():
    n = max(2_000, int(50_000 * BENCH_SCALE))
    rng = np.random.default_rng(0)
    # kNN floor of 2000 points keeps per-shard compute dominant over IPC,
    # so the CI wall-time gate measures the executor architecture rather
    # than the serialization floor of a toy workload.
    x = rng.normal(size=(max(2_000, n // 5), 32))
    n_stages = 24

    rows = []
    record = {
        "workload_n": n,
        "knn_n": int(x.shape[0]),
        "small_stages_n_stages": n_stages,
        "modes": {},
    }

    # -- fusion axis ------------------------------------------------------
    baseline = None
    for label, fuse in (("sequential/unfused", False), ("sequential/fused", True)):
        result, elapsed, metrics = _elementwise_pipeline(n, fuse=fuse)
        if baseline is None:
            baseline = result
        assert result == baseline, "fusion changed results"
        rows.append((
            f"elementwise {label}", elapsed * 1e3,
            metrics.executed_stages, metrics.fused_stages,
            metrics.peak_shard_records,
        ))
        record["modes"][f"elementwise_{label.replace('/', '_')}"] = {
            "wall_ms": elapsed * 1e3,
            "executed_stages": metrics.executed_stages,
            "fused_stages": metrics.fused_stages,
            "peak_shard_records": metrics.peak_shard_records,
        }

    # -- optimizer axis ---------------------------------------------------
    # The naive plan (no combiner lifting, no reshard elision, no
    # post-shuffle fusion): identical output, strictly more shuffle.
    start = time.perf_counter()
    _, knn_noopt_nbrs, _, noopt_metrics = beam_knn_graph(
        x, 10, n_clusters=16, nprobe=4, seed=0,
        options=EngineOptions(num_shards=8, optimize=False, columnar=False),
    )
    noopt_elapsed = time.perf_counter() - start
    rows.append((
        "knn build sequential/noopt", noopt_elapsed * 1e3,
        noopt_metrics.executed_stages, noopt_metrics.fused_stages,
        noopt_metrics.peak_shard_records,
    ))
    record["modes"]["knn_sequential_noopt"] = {
        "wall_ms": noopt_elapsed * 1e3,
        "executed_stages": noopt_metrics.executed_stages,
        "fused_stages": noopt_metrics.fused_stages,
        "peak_shard_records": noopt_metrics.peak_shard_records,
        "shuffled_records": noopt_metrics.shuffled_records,
        "pre_shuffle_records": noopt_metrics.pre_shuffle_records,
        "lifted_combiners": noopt_metrics.lifted_combiners,
        "elided_shuffles": noopt_metrics.elided_shuffles,
    }

    # -- executor axis ----------------------------------------------------
    # Best-of-3 per backend (fresh executor each repetition, so pool
    # startup is always included) keeps the CI wall-time gate off the
    # noise floor.
    knn_baseline = knn_noopt_nbrs
    for label, factory in _executor_matrix():
        elapsed = None
        for _rep in range(3):
            executor = factory()
            try:
                # Time the build only (pool startup happens inside, at the
                # first parallel stage); teardown is excluded for every
                # backend alike so the CI ratio compares like with like.
                start = time.perf_counter()
                _, nbrs, _, metrics = beam_knn_graph(
                    x, 10, n_clusters=16, nprobe=4, seed=0,
                    options=EngineOptions(
                        executor, num_shards=8, optimize=True,
                        columnar=False,
                    ),
                )
                rep_elapsed = time.perf_counter() - start
            finally:
                if not isinstance(executor, str):
                    executor.close()
            elapsed = rep_elapsed if elapsed is None else min(elapsed, rep_elapsed)
            np.testing.assert_array_equal(nbrs, knn_baseline)
        rows.append((
            f"knn build {label}", elapsed * 1e3,
            metrics.executed_stages, metrics.fused_stages,
            metrics.peak_shard_records,
        ))
        record["modes"][f"knn_{label}"] = {
            "wall_ms": elapsed * 1e3,
            "executed_stages": metrics.executed_stages,
            "fused_stages": metrics.fused_stages,
            "peak_shard_records": metrics.peak_shard_records,
            "shuffled_records": metrics.shuffled_records,
            "pre_shuffle_records": metrics.pre_shuffle_records,
            "lifted_combiners": metrics.lifted_combiners,
            "elided_shuffles": metrics.elided_shuffles,
        }

    # -- columnar axis: row runtime vs vectorized shard runtime -----------
    # Same build, same seed, columnar on: the assign stage runs as one
    # whole-shard NumPy kernel, the shuffle write hashes/routes whole key
    # columns, and results must stay bit-identical to the row path.  The
    # executor-matrix modes above pin ``columnar=False``, so
    # ``knn_sequential`` is a true row baseline for the CI ratio gate
    # (``knn_columnar <= 0.8 x knn_sequential``).
    col_elapsed = None
    for _rep in range(3):
        start = time.perf_counter()
        _, nbrs, _, col_metrics = beam_knn_graph(
            x, 10, n_clusters=16, nprobe=4, seed=0,
            options=EngineOptions(num_shards=8, optimize=True, columnar=True),
        )
        rep_elapsed = time.perf_counter() - start
        col_elapsed = (
            rep_elapsed if col_elapsed is None else min(col_elapsed, rep_elapsed)
        )
        np.testing.assert_array_equal(nbrs, knn_baseline)
    rows.append((
        "knn build columnar", col_elapsed * 1e3,
        col_metrics.executed_stages, col_metrics.fused_stages,
        col_metrics.peak_shard_records,
    ))
    record["modes"]["knn_columnar"] = {
        "wall_ms": col_elapsed * 1e3,
        "executed_stages": col_metrics.executed_stages,
        "fused_stages": col_metrics.fused_stages,
        "peak_shard_records": col_metrics.peak_shard_records,
        "shuffled_records": col_metrics.shuffled_records,
        "pre_shuffle_records": col_metrics.pre_shuffle_records,
        "lifted_combiners": col_metrics.lifted_combiners,
        "elided_shuffles": col_metrics.elided_shuffles,
        "vectorized_stages": col_metrics.vectorized_stages,
        "columnar_rows": col_metrics.columnar_rows,
    }

    # -- remote axis: TCP worker cluster + closure broadcast --------------
    # One run (worker daemons cost ~1 s to spawn; the wall gate lives on
    # the small-stages probe, not here).  The claim under test: output is
    # bit-identical, and the embedding matrix — captured by the assign and
    # cell_knn DoFns — broadcasts to each worker exactly once across the
    # build's stages, so per-stage payloads stay flat.
    n_remote_workers = 2
    remote_executor = RemoteExecutor(max_workers=n_remote_workers)
    try:
        start = time.perf_counter()
        _, nbrs, _, metrics = beam_knn_graph(
            x, 10, n_clusters=16, nprobe=4, seed=0,
            options=EngineOptions(
                remote_executor, num_shards=8, optimize=True, columnar=False
            ),
        )
        remote_elapsed = time.perf_counter() - start
        remote_stats = remote_executor.stats()
    finally:
        remote_executor.close()
    np.testing.assert_array_equal(nbrs, knn_baseline)
    rows.append((
        "knn build remote(2)", remote_elapsed * 1e3,
        metrics.executed_stages, metrics.fused_stages,
        metrics.peak_shard_records,
    ))
    record["modes"]["knn_remote"] = {
        "wall_ms": remote_elapsed * 1e3,
        "executed_stages": metrics.executed_stages,
        "fused_stages": metrics.fused_stages,
        "peak_shard_records": metrics.peak_shard_records,
        "shuffled_records": metrics.shuffled_records,
        "n_workers": n_remote_workers,
        "broadcast_bytes": remote_stats["broadcast_bytes"],
        "broadcast_blobs": remote_stats["broadcast_blobs"],
        "unique_broadcast_bytes": remote_stats["unique_broadcast_bytes"],
        "stage_payload_bytes": remote_stats["stage_payload_bytes"],
        "worker_failures": remote_stats["worker_failures"],
        "retried_shards": remote_stats["retried_shards"],
    }

    # Columnar build over the wire: ColumnarShard payloads (pickled
    # ndarray columns) cross the TCP boundary and the result must still
    # match the row baseline bit-for-bit.
    remote_executor = RemoteExecutor(max_workers=n_remote_workers)
    try:
        start = time.perf_counter()
        _, nbrs, _, metrics = beam_knn_graph(
            x, 10, n_clusters=16, nprobe=4, seed=0,
            options=EngineOptions(
                remote_executor, num_shards=8, optimize=True, columnar=True
            ),
        )
        col_remote_elapsed = time.perf_counter() - start
        col_remote_stats = remote_executor.stats()
    finally:
        remote_executor.close()
    np.testing.assert_array_equal(nbrs, knn_baseline)
    rows.append((
        "knn build columnar remote(2)", col_remote_elapsed * 1e3,
        metrics.executed_stages, metrics.fused_stages,
        metrics.peak_shard_records,
    ))
    record["modes"]["knn_columnar_remote"] = {
        "wall_ms": col_remote_elapsed * 1e3,
        "executed_stages": metrics.executed_stages,
        "fused_stages": metrics.fused_stages,
        "peak_shard_records": metrics.peak_shard_records,
        "shuffled_records": metrics.shuffled_records,
        "vectorized_stages": metrics.vectorized_stages,
        "columnar_rows": metrics.columnar_rows,
        "n_workers": n_remote_workers,
        "broadcast_bytes": col_remote_stats["broadcast_bytes"],
        "broadcast_blobs": col_remote_stats["broadcast_blobs"],
        "unique_broadcast_bytes": col_remote_stats["unique_broadcast_bytes"],
        "stage_payload_bytes": col_remote_stats["stage_payload_bytes"],
        "worker_failures": col_remote_stats["worker_failures"],
        "retried_shards": col_remote_stats["retried_shards"],
    }

    # Worker-to-worker shuffle plane: the same build with shuffle buckets
    # exchanged peer-to-peer.  The claim under test: on the fault-free
    # path zero bucket bytes cross the driver (``driver_shuffle_bytes ==
    # 0`` while ``p2p_shuffle_bytes > 0`` — both gated in
    # check_dataflow_regression.py) and the result stays bit-identical.
    remote_executor = RemoteExecutor(max_workers=n_remote_workers)
    try:
        start = time.perf_counter()
        _, nbrs, _, metrics = beam_knn_graph(
            x, 10, n_clusters=16, nprobe=4, seed=0,
            options=EngineOptions(
                remote_executor, num_shards=8, optimize=True,
                columnar=False, shuffle="worker",
            ),
        )
        p2p_elapsed = time.perf_counter() - start
        p2p_stats = remote_executor.stats()
    finally:
        remote_executor.close()
    np.testing.assert_array_equal(nbrs, knn_baseline)
    rows.append((
        "knn build remote p2p(2)", p2p_elapsed * 1e3,
        metrics.executed_stages, metrics.fused_stages,
        metrics.peak_shard_records,
    ))
    record["modes"]["knn_remote_p2p"] = {
        "wall_ms": p2p_elapsed * 1e3,
        "executed_stages": metrics.executed_stages,
        "fused_stages": metrics.fused_stages,
        "peak_shard_records": metrics.peak_shard_records,
        "shuffled_records": metrics.shuffled_records,
        "n_workers": n_remote_workers,
        "p2p_shuffle_bytes": p2p_stats["p2p_shuffle_bytes"],
        "driver_shuffle_bytes": p2p_stats["driver_shuffle_bytes"],
        "bucket_refetches": p2p_stats["bucket_refetches"],
        "worker_failures": p2p_stats["worker_failures"],
        "retried_shards": p2p_stats["retried_shards"],
    }

    # -- adaptive axis: cost-model-driven planning ------------------------
    # The planner picks num_shards itself (no explicit engine knobs), the
    # first drive calibrates the cost model from observed StageProfiles,
    # and the timed best-of-3 then runs against the calibrated constants —
    # so the recorded predicted_ms/actual_ms pairs measure how well one
    # calibration drive tracks this machine.  Output must stay
    # bit-identical to the fixed-8-shard baseline (the kNN top-k is a
    # total order, so shard count never changes selections).
    adapt_elapsed = None
    with DataflowContext(EngineOptions(adaptive=True)) as ctx:
        beam_knn_graph(x, 10, n_clusters=16, nprobe=4, seed=0, context=ctx)
        model = ctx.planner.recalibrate()
        for _rep in range(3):
            start = time.perf_counter()
            _, nbrs, _, adapt_metrics = beam_knn_graph(
                x, 10, n_clusters=16, nprobe=4, seed=0, context=ctx
            )
            rep_elapsed = time.perf_counter() - start
            adapt_elapsed = (
                rep_elapsed if adapt_elapsed is None
                else min(adapt_elapsed, rep_elapsed)
            )
            np.testing.assert_array_equal(nbrs, knn_baseline)
        planned_shards = ctx.planner.choose_num_shards(int(x.shape[0]))
    stage_costs = predicted_vs_actual(adapt_metrics.stage_profiles, model)
    rel_errs = sorted(r["rel_err"] for r in stage_costs)
    median_rel_err = rel_errs[len(rel_errs) // 2] if rel_errs else 0.0
    rows.append((
        "knn build adaptive", adapt_elapsed * 1e3,
        adapt_metrics.executed_stages, adapt_metrics.fused_stages,
        adapt_metrics.peak_shard_records,
    ))
    record["modes"]["knn_adaptive"] = {
        "wall_ms": adapt_elapsed * 1e3,
        "executed_stages": adapt_metrics.executed_stages,
        "fused_stages": adapt_metrics.fused_stages,
        "peak_shard_records": adapt_metrics.peak_shard_records,
        "shuffled_records": adapt_metrics.shuffled_records,
        "vectorized_stages": adapt_metrics.vectorized_stages,
        "planned_num_shards": planned_shards,
        "stage_costs": stage_costs,
        "median_rel_err": median_rel_err,
    }

    # -- incremental axis: delta-driven recompute -------------------------
    # One checkpoint directory, two drives: cold over version 0, then a
    # 10% synthetic delta.  Fingerprint intersection must skip the
    # untouched shard branches (checkpoint hits) so the delta drive
    # executes a small fraction of the cold drive's stages — and a cold
    # drive over the same version in a fresh directory must agree
    # bit-for-bit (reuse changes what runs, never what comes out).
    import tempfile

    from repro.core.greedy import greedy_heap
    from repro.core.problem import SubsetProblem
    from repro.data.registry import load_dataset
    from repro.dataflow.sieve_beam import beam_sieve_select
    from repro.incremental import (
        DatasetVersion,
        IncrementalDriver,
        synthetic_deltas,
    )

    n_sel = max(400, int(5_000 * BENCH_SCALE))
    k_sel = max(16, n_sel // 20)
    ds = load_dataset("cifar100_tiny", n_points=n_sel, seed=0)
    problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, 0.9)
    v0 = DatasetVersion.initial(problem.utilities)
    log = synthetic_deltas(v0, seed=1, steps=1, frac=0.1)
    v1 = v0.apply_all(log)
    with tempfile.TemporaryDirectory() as ckpt:
        with DataflowContext(
            EngineOptions(num_shards=8, checkpoint_dir=ckpt)
        ) as ctx:
            driver = IncrementalDriver(
                problem, k_sel, context=ctx, data_shards=8
            )
            start = time.perf_counter()
            cold = driver.drive(v0)
            cold_elapsed = time.perf_counter() - start
            start = time.perf_counter()
            delta = driver.drive(v1, deltas=list(log))
            delta_elapsed = time.perf_counter() - start
    with tempfile.TemporaryDirectory() as ckpt:
        with DataflowContext(
            EngineOptions(num_shards=8, checkpoint_dir=ckpt)
        ) as ctx:
            fresh = IncrementalDriver(
                problem, k_sel, context=ctx, data_shards=8
            ).drive(v1)
    np.testing.assert_array_equal(delta.selected, fresh.selected)
    rows.append((
        "incremental cold drive", cold_elapsed * 1e3,
        cold.executed_stages, 0, cold.extra["num_alive"],
    ))
    rows.append((
        "incremental 10% delta", delta_elapsed * 1e3,
        delta.executed_stages, 0, delta.extra["num_alive"],
    ))
    record["modes"]["knn_incremental"] = {
        "wall_ms": delta_elapsed * 1e3,
        "wall_ms_cold": cold_elapsed * 1e3,
        "executed_stages": delta.executed_stages,
        "cold_stages": cold.executed_stages,
        "reused_shards": delta.reused_shards,
        "invalidated_shards": delta.invalidated_shards,
        "delta_records": delta.delta_records,
        "checkpoint_hits": delta.checkpoint_hits,
        "data_shards": delta.extra["data_shards"],
        "selection_n": n_sel,
        "selection_k": k_sel,
    }
    assert delta.reused_shards > 0
    assert delta.executed_stages < cold.executed_stages

    # -- sieve-streaming axis: one-pass quality vs batch greedy -----------
    batch = greedy_heap(problem, k_sel)
    start = time.perf_counter()
    sieve_result, sieve_metrics = beam_sieve_select(
        problem, k_sel, seed=0, options=EngineOptions(num_shards=8)
    )
    sieve_elapsed = time.perf_counter() - start
    quality = (
        sieve_result.objective / batch.objective
        if batch.objective > 0 else 1.0
    )
    rows.append((
        "sieve streaming beam", sieve_elapsed * 1e3,
        sieve_metrics.executed_stages, sieve_metrics.fused_stages,
        sieve_metrics.peak_shard_records,
    ))
    record["modes"]["sieve_stream"] = {
        "wall_ms": sieve_elapsed * 1e3,
        "executed_stages": sieve_metrics.executed_stages,
        "lifted_combiners": sieve_metrics.lifted_combiners,
        "peak_shard_records": sieve_metrics.peak_shard_records,
        "objective": sieve_result.objective,
        "batch_greedy_objective": batch.objective,
        "quality_ratio": quality,
        "central_memory_points": sieve_result.central_memory_points,
    }
    assert sieve_metrics.lifted_combiners >= 1

    # -- pool-persistence axis: many small stages -------------------------
    # min_parallel_records=0 forces even tiny stages onto the pool; the
    # point is per-stage pool overhead, not compute.
    small_baseline = None
    for label, factory in _executor_matrix(min_parallel_records=0):
        executor = factory()
        try:
            checksum, elapsed, metrics = _many_small_stages(
                executor, n_stages=n_stages, n=max(512, n // 10)
            )
            if not isinstance(executor, str):
                # The tentpole claim: one pool for the whole pipeline, not
                # one per stage.
                assert executor.pools_created <= 1
        finally:
            if not isinstance(executor, str):
                executor.close()
        if small_baseline is None:
            small_baseline = checksum
        assert checksum == small_baseline, "backend changed results"
        rows.append((
            f"small stages x{n_stages} {label}", elapsed * 1e3,
            metrics.executed_stages, metrics.fused_stages,
            metrics.peak_shard_records,
        ))
        record["modes"][f"small_stages_{label}"] = {
            "wall_ms": elapsed * 1e3,
            "executed_stages": metrics.executed_stages,
            "fused_stages": metrics.fused_stages,
            "peak_shard_records": metrics.peak_shard_records,
        }

    # The engine's checkable claims: fusion cuts physical stages and peak
    # footprint; the optimizer strictly shrinks kNN shuffle volume;
    # backends agree bit-for-bit (asserted above).
    unfused = record["modes"]["elementwise_sequential_unfused"]
    fused = record["modes"]["elementwise_sequential_fused"]
    assert fused["executed_stages"] < unfused["executed_stages"]
    assert fused["fused_stages"] > 0
    assert fused["peak_shard_records"] <= unfused["peak_shard_records"]
    optimized = record["modes"]["knn_sequential"]
    naive = record["modes"]["knn_sequential_noopt"]
    assert optimized["shuffled_records"] < naive["shuffled_records"]
    assert optimized["lifted_combiners"] > 0
    assert optimized["elided_shuffles"] > 0
    # Columnar runtime: the vectorized kernels actually fired (the wall
    # ratio vs knn_sequential is gated in check_dataflow_regression.py,
    # where reruns are cheap; output identity was asserted inline).
    columnar = record["modes"]["knn_columnar"]
    assert columnar["vectorized_stages"] > 0
    assert columnar["columnar_rows"] > 0
    assert columnar["shuffled_records"] == optimized["shuffled_records"]
    # Closure broadcast: the (large) captures shipped, and shipped to
    # each worker at most once across every stage of the build.
    remote = record["modes"]["knn_remote"]
    assert remote["broadcast_bytes"] > 0
    assert remote["broadcast_bytes"] <= (
        remote["unique_broadcast_bytes"] * remote["n_workers"]
    )
    # Worker-to-worker shuffle: the volume the engine metered is the same
    # either plane — only where the bytes moved differs (the byte-level
    # gates live in check_dataflow_regression.py).
    p2p = record["modes"]["knn_remote_p2p"]
    assert p2p["shuffled_records"] == remote["shuffled_records"]
    assert p2p["p2p_shuffle_bytes"] > 0
    assert p2p["driver_shuffle_bytes"] == 0
    # Adaptive planning: the planner actually re-planned (chose more
    # shards than the 8-shard default), profiles were recorded, and every
    # predicted/actual pair carries a well-formed symmetric error (the
    # wall-ratio and rel-err CI gates live in check_dataflow_regression.py).
    adaptive = record["modes"]["knn_adaptive"]
    assert adaptive["planned_num_shards"] > 8
    assert adaptive["stage_costs"]
    assert all(0.0 <= r["rel_err"] <= 1.0 for r in adaptive["stage_costs"])

    path = report_json("dataflow", record)
    report(
        "E21: dataflow engine — fusion, executor backends, pool persistence",
        format_rows(
            ("mode", "wall ms", "stages", "fused", "peak shard"), rows
        ) + f"\n(record: {path})",
    )
