"""E21 — dataflow engine: sequential vs fused vs multiprocess.

Benchmarks the engine refactor along its two new axes on a synthetic
preset-sized workload:

- *fusion*: an element-wise-heavy pipeline (``flat_map`` fan-out → two
  ``map`` s → ``filter`` → shuffle) with fusion off vs on — fewer physical
  stages, smaller peak shard footprint, one pass per shard;
- *executor*: the distributed kNN build (the heaviest per-shard compute in
  the repo) on the sequential vs multiprocess backend — identical output,
  shard-parallel wall time.

Emits ``BENCH_dataflow.json`` under ``benchmarks/results/`` via
:func:`common.report_json` alongside the human-readable table.
"""

import time

import numpy as np

from common import format_rows, report, report_json
from repro.dataflow import MultiprocessExecutor, Pipeline, beam_knn_graph
from conftest import BENCH_SCALE


def _elementwise_pipeline(n: int, *, fuse: bool, executor="sequential"):
    """A fan-out-heavy chain whose intermediates dwarf the input."""
    pipeline = Pipeline(num_shards=8, fuse=fuse, executor=executor)
    start = time.perf_counter()
    result = (
        pipeline.create(range(n))
        .flat_map(lambda x: [(x, j) for j in range(8)])
        .map(lambda xy: (xy[0], xy[1] * 3 + 1))
        .map(lambda xy: (xy[0] % 97, xy[1]))
        .filter(lambda kv: kv[1] % 2 == 1)
        .as_keyed()
        .group_by_key()
        .count()
    )
    elapsed = time.perf_counter() - start
    return result, elapsed, pipeline.metrics


def test_e21_dataflow_engine():
    n = max(2_000, int(50_000 * BENCH_SCALE))
    rng = np.random.default_rng(0)
    x = rng.normal(size=(max(1_000, n // 5), 32))

    rows = []
    record = {"workload_n": n, "knn_n": int(x.shape[0]), "modes": {}}

    # -- fusion axis ------------------------------------------------------
    baseline = None
    for label, fuse in (("sequential/unfused", False), ("sequential/fused", True)):
        result, elapsed, metrics = _elementwise_pipeline(n, fuse=fuse)
        if baseline is None:
            baseline = result
        assert result == baseline, "fusion changed results"
        rows.append((
            f"elementwise {label}", elapsed * 1e3,
            metrics.executed_stages, metrics.fused_stages,
            metrics.peak_shard_records,
        ))
        record["modes"][f"elementwise_{label.replace('/', '_')}"] = {
            "wall_ms": elapsed * 1e3,
            "executed_stages": metrics.executed_stages,
            "fused_stages": metrics.fused_stages,
            "peak_shard_records": metrics.peak_shard_records,
        }

    # -- executor axis ----------------------------------------------------
    knn_baseline = None
    executors = (
        ("sequential", "sequential"),
        ("multiprocess", MultiprocessExecutor(min_parallel_records=0)),
    )
    for label, executor in executors:
        start = time.perf_counter()
        _, nbrs, _, metrics = beam_knn_graph(
            x, 10, n_clusters=16, nprobe=4, num_shards=8,
            executor=executor, seed=0,
        )
        elapsed = time.perf_counter() - start
        if knn_baseline is None:
            knn_baseline = nbrs
        np.testing.assert_array_equal(nbrs, knn_baseline)
        rows.append((
            f"knn build {label}", elapsed * 1e3,
            metrics.executed_stages, metrics.fused_stages,
            metrics.peak_shard_records,
        ))
        record["modes"][f"knn_{label}"] = {
            "wall_ms": elapsed * 1e3,
            "executed_stages": metrics.executed_stages,
            "fused_stages": metrics.fused_stages,
            "peak_shard_records": metrics.peak_shard_records,
        }

    # The refactor's two checkable claims: fusion cuts physical stages and
    # peak footprint; backends agree bit-for-bit (asserted above).
    unfused = record["modes"]["elementwise_sequential_unfused"]
    fused = record["modes"]["elementwise_sequential_fused"]
    assert fused["executed_stages"] < unfused["executed_stages"]
    assert fused["fused_stages"] > 0
    assert fused["peak_shard_records"] <= unfused["peak_shard_records"]

    path = report_json("dataflow", record)
    report(
        "E21: dataflow engine — fusion and executor backends",
        format_rows(
            ("mode", "wall ms", "stages", "fused", "peak shard"), rows
        ) + f"\n(record: {path})",
    )
