"""E21 — downstream quality metrics across selectors (intro motivation).

The paper motivates subset selection by downstream value; this bench
compares the selectors on the broader quality metrics of ``repro.eval``:
class coverage, balance entropy, coverage radius (k-center objective),
facility location, and within-subset redundancy.

Expected shape: the submodular selection dominates random on objective and
redundancy while keeping class coverage/balance competitive; k-center wins
coverage radius (it optimizes exactly that) but loses the objective.
"""

import numpy as np

from common import format_rows, report
from repro.baselines import k_center, random_subset
from repro.core.distributed import distributed_greedy
from repro.core.greedy import greedy_heap
from repro.eval import evaluate_selection


def test_e21_quality_metrics(benchmark, cifar_ds, cifar_problem_09):
    problem = cifar_problem_09
    n = problem.n
    k = n // 10

    def compute():
        selections = {
            "centralized greedy": greedy_heap(problem, k).selected,
            "distributed (m=16,r=8,adaptive)": distributed_greedy(
                problem, k, m=16, rounds=8, adaptive=True, seed=0
            ).selected,
            "random": random_subset(problem, k, seed=0).selected,
            "k-center": k_center(
                problem, k, cifar_ds.embeddings, seed=0
            ).selected,
        }
        rows = []
        metrics = {}
        for label, selected in selections.items():
            m = evaluate_selection(
                problem, selected,
                labels=cifar_ds.labels, embeddings=cifar_ds.embeddings,
            )
            metrics[label] = m
            rows.append([
                label,
                float(m.objective),
                float(m.class_coverage * 100),
                float(m.class_balance_entropy * 100),
                float(m.coverage_radius),
                float(m.redundancy_per_point),
            ])
        return rows, metrics

    rows, metrics = benchmark.pedantic(compute, rounds=1, iterations=1)

    greedy_m = metrics["centralized greedy"]
    random_m = metrics["random"]
    kcenter_m = metrics["k-center"]
    assert greedy_m.objective > random_m.objective
    assert greedy_m.objective > kcenter_m.objective
    assert greedy_m.redundancy_per_point <= random_m.redundancy_per_point + 0.05
    # k-center optimizes the radius; it should win or tie there.
    assert kcenter_m.coverage_radius <= greedy_m.coverage_radius * 1.3
    dist_m = metrics["distributed (m=16,r=8,adaptive)"]
    assert dist_m.objective >= 0.8 * greedy_m.objective

    body = format_rows(
        ["selector", "objective", "class cov %", "balance %",
         "radius", "redundancy/pt"],
        rows,
    )
    report("Extension E21 — downstream quality metrics", body)
