"""Shared helpers for the benchmark harness: grid runner + table printing.

Benches register their regenerated tables via :func:`report`; the benchmark
``conftest`` replays every registered table in ``pytest_terminal_summary`` so
the output survives pytest's capture (and lands in ``bench_output.txt``).
Each table is also persisted under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: (title, body) pairs accumulated over the benchmark session.
REPORTS: List[Tuple[str, str]] = []

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(title: str, body: str) -> None:
    """Register a regenerated table for terminal-summary replay + disk."""
    REPORTS.append((title, body))
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    slug = "".join(c if c.isalnum() else "_" for c in title.lower())[:80]
    with open(os.path.join(_RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(f"{title}\n{body}\n")


def report_json(name: str, record: dict) -> str:
    """Persist a machine-readable benchmark record as ``BENCH_<name>.json``.

    Returns the path written, for logging.
    """
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
    return path

from repro.core.distributed import (
    LinearDeltaSchedule,
    Partitioner,
    distributed_greedy,
    random_partitioner,
)
from repro.core.greedy import greedy_heap
from repro.core.normalization import normalize_one
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem


def centralized_score(problem: SubsetProblem, k: int) -> float:
    return PairwiseObjective(problem).value(greedy_heap(problem, k).selected)


def random_problem(
    n: int,
    *,
    alpha: float = 0.9,
    avg_degree: int = 4,
    seed: int = 0,
    utility_scale: float = 1.0,
) -> SubsetProblem:
    """A random symmetric-graph problem with continuous weights (no ties)."""
    from repro.graph.csr import NeighborGraph
    from repro.utils.rng import as_generator

    rng = as_generator(seed)
    n_edges = max(1, n * avg_degree // 2)
    sources = rng.integers(0, n, size=3 * n_edges)
    targets = rng.integers(0, n, size=3 * n_edges)
    keep = sources != targets
    sources, targets = sources[keep][:n_edges], targets[keep][:n_edges]
    weights = rng.random(sources.size) * 0.9 + 0.05
    graph = NeighborGraph.from_edges(n, sources, targets, weights)
    utilities = rng.random(n) * utility_scale
    return SubsetProblem.with_alpha(utilities, graph, alpha)


def run_partition_round_grid(
    problem: SubsetProblem,
    k: int,
    *,
    partitions: Sequence[int],
    rounds: Sequence[int],
    adaptive: bool = False,
    gamma: float = 0.75,
    partitioner: Partitioner = random_partitioner,
    seed: int = 0,
) -> Dict[Tuple[int, int], float]:
    """Raw objective for every (m, r) cell of a Fig. 3/4-style heatmap."""
    objective = PairwiseObjective(problem)
    scores: Dict[Tuple[int, int], float] = {}
    for m in partitions:
        for r in rounds:
            result = distributed_greedy(
                problem,
                k,
                m=m,
                rounds=r,
                adaptive=adaptive,
                schedule=LinearDeltaSchedule(gamma),
                partitioner=partitioner,
                seed=seed,
            )
            scores[(m, r)] = objective.value(result.selected)
    return scores


def normalize_grid(
    raw: Dict[Tuple[int, int], float], centralized: float
) -> Dict[Tuple[int, int], float]:
    """Paper normalization: centralized → 100, lowest observed → 0."""
    lowest = min(min(raw.values()), centralized)
    return {
        cell: normalize_one(score, centralized, lowest)
        for cell, score in raw.items()
    }


def format_heatmap(
    title: str,
    grid: Dict[Tuple[int, int], float],
    partitions: Sequence[int],
    rounds: Sequence[int],
    *,
    value_format: str = "{:6.0f}",
) -> str:
    """Render a partitions × rounds table like the paper's heatmaps."""
    lines = [title, "partitions \\ rounds " + "".join(f"{r:>7d}" for r in rounds)]
    for m in partitions:
        row = "".join(value_format.format(grid[(m, r)]) for r in rounds)
        lines.append(f"m={m:<3d}               {row}")
    return "\n".join(lines)


def format_rows(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a simple aligned table (first column wide, rest numeric)."""
    lines = [" | ".join(
        f"{h:>38s}" if i == 0 else f"{h:>14s}" for i, h in enumerate(headers)
    )]
    for row in rows:
        cells = [
            f"{cell:>38}" if i == 0 else (
                f"{cell:>14.2f}" if isinstance(cell, float) else f"{cell:>14}"
            )
            for i, cell in enumerate(row)
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)
