"""E7 — Figure 15: adaptive partitioning grid on ImageNet-like data.

Paper anchors (alpha = 0.9, 10 % subset, adaptive): (m=2, r=2) = 100,
(m=32, r=1) = 0, (m=32, r=32) = 88.
"""

import pytest

from common import (
    centralized_score,
    format_heatmap,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from conftest import PARTITIONS, ROUNDS, SUBSET_FRACTIONS
from repro.core.problem import SubsetProblem


def test_fig15_imagenet_adaptive(benchmark, imagenet_ds):
    problem = SubsetProblem.with_alpha(
        imagenet_ds.utilities, imagenet_ds.graph, 0.9
    )

    def compute():
        sections = []
        for fraction in SUBSET_FRACTIONS:
            k = int(problem.n * fraction)
            raw = run_partition_round_grid(
                problem, k, partitions=PARTITIONS, rounds=ROUNDS,
                adaptive=True, seed=1,
            )
            norm = normalize_grid(raw, centralized_score(problem, k))
            sections.append((fraction, norm))
        return sections

    sections = benchmark.pedantic(compute, rounds=1, iterations=1)
    for fraction, norm in sections:
        if fraction <= 0.11:
            assert norm[(2, 2)] == pytest.approx(100.0, abs=3.0)
        assert norm[(32, 32)] > norm[(32, 1)]
        body = format_heatmap(
            f"alpha=0.9, subset={int(fraction * 100)} %, ADAPTIVE "
            "(paper Fig. 15 anchors: m2r2=100, m32r1=0, m32r32=88)",
            norm,
            PARTITIONS,
            ROUNDS,
        )
        report(
            f"Figure 15 — ImageNet-like adaptive grid "
            f"(alpha=0.9, {int(fraction * 100)}% subset)",
            body,
        )
