"""E1 — Table 1: maximum dataset sizes in prior distributed-selection work.

The table itself is a literature summary; the reproducible claim is the last
row — this system handles a ground set (and subset) far beyond any single
machine's DRAM.  We verify it by instantiating the virtual perturbed dataset
at the paper's 13 B operating point and checking the machine model agrees
that neither the ground set nor the 6.5 B subset fits one machine.
"""

import numpy as np

from common import format_rows, report
from repro.cluster.machine import GB, MachineSpec, greedy_state_bytes
from repro.data.perturbed import PerturbedDataset
from repro.graph.knn import exact_knn
from repro.utils.rng import as_generator

PRIOR_WORK = [
    ("Barbosa et al. (2015)", "120", "1 M"),
    ("Mirzasoleiman et al. (2016)", "64", "80 M"),
    ("Ramalingam et al. (2021)", "700 k", "1.2 M"),
    ("Kumar et al. (2015)", "500", "1 M"),
    ("this paper", "6.5 B", "13 B"),
]


def test_table1_scale(benchmark):
    def build():
        rng = as_generator(0)
        base = rng.normal(size=(1_300_000 if False else 1300, 16))
        nbrs, sims = exact_knn(base, 10)
        # factor chosen so n = 13 B at the paper's base size; the virtual
        # store needs O(base) memory regardless of factor.
        ds = PerturbedDataset(
            base, rng.random(base.shape[0]), nbrs, sims, factor=10_000_000
        )
        return ds

    ds = benchmark(build)
    n_virtual = ds.n
    assert n_virtual == 13_000_000_000
    subset = n_virtual // 2
    machine = MachineSpec()  # 350 GB, the paper's per-partition budget
    ground_bytes = greedy_state_bytes(n_virtual)
    subset_bytes = greedy_state_bytes(subset)
    assert ground_bytes > machine.dram_bytes
    assert subset_bytes > machine.dram_bytes  # even the subset doesn't fit
    # The virtual store still serves arbitrary chunks.
    chunk = ds.embeddings(np.array([0, n_virtual - 1, n_virtual // 2]))
    assert chunk.shape == (3, 16)

    rows = [list(r) for r in PRIOR_WORK]
    body = format_rows(["work", "max subset", "ground set"], rows)
    body += (
        f"\n\nvirtual ground set: {n_virtual:,} points"
        f"\ngreedy state for ground set: {ground_bytes / GB:,.0f} GB"
        f" (machine DRAM: {machine.dram_bytes / GB:.0f} GB)"
        f"\ngreedy state for 50% subset: {subset_bytes / GB:,.0f} GB"
    )
    report("Table 1 — dataset scales in prior work vs this system", body)
