"""E12 — Figure 5: spatial distribution of the selected subset.

The paper t-SNEs CIFAR embeddings and shows that the centralized selection
spreads uniformly over the plane while many-partition selections form local
clusters (partitioning loses cross-partition edges, so per-partition greedy
over-picks by utility).  We substitute PCA for t-SNE (DESIGN.md) and
*quantify* the claim: rasterize the 2-D projection into a grid and measure
the entropy of the selected points' cell-occupancy distribution — uniform
spread = high entropy, local clusters = lower entropy.
"""

import numpy as np
import pytest

from common import format_rows, report
from repro.core.distributed import distributed_greedy
from repro.core.problem import SubsetProblem

GRID = 24


def _pca_2d(embeddings: np.ndarray) -> np.ndarray:
    x = embeddings - embeddings.mean(axis=0)
    # Top-2 right singular vectors; SVD on the (d x d) covariance is cheap.
    _, _, vt = np.linalg.svd(x[: min(len(x), 4000)], full_matrices=False)
    return x @ vt[:2].T


def _occupancy_entropy(points_2d: np.ndarray, selected: np.ndarray) -> float:
    lo = points_2d.min(axis=0)
    hi = points_2d.max(axis=0)
    cells = np.floor(
        (points_2d[selected] - lo) / (hi - lo + 1e-12) * GRID
    ).astype(int)
    cells = np.clip(cells, 0, GRID - 1)
    flat = cells[:, 0] * GRID + cells[:, 1]
    counts = np.bincount(flat, minlength=GRID * GRID).astype(float)
    p = counts / counts.sum()
    nz = p[p > 0]
    return float(-(nz * np.log(nz)).sum())


def _ascii_raster(points_2d, selected, size=30):
    lo, hi = points_2d.min(axis=0), points_2d.max(axis=0)
    cells = np.floor((points_2d[selected] - lo) / (hi - lo + 1e-12) * size)
    cells = np.clip(cells.astype(int), 0, size - 1)
    canvas = np.zeros((size, size), dtype=int)
    for cx, cy in cells:
        canvas[cy, cx] += 1
    chars = " .:*#@"
    quantized = np.minimum(canvas, len(chars) - 1)
    return "\n".join("".join(chars[v] for v in row) for row in quantized)


def test_fig5_selection_spatial_uniformity(benchmark, cifar_ds):
    problem = SubsetProblem.with_alpha(cifar_ds.utilities, cifar_ds.graph, 0.9)
    from repro.core.objective import PairwiseObjective

    objective = PairwiseObjective(problem)
    k = problem.n // 10

    def compute():
        projected = _pca_2d(cifar_ds.embeddings)
        out = {}
        for m in (1, 8, 32):
            selected = distributed_greedy(
                problem, k, m=m, rounds=1, seed=0
            ).selected
            out[m] = (
                _occupancy_entropy(projected, selected),
                objective.pairwise(selected) / k,
                _ascii_raster(projected, selected),
            )
        return out

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Fig. 5's claim, quantified: the centralized selection avoids similar
    # pairs (near-zero within-selection similarity mass); many-partition
    # selections form local clusters (cross-partition edges were invisible
    # to the per-partition greedy, so similar pairs slip in).
    cluster_mass = {m: mass for m, (_e, mass, _r) in results.items()}
    assert cluster_mass[1] <= cluster_mass[8] <= cluster_mass[32] + 1e-9
    assert cluster_mass[32] > cluster_mass[1]

    rows = [
        [f"{m} partition(s)", float(e), float(mass)]
        for m, (e, mass, _r) in results.items()
    ]
    body = format_rows(
        ["selection", "occupancy entropy (nats)",
         "similar-pair mass per point"],
        rows,
    )
    body += "\n\nselection raster, m=1 (centralized):\n"
    body += results[1][2]
    body += "\n\nselection raster, m=32:\n"
    body += results[32][2]
    report("Figure 5 — subset spatial distribution (PCA substitute)", body)
