"""E8 — Table 2: bounding statistics for alpha = 0.9.

For each sampling configuration (none / 30 % / 70 % × uniform / weighted)
and target subset size (10 / 50 / 80 %): included points, excluded points,
grow/shrink rounds, and the score of bounding + centralized greedy relative
to plain centralized greedy (paper reports values near 100 %, occasionally
above).

Paper shapes to hold: (a) exact bounding decides little except at extreme
subset sizes and excludes more for small targets / includes more for large
ones, (b) 30 % sampling decides far more than 70 %, (c) for 80 % subsets
approximate bounding often finds (almost) the entire subset, (d) scores stay
high — mostly above 75 %.
"""

import numpy as np
import pytest

from common import format_rows, report
from repro.core.bounding import bound
from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem

CONFIGS = [
    ("no sampling", "exact", None, 1.0),
    ("30 % uniform", "approximate", "uniform", 0.3),
    ("70 % uniform", "approximate", "uniform", 0.7),
    ("30 % weighted", "approximate", "weighted", 0.3),
    ("70 % weighted", "approximate", "weighted", 0.7),
]
FRACTIONS = (0.1, 0.5, 0.8)


def _score_after_bounding(problem, result, k, objective):
    """Bounding solution completed by warm centralized greedy."""
    if result.k_remaining == 0:
        return objective.value(result.solution)
    mask = np.zeros(problem.n, dtype=bool)
    mask[result.solution] = True
    penalty = problem.beta * problem.graph.neighbor_mass(mask)
    sub = problem.restrict(result.remaining)
    local = greedy_heap(
        sub, result.k_remaining, base_penalty=penalty[result.remaining]
    )
    chosen = np.concatenate([result.solution, result.remaining[local.selected]])
    return objective.value(chosen)


def test_table2_bounding(benchmark, cifar_ds):
    problem = SubsetProblem.with_alpha(cifar_ds.utilities, cifar_ds.graph, 0.9)
    objective = PairwiseObjective(problem)

    def compute():
        rows = []
        stats = {}
        for fraction in FRACTIONS:
            k = int(problem.n * fraction)
            central = objective.value(greedy_heap(problem, k).selected)
            for label, mode, sampler, p in CONFIGS:
                result = bound(
                    problem, k, mode=mode,
                    sampler=sampler or "uniform", p=p, seed=0,
                )
                score = _score_after_bounding(problem, result, k, objective)
                pct = score / central * 100.0 if central else 100.0
                rows.append(
                    [
                        f"{label} @ {int(fraction * 100)}%",
                        result.n_included,
                        result.n_excluded,
                        result.grow_rounds,
                        result.shrink_rounds,
                        float(pct),
                    ]
                )
                stats[(label, fraction)] = (result, pct)
        return rows, stats

    rows, stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    exact10 = stats[("no sampling", 0.1)][0]
    exact80 = stats[("no sampling", 0.8)][0]
    # (a) exact: small targets exclude, large targets include (Sec. 6.2).
    assert exact10.n_excluded >= exact80.n_excluded
    assert exact80.n_included >= exact10.n_included
    # (b) 30 % neighborhoods decide at least as much as 70 % ones.
    for fraction in FRACTIONS:
        d30 = stats[("30 % uniform", fraction)][0]
        d70 = stats[("70 % uniform", fraction)][0]
        assert (
            d30.n_included + d30.n_excluded >= d70.n_included + d70.n_excluded
        )
    # (c) for the 80 % target, 30 % sampling finds (almost) everything.
    d = stats[("30 % uniform", 0.8)][0]
    assert d.n_included >= 0.9 * int(problem.n * 0.8)
    # (d) scores stay high.
    for (label, fraction), (_res, pct) in stats.items():
        assert pct >= 70.0, f"{label} @ {fraction}: {pct:.1f}%"

    body = format_rows(
        ["config @ subset", "included", "excluded", "grow", "shrink",
         "score vs centralized %"],
        rows,
    )
    body += (
        "\n\npaper anchors (CIFAR-100, alpha=0.9): exact@10% excludes 10 769"
        " in 16 shrink rounds; 30% uniform@10% excludes ~26 k; 30%"
        " uniform@80% includes 39 999/40 000 with score 85.95 %;"
        " 70% uniform decides far less than 30 %."
    )
    report("Table 2 — bounding statistics (alpha=0.9, CIFAR-like)", body)
