"""E9 — Table 3: worst-case partitioning ablation (Sec. 6.4).

Round 1 stuffs the centralized solution into one partition (10 partitions
total), later rounds repartition randomly.  Paper shape: a large penalty for
1 round (27 % random vs 10 % worst-case), shrinking to 2–3 points with 8+
rounds; adaptive variants recover faster.
"""

import pytest

from common import (
    centralized_score,
    format_rows,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from repro.core.distributed import worst_case_partitioner
from repro.core.greedy import greedy_heap

ROUNDS = (1, 8, 16, 32)
M = 10


def test_table3_worst_case(benchmark, cifar_problem_09):
    problem = cifar_problem_09
    k = problem.n // 10

    def compute():
        central = centralized_score(problem, k)
        reference = greedy_heap(problem, k).selected
        grids = {}
        for adaptive in (False, True):
            random_raw = run_partition_round_grid(
                problem, k, partitions=(M,), rounds=ROUNDS,
                adaptive=adaptive, seed=0,
            )
            worst_raw = run_partition_round_grid(
                problem, k, partitions=(M,), rounds=ROUNDS,
                adaptive=adaptive, seed=0,
                partitioner=worst_case_partitioner(reference),
            )
            # Normalize both against the same (centralized, lowest) pair.
            lowest = min(min(random_raw.values()), min(worst_raw.values()))
            span = central - lowest
            to_pct = lambda v: (v - lowest) / span * 100.0 if span > 0 else 100.0
            grids[adaptive] = (
                {r: to_pct(random_raw[(M, r)]) for r in ROUNDS},
                {r: to_pct(worst_raw[(M, r)]) for r in ROUNDS},
            )
        return grids

    grids = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for label, adaptive in (("non-adaptive", False), ("adaptive", True)):
        random_scores, worst_scores = grids[adaptive]
        for r in ROUNDS:
            rows.append(
                [
                    f"{label}, {r} round(s)",
                    float(random_scores[r]),
                    float(worst_scores[r]),
                    float(random_scores[r] - worst_scores[r]),
                ]
            )
        # Multi-round runs must shrink the worst-case penalty (Table 3:
        # 17 pp at 1 round -> 2-3 pp at 8+ rounds).
        gap_1 = random_scores[1] - worst_scores[1]
        gap_32 = random_scores[32] - worst_scores[32]
        assert gap_32 <= max(gap_1, 6.0)
        assert worst_scores[32] > worst_scores[1]

    body = format_rows(
        ["configuration", "random %", "worst-case %", "penalty pp"], rows
    )
    body += (
        "\n\npaper (CIFAR-100, 10 % subset, 10 partitions): random 27/63/74/83"
        " vs worst 10/60/71/81 (non-adaptive, 1/8/16/32 rounds);"
        " adaptive random 27/89/94/97 vs worst 10/87/91/94."
    )
    report("Table 3 — worst-case partitioning ablation", body)
