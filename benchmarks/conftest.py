"""Benchmark configuration and shared fixtures.

Scale control
-------------
``REPRO_BENCH_SCALE`` scales dataset sizes (default 0.1 → CIFAR-like 5 000
points, ImageNet-like 8 000).  ``REPRO_BENCH_SCALE=1`` runs the paper-sized
CIFAR (50 000) and an 80 000-point ImageNet-like stand-in — slow but
faithful.  ``REPRO_BENCH_FULL=1`` additionally sweeps the 50 % / 80 % subset
sizes of the appendix figures (default: the main-body 10 % only).

Every bench prints the table/figure it regenerates; the paper's numbers are
embedded alongside for eyeball comparison and recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.core.problem import SubsetProblem
from repro.data.registry import load_dataset

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))
FULL_SWEEP = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

CIFAR_N = max(1000, int(50_000 * BENCH_SCALE))
IMAGENET_N = max(2000, int(80_000 * BENCH_SCALE))

PARTITIONS = (1, 2, 4, 8, 16, 32)
ROUNDS = (1, 2, 4, 8, 16, 32)
ALPHAS = (0.9, 0.5, 0.1)
SUBSET_FRACTIONS = (0.1, 0.5, 0.8) if FULL_SWEEP else (0.1,)


@pytest.fixture(scope="session")
def cifar_ds():
    return load_dataset("cifar100_like", n_points=CIFAR_N, seed=0)


@pytest.fixture(scope="session")
def imagenet_ds():
    return load_dataset("imagenet_like", n_points=IMAGENET_N, seed=1)


@pytest.fixture(scope="session")
def cifar_problem_09(cifar_ds):
    return SubsetProblem.with_alpha(cifar_ds.utilities, cifar_ds.graph, 0.9)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay every regenerated table after the run (survives capture)."""
    import os
    import sys

    sys.path.insert(0, os.path.dirname(__file__))
    from common import REPORTS

    if not REPORTS:
        return
    tr = terminalreporter
    tr.section("reproduced tables and figures")
    for title, body in REPORTS:
        tr.write_line("")
        tr.write_line(f"### {title}")
        for line in body.splitlines():
            tr.write_line(line)
