"""CI gates over the ``BENCH_dataflow.json`` record.

Two checks, both read from the record ``test_dataflow_engine.py`` emits:

1. **Pool-persistence probe** (default: ``small_stages_multiprocess`` vs
   ``small_stages_sequential``): the many-small-stages workload isolates
   per-stage worker-pool overhead — the cost the persistent pool exists to
   bound.  The gate is on *per-stage overhead*,
   ``(candidate_wall - baseline_wall) / n_stages``: steady-state IPC costs
   well under 1 ms/stage, while a fork-per-stage regression costs
   10–30 ms/stage, so the default 5 ms ceiling has an order of magnitude
   of slack on both sides.  This replaced the old
   ``knn_multiprocess <= 2x knn_sequential`` gate — kNN wall time is
   compute-dominated and proved noisy on shared CI runners, and a ratio
   against the ~1 ms sequential small-stages baseline would be noisier
   still; absolute per-stage overhead measures the executor architecture
   directly.

2. **Optimizer shuffle-volume gate** (``--shuffle-candidate`` vs
   ``--shuffle-baseline``, default ``knn_sequential`` vs
   ``knn_sequential_noopt``): the plan optimizer must *strictly* shrink
   the kNN beam's ``shuffled_records``; combiner lifting or reshard
   elision silently not firing fails CI even when results stay correct.

3. **Closure-broadcast gate** (``--broadcast-mode``, default
   ``knn_remote``): the remote kNN build must have broadcast something
   (the embedding matrix is far above the threshold) and must satisfy
   ``broadcast_bytes <= unique_broadcast_bytes * n_workers`` — each
   content-addressed blob ships to each worker at most once, i.e.
   per-stage payload bytes stay flat as stage count grows.  A regression
   that silently re-ships DoFn captures per stage multiplies the left
   side by the stage count and fails here even though results stay
   correct.

4. **Columnar-runtime gate** (``--columnar-candidate`` vs
   ``--columnar-baseline``, default ``knn_columnar`` vs
   ``knn_sequential``): the vectorized shard runtime must beat the
   row-path sequential kNN build by at least 20% wall time
   (``knn_columnar <= 0.8 x knn_sequential``) and must have actually
   vectorized something (``vectorized_stages > 0``).  Both modes are
   best-of-3 of the same compute-heavy build in the same process, so the
   ratio is stable where absolute walls are not; a silent fallback to
   the row path shows up as a ratio near 1.0 and fails here.

5. **Worker-shuffle gate** (``--p2p-mode``, default ``knn_remote_p2p``):
   the remote kNN build under ``shuffle="worker"`` must have moved its
   shuffle buckets peer-to-peer (``p2p_shuffle_bytes > 0``) with **zero**
   bucket bytes crossing the driver on the fault-free path
   (``driver_shuffle_bytes == 0`` and ``bucket_refetches == 0``).  A
   regression that silently routes buckets back through the driver —
   the exchange declining, a worker fetch quietly failing over — keeps
   results bit-identical and fails only here.

6. **Adaptive-planning gate** (``--adaptive-candidate`` vs
   ``--adaptive-baseline``, default ``knn_adaptive`` vs ``knn_columnar``):
   letting the cost-model planner choose the engine knobs must stay
   within 10% of the hand-tuned columnar build
   (``knn_adaptive <= 1.1 x knn_columnar``), and after one calibration
   drive the model must actually track the machine — the median
   per-stage symmetric relative error between ``predicted_ms`` and
   ``actual_ms`` must stay under ``--max-adaptive-rel-err``.  A planner
   that picks pathological shard counts fails the ratio; a calibration
   regression (constants no longer fitted from the observed profiles)
   fails the error bound.

7. **Incremental-reuse gate** (``--incremental-mode``, default
   ``knn_incremental``): a 10% delta drive against a warm checkpoint
   directory must actually reuse shards (``reused_shards > 0``) and must
   re-execute strictly less than ``--max-incremental-stage-ratio``
   (default 0.5) of the cold drive's stages.  A fingerprint or
   content-digest regression keeps results bit-identical — the bench
   asserts that inline — but silently recomputes everything, and fails
   only here.

Usage::

    python benchmarks/check_dataflow_regression.py \
        benchmarks/results/BENCH_dataflow.json --max-stage-overhead-ms 5.0
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="path to BENCH_dataflow.json")
    parser.add_argument("--baseline", default="small_stages_sequential",
                        help="probe mode used as the zero-overhead reference")
    parser.add_argument("--candidate", default="small_stages_multiprocess",
                        help="probe mode whose per-stage overhead is gated")
    parser.add_argument("--max-stage-overhead-ms", type=float, default=5.0,
                        help="fail when (candidate - baseline) / n_stages "
                             "exceeds this many milliseconds")
    parser.add_argument("--shuffle-baseline", default="knn_sequential_noopt",
                        help="mode whose shuffled_records the optimizer "
                             "must beat (empty string skips the gate)")
    parser.add_argument("--shuffle-candidate", default="knn_sequential",
                        help="optimized mode whose shuffled_records must be "
                             "strictly lower")
    parser.add_argument("--broadcast-mode", default="knn_remote",
                        help="mode whose closure-broadcast volume is gated "
                             "(empty string skips the gate)")
    parser.add_argument("--columnar-baseline", default="knn_sequential",
                        help="row-runtime mode the columnar build must beat "
                             "(empty string skips the gate)")
    parser.add_argument("--columnar-candidate", default="knn_columnar",
                        help="columnar-runtime mode whose wall time is gated")
    parser.add_argument("--max-columnar-ratio", type=float, default=0.8,
                        help="fail when columnar wall exceeds this fraction "
                             "of the row baseline's wall")
    parser.add_argument("--p2p-mode", default="knn_remote_p2p",
                        help="worker-shuffle mode whose byte routing is "
                             "gated (empty string skips the gate)")
    parser.add_argument("--adaptive-baseline", default="knn_columnar",
                        help="hand-tuned mode the adaptive build is gated "
                             "against (empty string skips the gate)")
    parser.add_argument("--adaptive-candidate", default="knn_adaptive",
                        help="planner-driven mode whose wall time and "
                             "prediction error are gated")
    parser.add_argument("--max-adaptive-ratio", type=float, default=1.1,
                        help="fail when adaptive wall exceeds this fraction "
                             "of the hand-tuned baseline's wall")
    parser.add_argument("--max-adaptive-rel-err", type=float, default=0.9,
                        help="fail when the median predicted-vs-actual "
                             "symmetric relative error exceeds this")
    parser.add_argument("--incremental-mode", default="knn_incremental",
                        help="delta-drive mode whose shard reuse is gated "
                             "(empty string skips the gate)")
    parser.add_argument("--max-incremental-stage-ratio", type=float,
                        default=0.5,
                        help="fail when the delta drive executes at least "
                             "this fraction of the cold drive's stages")
    args = parser.parse_args(argv)

    with open(args.record) as fh:
        record = json.load(fh)
    modes = record["modes"]

    try:
        n_stages = int(record["small_stages_n_stages"])
        baseline = float(modes[args.baseline]["wall_ms"])
        candidate = float(modes[args.candidate]["wall_ms"])
    except KeyError as missing:
        print(f"key {missing} not found in {args.record}", file=sys.stderr)
        return 2
    per_stage = max(0.0, candidate - baseline) / max(1, n_stages)
    print(
        f"{args.candidate}: {candidate:.1f} ms, "
        f"{args.baseline}: {baseline:.1f} ms over {n_stages} stages — "
        f"{per_stage:.2f} ms/stage pool overhead "
        f"(max allowed {args.max_stage_overhead_ms:.2f})"
    )
    if per_stage > args.max_stage_overhead_ms:
        print(
            f"FAIL: {per_stage:.2f} ms/stage pool overhead "
            f"(> {args.max_stage_overhead_ms:.2f}) — executor-layer "
            "regression (persistent pool no longer amortizing per-stage "
            "startup?)",
            file=sys.stderr,
        )
        return 1
    print("OK: persistent pool overhead within budget")

    if args.shuffle_baseline:
        try:
            shuffled_naive = int(
                modes[args.shuffle_baseline]["shuffled_records"]
            )
            shuffled_opt = int(
                modes[args.shuffle_candidate]["shuffled_records"]
            )
        except KeyError as missing:
            print(
                f"shuffle-gate mode/field {missing} not found in "
                f"{args.record}",
                file=sys.stderr,
            )
            return 2
        print(
            f"{args.shuffle_candidate}: {shuffled_opt} shuffled records, "
            f"{args.shuffle_baseline}: {shuffled_naive}"
        )
        if shuffled_opt >= shuffled_naive:
            print(
                f"FAIL: optimizer did not shrink shuffle volume "
                f"({shuffled_opt} >= {shuffled_naive}) — combiner lifting "
                "or reshard elision regressed",
                file=sys.stderr,
            )
            return 1
        print("OK: optimizer shrinks shuffle volume")

    if args.broadcast_mode:
        try:
            mode = modes[args.broadcast_mode]
            shipped = int(mode["broadcast_bytes"])
            unique = int(mode["unique_broadcast_bytes"])
            n_workers = int(mode["n_workers"])
        except KeyError as missing:
            print(
                f"broadcast-gate mode/field {missing} not found in "
                f"{args.record}",
                file=sys.stderr,
            )
            return 2
        ceiling = unique * n_workers
        print(
            f"{args.broadcast_mode}: {shipped} broadcast bytes shipped, "
            f"{unique} unique blob bytes x {n_workers} workers "
            f"(ceiling {ceiling})"
        )
        if shipped == 0:
            print(
                "FAIL: nothing broadcast — large DoFn captures are being "
                "inlined into every stage payload again",
                file=sys.stderr,
            )
            return 1
        if shipped > ceiling:
            print(
                f"FAIL: broadcast volume {shipped} exceeds once-per-worker "
                f"ceiling {ceiling} — captures are re-shipping per stage",
                file=sys.stderr,
            )
            return 1
        print("OK: closure broadcast ships each blob once per worker")

    if args.columnar_baseline:
        try:
            row_wall = float(modes[args.columnar_baseline]["wall_ms"])
            col = modes[args.columnar_candidate]
            col_wall = float(col["wall_ms"])
            vectorized = int(col["vectorized_stages"])
        except KeyError as missing:
            print(
                f"columnar-gate mode/field {missing} not found in "
                f"{args.record}",
                file=sys.stderr,
            )
            return 2
        ratio = col_wall / row_wall if row_wall > 0 else float("inf")
        print(
            f"{args.columnar_candidate}: {col_wall:.1f} ms, "
            f"{args.columnar_baseline}: {row_wall:.1f} ms — ratio "
            f"{ratio:.3f} (max allowed {args.max_columnar_ratio:.2f}), "
            f"{vectorized} vectorized stages"
        )
        if vectorized == 0:
            print(
                "FAIL: columnar mode executed zero vectorized stages — "
                "the batch kernels silently fell back to the row path",
                file=sys.stderr,
            )
            return 1
        if ratio > args.max_columnar_ratio:
            print(
                f"FAIL: columnar wall ratio {ratio:.3f} exceeds "
                f"{args.max_columnar_ratio:.2f} — the vectorized shard "
                "runtime no longer pays for itself on the kNN build",
                file=sys.stderr,
            )
            return 1
        print("OK: columnar runtime beats the row baseline")

    if args.p2p_mode:
        try:
            mode = modes[args.p2p_mode]
            p2p_bytes = int(mode["p2p_shuffle_bytes"])
            driver_bytes = int(mode["driver_shuffle_bytes"])
            refetches = int(mode["bucket_refetches"])
        except KeyError as missing:
            print(
                f"p2p-gate mode/field {missing} not found in {args.record}",
                file=sys.stderr,
            )
            return 2
        print(
            f"{args.p2p_mode}: {p2p_bytes} bucket bytes peer-to-peer, "
            f"{driver_bytes} through the driver, {refetches} refetches"
        )
        if p2p_bytes == 0:
            print(
                "FAIL: zero peer-to-peer shuffle bytes — the worker "
                "exchange silently declined and every bucket crossed the "
                "driver again",
                file=sys.stderr,
            )
            return 1
        if driver_bytes != 0 or refetches != 0:
            print(
                f"FAIL: fault-free worker shuffle moved {driver_bytes} "
                f"bucket bytes through the driver ({refetches} refetches) "
                "— the p2p data plane is leaking onto the driver path",
                file=sys.stderr,
            )
            return 1
        print("OK: worker shuffle keeps bucket bytes off the driver")

    if args.adaptive_baseline:
        try:
            tuned_wall = float(modes[args.adaptive_baseline]["wall_ms"])
            adaptive = modes[args.adaptive_candidate]
            adaptive_wall = float(adaptive["wall_ms"])
            median_rel_err = float(adaptive["median_rel_err"])
        except KeyError as missing:
            print(
                f"adaptive-gate mode/field {missing} not found in "
                f"{args.record}",
                file=sys.stderr,
            )
            return 2
        ratio = adaptive_wall / tuned_wall if tuned_wall > 0 else float("inf")
        print(
            f"{args.adaptive_candidate}: {adaptive_wall:.1f} ms, "
            f"{args.adaptive_baseline}: {tuned_wall:.1f} ms — ratio "
            f"{ratio:.3f} (max allowed {args.max_adaptive_ratio:.2f}), "
            f"median predicted-vs-actual rel err {median_rel_err:.3f} "
            f"(max allowed {args.max_adaptive_rel_err:.2f})"
        )
        if ratio > args.max_adaptive_ratio:
            print(
                f"FAIL: adaptive wall ratio {ratio:.3f} exceeds "
                f"{args.max_adaptive_ratio:.2f} — the planner's knob "
                "choices regressed vs the hand-tuned configuration",
                file=sys.stderr,
            )
            return 1
        if median_rel_err > args.max_adaptive_rel_err:
            print(
                f"FAIL: median predicted-vs-actual relative error "
                f"{median_rel_err:.3f} exceeds "
                f"{args.max_adaptive_rel_err:.2f} — cost-model calibration "
                "no longer tracks the machine",
                file=sys.stderr,
            )
            return 1
        print("OK: adaptive planning within budget and calibrated")

    if args.incremental_mode:
        try:
            mode = modes[args.incremental_mode]
            reused = int(mode["reused_shards"])
            delta_stages = int(mode["executed_stages"])
            cold_stages = int(mode["cold_stages"])
        except KeyError as missing:
            print(
                f"incremental-gate mode/field {missing} not found in "
                f"{args.record}",
                file=sys.stderr,
            )
            return 2
        ratio = (
            delta_stages / cold_stages if cold_stages > 0 else float("inf")
        )
        print(
            f"{args.incremental_mode}: {delta_stages} delta-drive stages "
            f"vs {cold_stages} cold — ratio {ratio:.3f} (max allowed "
            f"{args.max_incremental_stage_ratio:.2f}), "
            f"{reused} shards reused"
        )
        if reused == 0:
            print(
                "FAIL: the delta drive reused zero shards — shard "
                "fingerprinting or content-digested checkpoints regressed "
                "and every branch recomputed",
                file=sys.stderr,
            )
            return 1
        if ratio >= args.max_incremental_stage_ratio:
            print(
                f"FAIL: delta drive executed {ratio:.3f} of the cold "
                f"drive's stages (>= {args.max_incremental_stage_ratio:.2f})"
                " — the invalidation cone is wider than the delta",
                file=sys.stderr,
            )
            return 1
        print("OK: delta drive recomputes only the invalidated cone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
