"""CI gate: fail when the multiprocess backend regresses vs sequential.

Reads the ``BENCH_dataflow.json`` record written by
``test_dataflow_engine.py`` and exits non-zero when the candidate mode's
wall time exceeds the baseline mode's by more than ``--max-ratio``.  The
default comparison (knn_multiprocess vs knn_sequential, 2x) is the guard
that keeps the persistent worker pool from sliding back to the
fork-per-stage overheads that once made parallelism a net slowdown.

Usage::

    python benchmarks/check_dataflow_regression.py \
        benchmarks/results/BENCH_dataflow.json --max-ratio 2.0
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="path to BENCH_dataflow.json")
    parser.add_argument("--baseline", default="knn_sequential",
                        help="mode key used as the reference wall time")
    parser.add_argument("--candidate", default="knn_multiprocess",
                        help="mode key that must not regress")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when candidate/baseline exceeds this")
    args = parser.parse_args(argv)

    with open(args.record) as fh:
        modes = json.load(fh)["modes"]
    try:
        baseline = float(modes[args.baseline]["wall_ms"])
        candidate = float(modes[args.candidate]["wall_ms"])
    except KeyError as missing:
        print(f"mode {missing} not found in {args.record}", file=sys.stderr)
        return 2
    ratio = candidate / baseline if baseline > 0 else float("inf")
    print(
        f"{args.candidate}: {candidate:.1f} ms, "
        f"{args.baseline}: {baseline:.1f} ms, "
        f"ratio {ratio:.2f} (max allowed {args.max_ratio:.2f})"
    )
    if ratio > args.max_ratio:
        print(
            f"FAIL: {args.candidate} is {ratio:.2f}x {args.baseline} "
            f"(> {args.max_ratio:.2f}x) — executor-layer regression",
            file=sys.stderr,
        )
        return 1
    print("OK: parallel backend within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
