"""E6 — Figures 4 and 14: adaptive partitioning on CIFAR-like data.

Paper shape: adaptive dominates non-adaptive cell-wise; with few partitions
and ≥2 rounds the adaptive runs collapse to one partition and reach ~100
(e.g. alpha=0.9, m=2, r=2 → 100 adaptive vs 84 non-adaptive).
"""

import pytest

from common import (
    centralized_score,
    format_heatmap,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from conftest import ALPHAS, PARTITIONS, ROUNDS, SUBSET_FRACTIONS
from repro.core.problem import SubsetProblem


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig4_cifar_adaptive(benchmark, cifar_ds, alpha):
    problem = SubsetProblem.with_alpha(cifar_ds.utilities, cifar_ds.graph, alpha)

    def compute():
        sections = []
        for fraction in SUBSET_FRACTIONS:
            k = int(problem.n * fraction)
            central = centralized_score(problem, k)
            raw_plain = run_partition_round_grid(
                problem, k, partitions=PARTITIONS, rounds=ROUNDS, seed=0
            )
            raw_adaptive = run_partition_round_grid(
                problem, k, partitions=PARTITIONS, rounds=ROUNDS,
                adaptive=True, seed=0,
            )
            sections.append(
                (
                    fraction,
                    normalize_grid(raw_plain, central),
                    normalize_grid(raw_adaptive, central),
                )
            )
        return sections

    sections = benchmark.pedantic(compute, rounds=1, iterations=1)
    for fraction, plain, adaptive in sections:
        if fraction <= 0.11:
            # Fig. 14's signature: m=2, r>=2 collapses to centralized.
            assert adaptive[(2, 2)] == pytest.approx(100.0, abs=3.0)
        # Adaptive ~dominates non-adaptive on aggregate.
        mean_plain = sum(plain.values()) / len(plain)
        mean_adaptive = sum(adaptive.values()) / len(adaptive)
        assert mean_adaptive >= mean_plain - 1.0
        body = format_heatmap(
            f"alpha={alpha}, subset={int(fraction * 100)} %, ADAPTIVE "
            "(paper Fig. 4/14 anchors for alpha=0.9/10 %: m2r2=100, "
            "m32r1=2, m32r32=89)",
            adaptive,
            PARTITIONS,
            ROUNDS,
        )
        report(
            f"Figure 4/14 — CIFAR-like adaptive grid "
            f"(alpha={alpha}, {int(fraction * 100)}% subset)",
            body,
        )
