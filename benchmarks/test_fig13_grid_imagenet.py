"""E5 — Figure 13: partitions × rounds grid on ImageNet-like data,
non-adaptive partitioning.

Paper anchors (alpha = 0.9, 10 % subset): (m=2, r=1) = 86, (m=2, r=32) = 98,
(m=32, r=1) = 0, (m=32, r=32) = 58.
"""

import pytest

from common import (
    centralized_score,
    format_heatmap,
    normalize_grid,
    report,
    run_partition_round_grid,
)
from conftest import PARTITIONS, ROUNDS, SUBSET_FRACTIONS
from repro.core.problem import SubsetProblem


@pytest.mark.parametrize("alpha", (0.9, 0.1))
def test_fig13_imagenet_nonadaptive(benchmark, imagenet_ds, alpha):
    problem = SubsetProblem.with_alpha(
        imagenet_ds.utilities, imagenet_ds.graph, alpha
    )

    def compute():
        sections = []
        for fraction in SUBSET_FRACTIONS:
            k = int(problem.n * fraction)
            raw = run_partition_round_grid(
                problem, k, partitions=PARTITIONS, rounds=ROUNDS, seed=1
            )
            norm = normalize_grid(raw, centralized_score(problem, k))
            sections.append((fraction, norm))
        return sections

    sections = benchmark.pedantic(compute, rounds=1, iterations=1)
    for fraction, norm in sections:
        assert norm[(2, 32)] > norm[(32, 1)]
        assert norm[(32, 32)] > norm[(32, 1)]
        body = format_heatmap(
            f"alpha={alpha}, subset={int(fraction * 100)} % "
            "(paper Fig. 13 anchors for alpha=0.9/10 %: "
            "m2r1=86, m2r32=98, m32r1=0, m32r32=58)",
            norm,
            PARTITIONS,
            ROUNDS,
        )
        report(
            f"Figure 13 — ImageNet-like non-adaptive grid "
            f"(alpha={alpha}, {int(fraction * 100)}% subset)",
            body,
        )
