"""E10 — Section 6.3: scalability on the perturbed (13 B-style) dataset.

We build the virtual Perturbed dataset at a laptop-scale expansion factor,
materialize its (deterministic) similarity graph chunk-by-chunk, and run the
paper's 13 B protocol: 16 partitions, alpha = 0.9, rounds ∈ {1, 2, 8}, for
10 % and 50 % subsets, plus exact and approximate bounding.

Paper shapes: the raw objective increases with rounds (1 058 841 312 →
1 092 474 410 → 1 145 682 717 at 13 B / 10 %); exact bounding includes
~0.007 % and excludes ~10 %; approximate (30 %) bounding includes ~0.7 %
and excludes ~60 %, i.e. far more than exact.
"""

import numpy as np
import pytest

from common import format_rows, report
from repro.core.bounding import bound
from repro.core.distributed import distributed_greedy
from repro.core.objective import PairwiseObjective
from repro.core.problem import SubsetProblem
from repro.data.perturbed import PerturbedDataset
from repro.data.registry import load_dataset
from repro.graph.csr import NeighborGraph

FACTOR = 20
N_BASE = 2000


def _materialize_graph(ds: PerturbedDataset) -> NeighborGraph:
    """Assemble the virtual similarity graph chunk-by-chunk.

    At true 13 B scale this stays a stream; here we collect it into a CSR to
    reuse the in-memory selectors (behaviourally identical, Sec. 5 shows the
    streamed variant).
    """
    sources, targets, weights = [], [], []
    chunk = 10_000
    for start in range(0, ds.n, chunk):
        ids = np.arange(start, min(start + chunk, ds.n), dtype=np.int64)
        for g, nbrs, sims in ds.neighbors(ids):
            sources.append(np.full(nbrs.size, g, dtype=np.int64))
            targets.append(nbrs)
            weights.append(sims)
    return NeighborGraph.from_edges(
        ds.n,
        np.concatenate(sources),
        np.concatenate(targets),
        np.concatenate(weights),
    )


@pytest.fixture(scope="module")
def perturbed_problem():
    base = load_dataset("cifar100_tiny", n_points=N_BASE, seed=3)
    ds = PerturbedDataset(
        base.embeddings,
        base.utilities,
        base.neighbors,
        base.similarities,
        factor=FACTOR,
        seed=3,
    )
    graph = _materialize_graph(ds)
    utilities = ds.utilities(np.arange(ds.n))
    return SubsetProblem.with_alpha(utilities, graph, 0.9), ds


def test_sec63_rounds_increase_score(benchmark, perturbed_problem):
    problem, ds = perturbed_problem
    objective = PairwiseObjective(problem)

    def compute():
        out = {}
        for fraction in (0.1, 0.5):
            k = int(problem.n * fraction)
            for rounds in (1, 2, 8):
                sel = distributed_greedy(
                    problem, k, m=16, rounds=rounds, seed=0
                )
                out[(fraction, rounds)] = objective.value(sel.selected)
        return out

    scores = benchmark.pedantic(compute, rounds=1, iterations=1)
    for fraction in (0.1, 0.5):
        series = [scores[(fraction, r)] for r in (1, 2, 8)]
        assert series[0] < series[1] < series[2], series

    rows = [
        [f"{int(f * 100)}% subset, {r} round(s)", float(scores[(f, r)])]
        for f in (0.1, 0.5)
        for r in (1, 2, 8)
    ]
    body = format_rows(["configuration", "raw objective"], rows)
    body += (
        f"\n\nvirtual ground set: {ds.n:,} points "
        f"({N_BASE} base x {FACTOR} copies; paper: 1.3 M x 10 k = 13 B)."
        "\npaper (13 B, 10 %): 1 058 841 312 -> 1 092 474 410 ->"
        " 1 145 682 717 for 1/2/8 rounds."
    )
    report("Section 6.3 — perturbed-dataset scalability (rounds sweep)", body)


def test_sec63_bounding_on_perturbed(benchmark, perturbed_problem):
    problem, ds = perturbed_problem
    k = problem.n // 10

    def compute():
        exact = bound(problem, k, mode="exact")
        approx = bound(problem, k, mode="approximate", p=0.3, seed=0)
        return exact, approx

    exact, approx = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Approximate decides far more than exact (paper: 60 % vs 10 % excluded).
    assert approx.n_excluded >= exact.n_excluded
    assert approx.n_included >= exact.n_included

    rows = [
        ["exact", exact.n_included, exact.n_excluded,
         float(100 * exact.n_excluded / problem.n)],
        ["approx uniform 30%", approx.n_included, approx.n_excluded,
         float(100 * approx.n_excluded / problem.n)],
    ]
    body = format_rows(
        ["bounding", "included", "excluded", "excluded %"], rows
    )
    body += (
        "\n\npaper (13 B, 10 %): exact includes 0.007 % / excludes 10 %;"
        " approximate 30 % includes 0.7 % / excludes 60 %."
    )
    report("Section 6.3 — bounding at perturbed scale", body)
