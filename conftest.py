"""Repo-level pytest options, shared by ``tests/`` and ``benchmarks/``.

``--executor`` selects the dataflow backend that executor-matrix tests run
against (CI runs the tier-1 suite once per backend — see
``.github/workflows/ci.yml``).  The invariance tests always compare all
backends pairwise regardless; this knob drives the end-to-end selector
path with a single chosen backend.

``--no-optimize`` flips the dataflow engine's *module default* for the
plan optimizer, so every test whose pipelines leave ``optimize`` unset
runs against the naive plan (CI runs a matrix entry with this on).  Tests
that assert optimizer behavior pass ``optimize=True`` explicitly and are
unaffected; the differential harness always exercises both plans.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        action="store",
        default="sequential",
        choices=("sequential", "thread", "multiprocess", "remote"),
        help="dataflow executor backend for executor-matrix tests "
             "(remote auto-spawns localhost worker daemons)",
    )
    parser.addoption(
        "--no-optimize",
        action="store_true",
        default=False,
        help="run the whole suite against the naive (unoptimized) "
             "dataflow plan",
    )


def pytest_configure(config):
    if config.getoption("--no-optimize"):
        from repro.dataflow import pcollection

        pcollection.DEFAULT_OPTIMIZE = False
