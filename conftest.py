"""Repo-level pytest options, shared by ``tests/`` and ``benchmarks/``.

``--executor`` selects the dataflow backend that executor-matrix tests run
against (CI runs the tier-1 suite once per backend — see
``.github/workflows/ci.yml``).  The invariance tests always compare all
backends pairwise regardless; this knob drives the end-to-end selector
path with a single chosen backend.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        action="store",
        default="sequential",
        choices=("sequential", "thread", "multiprocess"),
        help="dataflow executor backend for executor-matrix tests",
    )
