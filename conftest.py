"""Repo-level pytest options, shared by ``tests/`` and ``benchmarks/``.

``--executor`` selects the dataflow backend that executor-matrix tests run
against (CI runs the tier-1 suite once per backend — see
``.github/workflows/ci.yml``).  The invariance tests always compare all
backends pairwise regardless; this knob drives the end-to-end selector
path with a single chosen backend.

``--no-optimize`` flips the dataflow engine's *module default* for the
plan optimizer, so every test whose pipelines leave ``optimize`` unset
runs against the naive plan (CI runs a matrix entry with this on).  Tests
that assert optimizer behavior pass ``optimize=True`` explicitly and are
unaffected; the differential harness always exercises both plans.

``--no-columnar``/``--columnar`` do the same for the columnar shard
runtime's module default (``DEFAULT_COLUMNAR``): ``--no-columnar`` forces
the pure row path everywhere a pipeline leaves ``columnar`` unset;
``--columnar`` forces it on (the default is already "auto: on", so the
flag mostly documents intent in CI matrix entries).  The differential
harness always exercises both layouts regardless.

``--adaptive`` flips ``DEFAULT_ADAPTIVE`` in the engine options, so every
test whose options leave ``adaptive`` unset runs with the cost-model
planner choosing the engine knobs (results are bit-identical by design —
this matrix entry proves it suite-wide).

``--worker-shuffle`` flips the engine's module default shuffle data plane
(``DEFAULT_SHUFFLE``) to ``"worker"``, so every test whose pipelines
leave ``shuffle`` unset plans shuffles as worker-to-worker exchanges.
Non-remote backends ignore the plane (they have no peers), so the flag
only bites combined with ``--executor remote`` — where results must stay
bit-identical with the driver-merge plane.

``--incremental`` flips ``DEFAULT_VERIFY_REUSE`` in the incremental
driver, so every delta drive in the suite cross-checks its reused-shard
answer against a from-scratch recompute of the same version (results
must be bit-identical — this matrix entry proves the invalidation cone
is never too narrow, suite-wide).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--executor",
        action="store",
        default="sequential",
        choices=("sequential", "thread", "multiprocess", "remote"),
        help="dataflow executor backend for executor-matrix tests "
             "(remote auto-spawns localhost worker daemons)",
    )
    parser.addoption(
        "--no-optimize",
        action="store_true",
        default=False,
        help="run the whole suite against the naive (unoptimized) "
             "dataflow plan",
    )
    parser.addoption(
        "--no-columnar",
        action="store_true",
        default=False,
        help="run the whole suite against the pure row runtime "
             "(disables whole-shard vectorized execution)",
    )
    parser.addoption(
        "--columnar",
        action="store_true",
        default=False,
        help="run the whole suite under the columnar shard runtime "
             "(already the default; rejects combination with "
             "--no-columnar)",
    )
    parser.addoption(
        "--adaptive",
        action="store_true",
        default=False,
        help="run the whole suite with cost-model-driven adaptive "
             "planning on by default (results must stay bit-identical)",
    )
    parser.addoption(
        "--worker-shuffle",
        action="store_true",
        default=False,
        help="default the shuffle data plane to worker-to-worker "
             "exchanges (only bites with --executor remote; results "
             "must stay bit-identical)",
    )
    parser.addoption(
        "--incremental",
        action="store_true",
        default=False,
        help="cross-check every incremental delta drive against a "
             "from-scratch recompute (results must stay bit-identical)",
    )


def pytest_configure(config):
    if config.getoption("--no-optimize"):
        from repro.dataflow import pcollection

        pcollection.DEFAULT_OPTIMIZE = False
    no_columnar = config.getoption("--no-columnar")
    if no_columnar and config.getoption("--columnar"):
        raise pytest.UsageError("--columnar and --no-columnar conflict")
    if no_columnar:
        from repro.dataflow import pcollection

        pcollection.DEFAULT_COLUMNAR = False
    if config.getoption("--adaptive"):
        from repro.dataflow import options

        options.DEFAULT_ADAPTIVE = True
    if config.getoption("--worker-shuffle"):
        from repro.dataflow import pcollection

        pcollection.DEFAULT_SHUFFLE = "worker"
    if config.getoption("--incremental"):
        from repro.incremental import driver

        driver.DEFAULT_VERIFY_REUSE = True
