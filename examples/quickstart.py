"""Quickstart: select a 10 % subset of a CIFAR-like dataset.

Runs the paper's full pipeline — approximate bounding followed by
multi-round adaptive distributed greedy — and compares the result to the
centralized greedy reference.

Usage::

    python examples/quickstart.py [n_points]
"""

import sys

from repro import (
    DistributedSelector,
    SelectorConfig,
    SubsetProblem,
    centralized_reference,
    load_dataset,
)


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    print(f"loading cifar100_like with {n_points} points ...")
    ds = load_dataset("cifar100_like", n_points=n_points, seed=0)
    print(
        f"dataset: n={ds.n}, dim={ds.dim}, "
        f"avg kNN degree={ds.graph.average_degree():.1f}"
    )

    problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, alpha=0.9)
    k = ds.n // 10

    reference = centralized_reference(problem, k)
    print(f"centralized greedy objective: {reference.objective:.2f}")

    selector = DistributedSelector(
        problem,
        SelectorConfig(
            bounding="approximate",
            sampler="uniform",
            sampling_fraction=0.3,
            machines=16,
            rounds=8,
            adaptive=True,
        ),
    )
    report = selector.select(k, seed=0)

    b = report.bounding
    print(
        f"bounding: included {b.n_included}, excluded {b.n_excluded} "
        f"({b.grow_rounds} grow / {b.shrink_rounds} shrink rounds)"
    )
    if report.greedy is not None:
        print(
            f"distributed greedy: {len(report.greedy.rounds)} rounds, "
            f"max {report.greedy.max_partitions_used} partitions"
        )
    print(
        f"selected {len(report)} points, objective {report.objective:.2f} "
        f"({report.objective / reference.objective * 100:.2f} % of centralized)"
    )


if __name__ == "__main__":
    main()
