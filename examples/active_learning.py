"""Downstream payoff: train on a selected subset vs a random subset.

The paper's motivation (Sec. 1) is that a well-selected subset trains a
better model than a random subset of the same size.  This example closes the
loop offline: train the coarse classifier on (a) the submodular-selected
10 % subset and (b) a random 10 % subset, then compare held-out accuracy.
The selected subset favors uncertain-but-diverse points and should match or
beat random selection.

Usage::

    python examples/active_learning.py [n_points]
"""

import sys

import numpy as np

from repro import SubsetProblem, load_dataset
from repro.data.classifier import CoarseClassifier


def accuracy(model: CoarseClassifier, x: np.ndarray, y: np.ndarray) -> float:
    return float((model.predict_proba(x).argmax(axis=1) == y).mean())


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    ds = load_dataset("cifar100_like", n_points=n_points, seed=0)
    rng = np.random.default_rng(0)

    holdout = rng.choice(ds.n, size=ds.n // 5, replace=False)
    pool = np.setdiff1d(np.arange(ds.n), holdout)
    k = pool.size // 10

    problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, alpha=0.9)
    # Restrict selection to the training pool via the candidates argument
    # (the same mechanism the pipeline uses for bounding survivors).
    from repro.core.distributed import distributed_greedy

    selected = distributed_greedy(
        problem, k, m=8, rounds=8, adaptive=True,
        candidates=pool, seed=0,
    ).selected

    random_subset = rng.choice(pool, size=k, replace=False)

    x_hold, y_hold = ds.embeddings[holdout], ds.labels[holdout]
    model_selected = CoarseClassifier().fit(
        ds.embeddings[selected], ds.labels[selected]
    )
    model_random = CoarseClassifier().fit(
        ds.embeddings[random_subset], ds.labels[random_subset]
    )
    acc_selected = accuracy(model_selected, x_hold, y_hold)
    acc_random = accuracy(model_random, x_hold, y_hold)

    print(f"pool {pool.size}, budget {k}, holdout {holdout.size}")
    print(f"classes covered  selected: "
          f"{np.unique(ds.labels[selected]).size}, "
          f"random: {np.unique(ds.labels[random_subset]).size}")
    print(f"holdout accuracy selected: {acc_selected:.4f}")
    print(f"holdout accuracy random:   {acc_random:.4f}")


if __name__ == "__main__":
    main()
