"""Figure 1 walkthrough: distributed bounding on 6 points, 50 % subset.

A hand-sized instance that makes the grow/shrink mechanics visible: prints
Umin/Umax per point and the decisions of every bounding round, mirroring the
paper's Figure 1 illustration.

Usage::

    python examples/bounding_walkthrough.py
"""

import numpy as np

from repro import SubsetProblem, bound
from repro.core.bounding import compute_utilities
from repro.graph.csr import NeighborGraph


def main() -> None:
    # Six points on a weighted path + one chord; utilities chosen so that
    # bounding can decide some points but not all (as in Fig. 1).
    graph = NeighborGraph.from_edges(
        6,
        np.array([0, 1, 2, 3, 4, 1]),
        np.array([1, 2, 3, 4, 5, 4]),
        np.array([0.3, 0.2, 0.6, 0.2, 0.3, 0.1]),
    )
    utilities = np.array([0.9, 0.15, 0.4, 0.45, 0.2, 0.8])
    problem = SubsetProblem.with_alpha(utilities, graph, alpha=0.7)
    k = 3

    lower, umax = compute_utilities(
        problem,
        np.ones(6, dtype=bool),
        np.zeros(6, dtype=bool),
    )
    print("initial state (S' = {}, V = all):")
    print(f"{'point':>6} {'u(v)':>7} {'Umin':>7} {'Umax':>7}")
    for v in range(6):
        print(f"{v:>6} {utilities[v]:>7.3f} {lower[v]:>7.3f} {umax[v]:>7.3f}")

    result = bound(problem, k, mode="exact", track_history=True)
    print(f"\nbounding for k = {k}:")
    for i, (phase, changed) in enumerate(result.history, 1):
        print(f"  round {i}: {phase:<6} -> {changed} point(s) decided")
    print(f"included: {result.solution.tolist()}")
    print(f"remaining: {result.remaining.tolist()}")
    print(f"excluded: "
          f"{sorted(set(range(6)) - set(result.solution.tolist()) - set(result.remaining.tolist()))}")
    print(f"still to pick greedily: {result.k_remaining}")


if __name__ == "__main__":
    main()
