"""Section 5 walkthrough: bounding and scoring as dataflow joins.

Runs the Beam-style join implementation of bounding and scoring and prints
the engine's memory metrics, demonstrating that no logical worker ever held
more than ~1/num_shards of the data — the property that lets the real system
run on Apache Beam at 13 B points.

Usage::

    python examples/dataflow_bounding.py [n_points] [num_shards]
"""

import sys

import numpy as np

from repro import SubsetProblem, load_dataset
from repro.core.bounding import bound
from repro.dataflow import EngineOptions, beam_bound, beam_score


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    num_shards = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    ds = load_dataset("cifar100_tiny", n_points=n_points, seed=0)
    problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, 0.9)
    k = ds.n // 10
    total_records = problem.n + problem.graph.num_directed_edges

    result, metrics = beam_bound(
        problem, k, mode="exact", options=EngineOptions(num_shards=num_shards)
    )
    print(f"dataflow exact bounding over {num_shards} shards:")
    print(f"  included {result.n_included}, excluded {result.n_excluded}")
    print(f"  peak shard records: {metrics.peak_shard_records:,} "
          f"(total records in flight: {total_records:,})")
    print(f"  records shuffled: {metrics.shuffled_records:,}")

    reference = bound(problem, k, mode="exact")
    match = np.array_equal(reference.solution, result.solution) and \
        np.array_equal(reference.remaining, result.remaining)
    print(f"  matches in-memory reference bit-for-bit: {match}")

    subset = np.sort(
        np.concatenate([result.solution, result.remaining[: k - result.n_included]])
    )
    score, score_metrics = beam_score(
        problem, subset, options=EngineOptions(num_shards=num_shards)
    )
    print(f"dataflow scoring: f(S) = {score:.3f}, "
          f"peak shard records {score_metrics.peak_shard_records:,}")


if __name__ == "__main__":
    main()
