"""Larger-than-memory selection on the virtual perturbed dataset.

Demonstrates the paper's core systems claim end-to-end:

1. expand a base dataset into a virtual perturbed ground set whose greedy
   state exceeds one machine's (simulated) DRAM — centralized selection is
   impossible,
2. run the multi-round distributed greedy under the cluster simulator,
   which enforces per-machine DRAM limits and reports the modeled makespan,
3. show that the single-machine run is rejected while the 16-machine run
   completes.

Usage::

    python examples/larger_than_memory.py [n_base] [factor]
"""

import sys

import numpy as np

from repro import PerturbedDataset, SubsetProblem, load_dataset
from repro.cluster import ClusterSimulator, MachineSpec, greedy_state_bytes
from repro.cluster.simulator import PartitionTooLargeError
from repro.graph.csr import NeighborGraph


def materialize_graph(ds: PerturbedDataset) -> NeighborGraph:
    sources, targets, weights = [], [], []
    for start in range(0, ds.n, 10_000):
        ids = np.arange(start, min(start + 10_000, ds.n), dtype=np.int64)
        for g, nbrs, sims in ds.neighbors(ids):
            sources.append(np.full(nbrs.size, g, dtype=np.int64))
            targets.append(nbrs)
            weights.append(sims)
    return NeighborGraph.from_edges(
        ds.n, np.concatenate(sources), np.concatenate(targets),
        np.concatenate(weights),
    )


def main() -> None:
    n_base = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    factor = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    base = load_dataset("cifar100_tiny", n_points=n_base, seed=0)
    ds = PerturbedDataset(
        base.embeddings, base.utilities, base.neighbors, base.similarities,
        factor=factor, seed=0,
    )
    print(f"virtual ground set: {ds.n:,} points "
          f"({n_base} base x {factor} copies)")

    problem = SubsetProblem.with_alpha(
        ds.utilities(np.arange(ds.n)), materialize_graph(ds), 0.9
    )
    k = ds.n // 10

    # A machine that fits ~1/10th of the ground set's greedy state.
    machine = MachineSpec(dram_bytes=greedy_state_bytes(ds.n // 10 + 1))
    print(f"machine DRAM: {machine.dram_bytes:,} B "
          f"(ground set needs {greedy_state_bytes(ds.n):,} B)")
    simulator = ClusterSimulator(machine)

    try:
        simulator.run(problem, k, m=1, rounds=1, seed=0)
        print("unexpected: centralized run fit in DRAM")
    except PartitionTooLargeError as exc:
        print(f"centralized run rejected as expected: {exc}")

    run = simulator.run(problem, k, m=16, rounds=8, adaptive=True, seed=0)
    print(
        f"16-machine adaptive run: selected {len(run.result.selected):,} "
        f"points in {len(run.result.rounds)} rounds, "
        f"modeled makespan {run.makespan_hours:.2f} h, "
        f"peak partition state {run.peak_partition_bytes:,} B"
    )


if __name__ == "__main__":
    main()
