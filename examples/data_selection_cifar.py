"""Data-selection study: how partitions, rounds, and adaptivity trade off.

Reproduces the reading of Figures 3 and 4 on a laptop: a small grid of
(partitions, rounds) configurations, with and without adaptive partitioning,
normalized against centralized greedy.  The printout mirrors the paper's
heatmaps.

Usage::

    python examples/data_selection_cifar.py [n_points] [alpha]
"""

import sys

from repro import SubsetProblem, distributed_greedy, load_dataset, normalize_scores
from repro.core.greedy import greedy_heap
from repro.core.objective import PairwiseObjective


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    alpha = float(sys.argv[2]) if len(sys.argv) > 2 else 0.9
    ds = load_dataset("cifar100_like", n_points=n_points, seed=0)
    problem = SubsetProblem.with_alpha(ds.utilities, ds.graph, alpha)
    objective = PairwiseObjective(problem)
    k = ds.n // 10

    centralized = objective.value(greedy_heap(problem, k).selected)
    partitions = (2, 8, 32)
    rounds = (1, 8, 32)

    for adaptive in (False, True):
        label = "adaptive" if adaptive else "non-adaptive"
        raw = {}
        for m in partitions:
            for r in rounds:
                selected = distributed_greedy(
                    problem, k, m=m, rounds=r, adaptive=adaptive, seed=0
                ).selected
                raw[f"m={m},r={r}"] = objective.value(selected)
        scores = normalize_scores(raw, centralized)
        print(f"\nalpha={alpha}, 10 % subset, {label} "
              "(100 = centralized, 0 = worst observed)")
        header = "partitions\\rounds" + "".join(f"{r:>8d}" for r in rounds)
        print(header)
        for m in partitions:
            row = "".join(f"{scores[f'm={m},r={r}']:8.0f}" for r in rounds)
            print(f"m={m:<16d}{row}")


if __name__ == "__main__":
    main()
