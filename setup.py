"""Legacy setup shim: this offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `python setup.py develop` works without it."""
from setuptools import setup

setup()
